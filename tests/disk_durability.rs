//! True on-disk durability: a runtime over `DiskBackend` whose
//! committed effects survive a simulated process restart (dropping
//! everything and re-opening the directory).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chroma::core::{ActionError, DiskBackend, Runtime, RuntimeConfig};
use chroma::structures::SerializingAction;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chroma-durability-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn open_runtime(dir: &std::path::Path) -> Runtime {
    Runtime::builder()
        .config(RuntimeConfig::default())
        .backend(Arc::new(DiskBackend::open(dir).expect("open disk backend")))
        .build()
}

#[test]
fn committed_effects_survive_process_restart() {
    let dir = temp_dir();
    let account;
    {
        let rt = open_runtime(&dir);
        account = rt.create_object(&100i64).unwrap();
        rt.atomic(|a| a.modify(account, |b: &mut i64| *b -= 30))
            .unwrap();
        // Uncommitted work at "process exit": an open action's write.
        let open_action = rt
            .begin_top(chroma::base::ColourSet::single(rt.default_colour()))
            .unwrap();
        rt.scope(open_action)
            .unwrap()
            .write(account, &-999i64)
            .unwrap();
        // Process dies here (everything dropped, nothing committed for
        // the open action).
    }
    let rt = open_runtime(&dir);
    assert_eq!(rt.read_committed::<i64>(account).unwrap(), 70);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serializing_steps_reach_disk_individually() {
    let dir = temp_dir();
    let o;
    {
        let rt = open_runtime(&dir);
        o = rt.create_object(&0i64).unwrap();
        let sa = SerializingAction::begin(&rt).unwrap();
        sa.step(|s| s.write(o, &1i64)).unwrap();
        let _ = sa.step(|s| {
            s.write(o, &2i64)?;
            Err::<(), _>(ActionError::failed("step 2 fails"))
        });
        // Process dies without sa.end(): the fence evaporates with the
        // process; step 1's effect is already on disk.
    }
    let rt = open_runtime(&dir);
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn many_objects_round_trip_through_disk() {
    let dir = temp_dir();
    let mut objects = Vec::new();
    {
        let rt = open_runtime(&dir);
        for i in 0..32i64 {
            objects.push(rt.create_object(&i).unwrap());
        }
        rt.atomic(|a| {
            for (i, &o) in objects.iter().enumerate() {
                a.modify(o, |v: &mut i64| *v += i as i64)?;
            }
            Ok(())
        })
        .unwrap();
    }
    let rt = open_runtime(&dir);
    for (i, &o) in objects.iter().enumerate() {
        assert_eq!(rt.read_committed::<i64>(o).unwrap(), 2 * i as i64);
    }
    std::fs::remove_dir_all(&dir).ok();
}
