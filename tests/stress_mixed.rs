//! Seeded stress test: all action structures running concurrently over
//! shared objects, with failure injection and a crash at the end —
//! then a full consistency audit.
//!
//! The point is interaction coverage: serializing fences vs independent
//! actions vs plain atomics contending for the same objects, with the
//! system-wide invariants (no lost updates among committed work, no
//! leaked locks, accounting identities) checked at the end.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chroma::apps::Ledger;
use chroma::core::{ActionError, Runtime, RuntimeConfig};
use chroma::structures::{CompensatingChain, GluedChain, SerializingAction};
use chroma::typed::EscrowCounter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn mixed_structures_stress() {
    let rt = Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_secs(5)),
        })
        .build();
    let cells: Vec<_> = (0..8).map(|_| rt.create_object(&0i64).unwrap()).collect();
    let counter = Arc::new(EscrowCounter::create(&rt, 8).unwrap());
    let ledger = Ledger::create(&rt).unwrap();
    // Oracle: committed increments per cell.
    let oracle: Arc<Vec<AtomicI64>> = Arc::new((0..8).map(|_| AtomicI64::new(0)).collect());
    let committed_adds = Arc::new(AtomicI64::new(0));
    let charges = Arc::new(AtomicI64::new(0));

    std::thread::scope(|scope| {
        for worker in 0..6u64 {
            let rt = rt.clone();
            let cells = cells.clone();
            let counter = Arc::clone(&counter);
            let ledger = ledger.clone();
            let oracle = Arc::clone(&oracle);
            let committed_adds = Arc::clone(&committed_adds);
            let charges = Arc::clone(&charges);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(9000 + worker);
                for round in 0..30 {
                    match rng.gen_range(0..5) {
                        // Plain atomic increment of a random cell,
                        // sometimes deliberately failing.
                        0 => {
                            let cell = rng.gen_range(0..cells.len());
                            let fail = rng.gen_bool(0.3);
                            let result = rt.atomic_retry(100, |a| {
                                a.modify(cells[cell], |v: &mut i64| *v += 1)?;
                                if fail {
                                    Err(ActionError::failed("injected"))
                                } else {
                                    Ok(())
                                }
                            });
                            if result.is_ok() {
                                oracle[cell].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // Serializing action over two cells; second step
                        // sometimes fails (first step's effect stays).
                        1 => {
                            let c1 = rng.gen_range(0..cells.len());
                            let c2 = rng.gen_range(0..cells.len());
                            let fail_second = rng.gen_bool(0.4);
                            let sa = SerializingAction::begin(&rt).unwrap();
                            let ok1 = sa
                                .step(|s| s.modify(cells[c1], |v: &mut i64| *v += 1))
                                .is_ok();
                            if ok1 {
                                oracle[c1].fetch_add(1, Ordering::Relaxed);
                            }
                            if c1 != c2 {
                                let ok2 = sa
                                    .step(|s| {
                                        s.modify(cells[c2], |v: &mut i64| *v += 1)?;
                                        if fail_second {
                                            Err(ActionError::failed("injected"))
                                        } else {
                                            Ok(())
                                        }
                                    })
                                    .is_ok();
                                if ok2 {
                                    oracle[c2].fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            sa.end().unwrap();
                        }
                        // Glued pair handing one cell over.
                        2 => {
                            let cell = rng.gen_range(0..cells.len());
                            let chain = GluedChain::begin(&rt, 2).unwrap();
                            let ok = chain
                                .step(|s| {
                                    s.modify(cells[cell], |v: &mut i64| *v += 1)?;
                                    s.hand_over(cells[cell])
                                })
                                .is_ok();
                            if ok {
                                oracle[cell].fetch_add(1, Ordering::Relaxed);
                                if chain
                                    .step(|s| s.modify(cells[cell], |v: &mut i64| *v += 1))
                                    .is_ok()
                                {
                                    oracle[cell].fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            chain.end().unwrap();
                        }
                        // Escrow add + ledger charge from an aborting
                        // invoker: both must survive.
                        3 => {
                            if rt
                                .atomic_retry(100, |a| {
                                    counter.add(a, 1)?;
                                    Ok(())
                                })
                                .is_ok()
                            {
                                committed_adds.fetch_add(1, Ordering::Relaxed);
                            }
                            let r: Result<(), ActionError> = rt.atomic(|a| {
                                ledger.charge_from(a, &format!("w{worker}"), "op", 1)?;
                                Err(ActionError::failed("invoker aborts"))
                            });
                            // Count the charge only if the body reached
                            // the injected failure (i.e. the charge
                            // itself committed).
                            if matches!(r, Err(ActionError::Failed(_))) {
                                charges.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // Compensating chain: two steps, second fails →
                        // unwind; net effect zero.
                        _ => {
                            let cell = rng.gen_range(0..cells.len());
                            let chain = CompensatingChain::begin(&rt);
                            let target = cells[cell];
                            let ok = chain
                                .step(
                                    "inc",
                                    |s| s.modify(target, |v: &mut i64| *v += 1),
                                    move |s| s.modify(target, |v: &mut i64| *v -= 1),
                                )
                                .is_ok();
                            if ok {
                                let report = chain.unwind().unwrap();
                                assert!(report.is_clean());
                            } else {
                                chain.complete();
                            }
                        }
                    }
                    let _ = round;
                }
            });
        }
    });

    // ---- audit ----
    // 1. No leaked locks.
    assert_eq!(rt.lock_entry_count(), 0);
    // 2. Every cell matches the oracle of committed increments.
    for (i, cell) in cells.iter().enumerate() {
        let actual = rt.read_committed::<i64>(*cell).unwrap();
        let expected = oracle[i].load(Ordering::Relaxed);
        assert_eq!(actual, expected, "cell {i}");
    }
    // 3. Escrow counter and ledger totals match.
    assert_eq!(
        counter.committed_value(&rt).unwrap(),
        committed_adds.load(Ordering::Relaxed)
    );
    assert_eq!(
        ledger.total().unwrap() as i64,
        charges.load(Ordering::Relaxed)
    );
    // 4. Crash and re-audit: committed state is unchanged.
    rt.crash_and_recover();
    for (i, cell) in cells.iter().enumerate() {
        assert_eq!(
            rt.read_committed::<i64>(*cell).unwrap(),
            oracle[i].load(Ordering::Relaxed),
            "cell {i} after crash"
        );
    }
    // 5. Bookkeeping identity.
    let stats = rt.stats();
    assert_eq!(stats.begun, stats.committed + stats.aborted);
}
