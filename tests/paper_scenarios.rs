//! Cross-crate integration scenarios: the paper's applications sharing
//! one runtime, structure composition, and crash recovery cutting
//! across every layer.

use chroma::apps::{
    schedule_meeting, BulletinBoard, Diary, DistMake, Ledger, Makefile, ScheduleOutcome,
};
use chroma::core::{ActionError, Runtime, RuntimeConfig};
use chroma::structures::{independent_sync, GluedChain, SerializingAction};
use std::time::Duration;

fn rt_fast() -> Runtime {
    Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_millis(400)),
        })
        .build()
}

#[test]
fn one_runtime_hosts_every_application() {
    let rt = Runtime::builder().build();
    let board = BulletinBoard::create(&rt).unwrap();
    let ledger = Ledger::create(&rt).unwrap();
    let make = DistMake::new(&rt, Makefile::parse("out: in\n\tbuild\n").unwrap()).unwrap();
    make.write_source("in", "source").unwrap();
    let diary = Diary::create(&rt, "solo", 3).unwrap();

    // A "CI run": charge, build, announce; the announcement and charge
    // survive even though the surrounding orchestration action aborts.
    let result: Result<(), ActionError> = rt.atomic(|app| {
        ledger.charge_from(app, "ci", "build", 2)?;
        board.post_from(app, "ci", "build started")?;
        Err(ActionError::failed("orchestrator lost its node"))
    });
    assert!(result.is_err());
    // The build itself (outside the orchestrator) succeeds.
    let report = make.make("out").unwrap();
    assert_eq!(report.rebuilt, vec!["out".to_owned()]);
    // And the meeting to discuss it gets booked.
    let outcome = schedule_meeting(&rt, std::slice::from_ref(&diary), "retro").unwrap();
    assert_eq!(outcome, ScheduleOutcome::Booked { slot: 0 });

    assert_eq!(ledger.total().unwrap(), 2);
    assert_eq!(board.posts().unwrap().len(), 1);
    assert!(make.file_state("out").unwrap().stamp > 0);

    // Crash: everything committed above survives.
    rt.crash_and_recover();
    assert_eq!(ledger.total().unwrap(), 2);
    assert_eq!(board.posts().unwrap().len(), 1);
    assert!(make.file_state("out").unwrap().stamp > 0);
    assert_eq!(
        diary.slot_state(&rt, 0).unwrap().appointment.as_deref(),
        Some("retro")
    );
}

#[test]
fn structures_compose_serializing_inside_glued_step() {
    // A glued chain whose step internally runs a serializing action —
    // structures nest because they are all just coloured actions.
    let rt = rt_fast();
    let staged = rt.create_object(&0i64).unwrap();
    let detail_a = rt.create_object(&0i64).unwrap();
    let detail_b = rt.create_object(&0i64).unwrap();

    let chain = GluedChain::begin(&rt, 2).unwrap();
    chain
        .step(|s| {
            s.write(staged, &1i64)?;
            s.hand_over(staged)
        })
        .unwrap();
    // Between chain steps, run a serializing action on other objects.
    let sa = SerializingAction::begin(&rt).unwrap();
    sa.step(|s| s.write(detail_a, &1i64)).unwrap();
    let _ = sa.step(|s| {
        s.write(detail_b, &1i64)?;
        Err::<(), _>(ActionError::failed("second detail fails"))
    });
    sa.end().unwrap();
    chain
        .step(|s| s.modify(staged, |v: &mut i64| *v += 10))
        .unwrap();
    chain.end().unwrap();

    assert_eq!(rt.read_committed::<i64>(staged).unwrap(), 11);
    assert_eq!(rt.read_committed::<i64>(detail_a).unwrap(), 1);
    assert_eq!(rt.read_committed::<i64>(detail_b).unwrap(), 0);
}

#[test]
fn independent_actions_inside_serializing_steps() {
    // A serializing step that bills for itself: the charge survives
    // even when the step aborts.
    let rt = Runtime::builder().build();
    let ledger = Ledger::create(&rt).unwrap();
    let target = rt.create_object(&0i64).unwrap();
    let sa = SerializingAction::begin(&rt).unwrap();
    let failed: Result<(), ActionError> = sa.step(|_s| {
        // Steps run as coloured actions; independent invocation needs a
        // scope. Use the runtime directly: the ledger API spawns its
        // own detached action.
        Err(ActionError::failed("step fails after being metered"))
    });
    assert!(failed.is_err());
    rt.atomic(|a| {
        ledger.charge_from(a, "user", "attempt", 1)?;
        independent_sync(a, |i| i.write(target, &1i64))
    })
    .unwrap();
    sa.end().unwrap();
    assert_eq!(ledger.total().unwrap(), 1);
    assert_eq!(rt.read_committed::<i64>(target).unwrap(), 1);
}

#[test]
fn facade_reexports_are_complete() {
    // The chroma façade exposes every subsystem.
    let _universe = chroma::base::ColourUniverse::new();
    let _table = chroma::locks::LockTable::new(chroma::locks::ColouredPolicy);
    let _store = chroma::store::StableStore::new();
    let rt: chroma::core::Runtime = chroma::core::Runtime::builder().build();
    let _board = chroma::apps::BulletinBoard::create(&rt).unwrap();
    let mut sim = chroma::dist::Sim::new(1);
    let _node = sim.add_node();
    let _cfg = chroma::sim::WorkloadConfig::default();
    let _structure = chroma::structures::compiler::Structure::work("w");
}

#[test]
fn concurrent_applications_do_not_interfere() {
    let rt = rt_fast();
    let board = BulletinBoard::create(&rt).unwrap();
    let ledger = Ledger::create(&rt).unwrap();
    let mut handles = Vec::new();
    for worker in 0..4 {
        let rt = rt.clone();
        let board = board.clone();
        let ledger = ledger.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..10 {
                rt.atomic(|a| {
                    ledger.charge_from(a, &format!("w{worker}"), "op", 1)?;
                    board.post_from(a, &format!("w{worker}"), &format!("op {i}"))?;
                    Ok(())
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(ledger.total().unwrap(), 40);
    let posts = board.posts().unwrap();
    assert_eq!(posts.len(), 40);
    // Sequence numbers are dense and unique.
    let mut seqs: Vec<u64> = posts.iter().map(|p| p.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..40).collect::<Vec<u64>>());
}

#[test]
fn workload_runs_through_the_facade() {
    let rt = Runtime::builder().build();
    let result = chroma::sim::run_contention(
        &rt,
        &chroma::sim::WorkloadConfig {
            threads: 2,
            actions_per_thread: 10,
            ..chroma::sim::WorkloadConfig::default()
        },
    );
    assert_eq!(result.committed, 20);
}
