//! End-to-end smoke of the `chroma` façade: coloured atomic actions,
//! on-disk durability, distributed permanence, replication and the
//! trace auditor — all through the public re-exports.
//!
//! A bare `cargo test -q` at the workspace root runs only the root
//! package's tests; this file makes that run exercise the whole public
//! API surface rather than pass vacuously. (Full per-crate coverage
//! still needs `cargo test --workspace` — see the README.)

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chroma::base::{NodeId, ObjectId};
use chroma::core::{DiskBackend, Runtime, RuntimeConfig};
use chroma::dist::{
    dispatch, Node, PartitionedStore, ReplicatedObject, Sim, TcpConfig, TxnId, Write,
};
use chroma::obs::{EventBus, MemorySink, Obs, Observable, TraceAuditor};
use chroma::store::StoreBytes;
use chroma::{NetConfig, TcpTransport, Transport};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chroma-smoke-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn facade_covers_the_stack_end_to_end() {
    // ---- coloured atomic actions, traced ----
    let rt = Runtime::builder().build();
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(100_000));
    bus.add_sink(sink.clone());
    rt.install_obs(Obs::new(bus.clone()));

    let account = rt.create_object(&100i64).unwrap();
    rt.atomic(|a| a.modify(account, |b: &mut i64| *b -= 30))
        .unwrap();
    assert_eq!(rt.read_committed::<i64>(account).unwrap(), 70);

    // The outermost commit was timed into the per-colour breakdown.
    let colour_metric = format!("core.commit_us.{}", rt.universe().name(rt.default_colour()));
    assert!(
        bus.snapshot().histogram(&colour_metric).is_some(),
        "missing {colour_metric}"
    );

    // ---- on-disk durability across a process restart ----
    let dir = temp_dir();
    let saved;
    {
        let disk_rt = Runtime::builder()
            .config(RuntimeConfig::default())
            .backend(Arc::new(DiskBackend::open(&dir).unwrap()))
            .build();
        disk_rt.install_obs(Obs::new(bus.clone()));
        saved = disk_rt.create_object(&7i64).unwrap();
        disk_rt
            .atomic(|a| a.modify(saved, |v: &mut i64| *v *= 6))
            .unwrap();
    }
    {
        let disk_rt = Runtime::builder()
            .config(RuntimeConfig::default())
            .backend(Arc::new(DiskBackend::open(&dir).unwrap()))
            .build();
        assert_eq!(disk_rt.read_committed::<i64>(saved).unwrap(), 42);
    }
    std::fs::remove_dir_all(&dir).ok();
    // The disk commits flowed through the WAL vocabulary.
    assert!(bus.counter("disk_append") >= 1);
    assert!(bus.snapshot().histogram("store.fsync_us").is_some());

    // ---- distributed permanence with a storage-node crash ----
    let store = Arc::new(PartitionedStore::new(11, 3, 2));
    let dist_rt = Runtime::builder()
        .config(RuntimeConfig::default())
        .backend(store.clone())
        .build();
    let ledger = dist_rt.create_object(&1i64).unwrap();
    dist_rt.atomic(|a| a.write(ledger, &2i64)).unwrap();
    store.crash_node(0);
    assert_eq!(dist_rt.read_committed::<i64>(ledger).unwrap(), 2);
    store.recover_node(0);
    assert_eq!(store.up_count(), 3);

    // ---- replication with catch-up, audited ----
    let mut sim = Sim::new(5);
    sim.install_obs(Obs::new(bus.clone()));
    let members = vec![sim.add_node(), sim.add_node(), sim.add_node()];
    let replica = ReplicatedObject::create(&mut sim, ObjectId::from_raw(9), &members, b"v0");
    replica.write(&mut sim, b"v1").unwrap();
    sim.run_to_quiescence();
    replica.crash_member(&mut sim, members[2], 0);
    sim.run(10);
    replica.write(&mut sim, b"v2").unwrap();
    sim.run_to_quiescence();
    let (version, state) = replica.read(&sim).unwrap();
    assert_eq!(version, 2);
    assert_eq!(&state[..], b"v2");

    // The whole trace — local, disk, distributed — is clean under the
    // auditor, replication rules included.
    assert_eq!(sink.dropped(), 0);
    assert!(bus.counter("replica_write") >= 2);
    assert!(bus.counter("replica_install") >= 2);
    let report = TraceAuditor::audit_events(&sink.events());
    assert!(report.is_clean(), "audit failed:\n{report}");
}

#[test]
fn snapshot_reads_through_the_facade_are_lock_free_and_audited() {
    // A writer hammers one key while a read-only snapshot holds a long
    // scan open across several commits: the snapshot must stay frozen
    // at its captured cut, cause zero lock waits, and leave a trace
    // that is clean under the auditor's MVCC rule (R10).
    let rt = Runtime::builder().build();
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(100_000));
    bus.add_sink(sink.clone());
    rt.install_obs(Obs::new(bus.clone()));

    let counter = rt.create_object(&0u64).unwrap();
    rt.atomic(|a| a.modify(counter, |v: &mut u64| *v += 1))
        .unwrap();

    let snap: chroma::SnapshotScope<'_> = rt.begin_read_only();
    assert_eq!(snap.read::<u64>(counter).unwrap(), 1);
    for _ in 0..10 {
        rt.atomic(|a| a.modify(counter, |v: &mut u64| *v += 1))
            .unwrap();
    }
    // Still the cut captured at open, not the 11 committed since.
    assert_eq!(snap.read::<u64>(counter).unwrap(), 1);
    snap.end();
    assert_eq!(rt.read_committed::<u64>(counter).unwrap(), 11);

    // The single-threaded writer never had competition: the snapshot
    // must not have manufactured any waits.
    assert_eq!(rt.lock_wait_stats().waits, 0);
    assert!(bus.counter("snapshot_open") >= 1);
    assert!(bus.counter("snapshot_read") >= 2);

    assert_eq!(sink.dropped(), 0);
    let report = TraceAuditor::audit_events(&sink.events());
    assert!(report.is_clean(), "audit failed:\n{report}");
}

#[test]
fn builder_observability_and_sharded_locks_through_the_facade() {
    // The builder is the one front door: config, backend, observability
    // and lock sharding in a single fluent chain.
    let bus = Arc::new(EventBus::new());
    let rt = Arc::new(
        Runtime::builder()
            .config(RuntimeConfig::default())
            .lock_shards(8)
            .obs(bus.clone())
            .build(),
    );
    assert_eq!(rt.lock_shard_count(), 8);

    // Four threads over disjoint objects: the sharded lock table must
    // not manufacture waits between them.
    let objects: Vec<_> = (0..4).map(|_| rt.create_object(&0i64).unwrap()).collect();
    let handles: Vec<_> = objects
        .iter()
        .map(|&object| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || {
                for _ in 0..25 {
                    rt.atomic(|a| a.modify(object, |v: &mut i64| *v += 1))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for object in &objects {
        assert_eq!(rt.read_committed::<i64>(*object).unwrap(), 25);
    }
    let parked: u64 = rt.lock_shard_wait_stats().iter().map(|s| s.waits).sum();
    assert_eq!(parked, 0, "disjoint objects must not contend");

    // The `Observable` trait reaches the same bus after the fact too.
    rt.install_obs(Obs::new(bus.clone()));
    rt.atomic(|a| a.modify(objects[0], |v: &mut i64| *v += 1))
        .unwrap();
    assert!(bus.snapshot().histogram("core.commit_us").is_some());
}

#[test]
fn transport_boundary_through_the_facade() {
    // The first-class transport re-exports are the door from the
    // simulator to real processes: the same `Node` state machine that
    // the sim drives runs one two-phase commit here over loopback
    // sockets, through `chroma::{Transport, TcpTransport}` alone.
    let n1 = NodeId::from_raw(1);
    let n2 = NodeId::from_raw(2);
    let mut t1 = TcpTransport::bind(n1, "127.0.0.1:0", TcpConfig::default()).unwrap();
    let mut t2 = TcpTransport::bind(n2, "127.0.0.1:0", TcpConfig::default()).unwrap();
    t1.add_peer(n2, t2.local_addr());
    t2.add_peer(n1, t1.local_addr());

    // `Node::builder().transport(..)` is the process-host construction
    // path: identity comes from the transport.
    let mut coord = Node::builder().transport(&t1).build().unwrap();
    let mut worker = Node::builder().transport(&t2).build().unwrap();

    let txn = TxnId(1);
    let object = ObjectId::from_raw(5_000);
    let mut writes = HashMap::new();
    writes.insert(
        n2,
        vec![Write {
            object,
            state: StoreBytes::from(b"facade".to_vec()),
        }],
    );
    t1.apply_effects(coord.begin_transaction(txn, writes));

    let deadline = Instant::now() + Duration::from_secs(10);
    while coord.coordinator_active(txn) {
        assert!(Instant::now() < deadline, "loopback 2PC timed out");
        if let Some(event) = t1.poll(Some(Duration::from_millis(5))) {
            dispatch(&mut coord, &mut t1, event);
        }
        if let Some(event) = t2.poll(Some(Duration::from_millis(5))) {
            dispatch(&mut worker, &mut t2, event);
        }
    }
    assert_eq!(
        coord.coordinator_outcome(txn),
        Some(true),
        "a healthy loopback commit must succeed"
    );
    assert!(worker.installed(txn), "the participant must have resolved");

    // `NetConfig` is the simulator's failure-model knob — the same
    // replication workload shrugs off a duplicating network.
    let mut sim = Sim::new(9);
    sim.net = NetConfig {
        duplication: 0.5,
        ..NetConfig::default()
    };
    let members = vec![sim.add_node(), sim.add_node()];
    let replica = ReplicatedObject::create(&mut sim, ObjectId::from_raw(77), &members, b"d0");
    replica.write(&mut sim, b"d1").unwrap();
    sim.run_to_quiescence();
    let (version, state) = replica.read(&sim).unwrap();
    assert_eq!(version, 1);
    assert_eq!(&state[..], b"d1");
}
