//! The distributed deployment: the coloured runtime with permanence
//! provided by `chroma-dist`'s partitioned, replicated, 2PC-backed
//! object stores — the "distributed version" the paper planned.

use std::sync::Arc;

use chroma::apps::{DistMake, Ledger, Makefile};
use chroma::core::{ActionError, PermanenceBackend, Runtime, RuntimeConfig};
use chroma::dist::PartitionedStore;
use chroma::structures::SerializingAction;

fn distributed_runtime(
    seed: u64,
    nodes: usize,
    replication: usize,
) -> (Runtime, Arc<PartitionedStore>) {
    let store = Arc::new(PartitionedStore::new(seed, nodes, replication));
    (
        Runtime::builder()
            .config(RuntimeConfig::default())
            .backend(store.clone())
            .build(),
        store,
    )
}

#[test]
fn atomic_actions_commit_through_2pc() {
    let (rt, store) = distributed_runtime(1, 3, 2);
    let account = rt.create_object(&100i64).unwrap();
    rt.atomic(|a| a.modify(account, |b: &mut i64| *b -= 30))
        .unwrap();
    assert_eq!(rt.read_committed::<i64>(account).unwrap(), 70);
    assert_eq!(store.up_count(), 3);
}

#[test]
fn committed_state_survives_storage_node_crash() {
    let (rt, store) = distributed_runtime(2, 3, 3);
    let o = rt.create_object(&1i64).unwrap();
    rt.atomic(|a| a.write(o, &2i64)).unwrap();
    store.crash_node(1);
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 2);
    // Commits keep flowing while a replica is down…
    rt.atomic(|a| a.write(o, &3i64)).unwrap();
    // …and the recovered node catches up.
    store.recover_node(1);
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 3);
}

#[test]
fn commit_blocked_by_total_outage_succeeds_after_recovery() {
    let (rt, store) = distributed_runtime(3, 2, 2);
    let o = rt.create_object(&0i64).unwrap();
    store.crash_node(0);
    store.crash_node(1);
    // The action body succeeds but the commit cannot reach stable
    // storage: the scoped runner surfaces the backend error.
    let result = rt.atomic(|a| a.write(o, &5i64));
    assert!(matches!(result, Err(ActionError::Backend(_))));
    // Storage comes back; the same update applied again commits fine.
    store.recover();
    rt.atomic(|a| a.write(o, &5i64)).unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 5);
}

#[test]
fn manual_commit_can_be_retried_after_backend_error() {
    let (rt, store) = distributed_runtime(4, 2, 2);
    let o = rt.create_object(&0i64).unwrap();
    let a = rt
        .begin_top(chroma::base::ColourSet::single(rt.default_colour()))
        .unwrap();
    rt.scope(a).unwrap().write(o, &7i64).unwrap();
    store.crash_node(0);
    store.crash_node(1);
    let err = rt.commit(a).unwrap_err();
    assert!(matches!(err, ActionError::Backend(_)));
    // The action is still active, still holds its lock and its undo
    // records; after recovery the SAME action commits.
    assert_eq!(rt.action_state(a), Some(chroma::core::ActionState::Active));
    store.recover();
    rt.commit(a).unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 7);
}

#[test]
fn serializing_make_over_distributed_storage() {
    // Distributed make with every file's permanence going through 2PC
    // over replicated stores — the full stack of the paper.
    let (rt, store) = distributed_runtime(5, 4, 2);
    let make = DistMake::new(
        &rt,
        Makefile::parse(
            "Test: Test0.o Test1.o\n\
             \tcc -o Test\n\
             Test0.o: Test0.c\n\tcc -c Test0.c\n\
             Test1.o: Test1.c\n\tcc -c Test1.c\n",
        )
        .unwrap(),
    )
    .unwrap();
    make.write_source("Test0.c", "a").unwrap();
    make.write_source("Test1.c", "b").unwrap();
    // A storage node dies mid-life; the build still completes.
    store.crash_node(2);
    let report = make.make("Test").unwrap();
    assert_eq!(report.rebuilt.len(), 3);
    store.recover_node(2);
    assert!(make.file_state("Test").unwrap().stamp > 0);
    // And a runtime crash (volatile loss) loses nothing committed.
    rt.crash_and_recover();
    assert!(make.file_state("Test").unwrap().stamp > 0);
    assert!(make.make("Test").unwrap().rebuilt.is_empty());
}

#[test]
fn serializing_steps_are_individually_durable_distributed() {
    let (rt, _store) = distributed_runtime(6, 3, 2);
    let o = rt.create_object(&0i64).unwrap();
    let sa = SerializingAction::begin(&rt).unwrap();
    sa.step(|s| s.write(o, &1i64)).unwrap();
    let _ = sa.step(|s| {
        s.write(o, &2i64)?;
        Err::<(), _>(ActionError::failed("step 2 fails"))
    });
    sa.end().unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 1);
}

#[test]
fn independent_charges_survive_on_distributed_storage() {
    let (rt, _store) = distributed_runtime(7, 3, 2);
    let ledger = Ledger::create(&rt).unwrap();
    let result: Result<(), ActionError> = rt.atomic(|a| {
        ledger.charge_from(a, "ada", "op", 4)?;
        Err(ActionError::failed("invoker aborts"))
    });
    assert!(result.is_err());
    assert_eq!(ledger.total().unwrap(), 4);
}

#[test]
fn lossy_network_does_not_affect_correctness() {
    let store = Arc::new(PartitionedStore::with_net(
        8,
        3,
        2,
        chroma::dist::NetConfig {
            loss: 0.2,
            duplication: 0.2,
            ..chroma::dist::NetConfig::default()
        },
    ));
    let rt = Runtime::builder()
        .config(RuntimeConfig::default())
        .backend(store)
        .build();
    let o = rt.create_object(&0i64).unwrap();
    for i in 1..=10i64 {
        rt.atomic(|a| a.write(o, &i)).unwrap();
    }
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 10);
}
