//! # Chroma — objects and multi-coloured actions
//!
//! Chroma is a fault-tolerance toolkit built around **atomic actions**
//! (atomic transactions) on persistent objects, reproducing
//! Shrivastava & Wheater, *"Implementing Fault-Tolerant Distributed
//! Applications Using Objects and Multi-Coloured Actions"* (ICDCS 1990).
//!
//! The crate is a façade over the workspace:
//!
//! * [`base`] — identifiers, colours, lock modes;
//! * [`obs`] — structured tracing, metrics and the offline trace
//!   auditor that re-checks the paper's invariants from event streams;
//! * [`locks`] — the coloured lock manager plus the classic (Moss)
//!   nested-action baseline, with deadlock detection;
//! * [`store`] — volatile and stable object stores, intentions-list
//!   commit, crash semantics;
//! * [`core`] — the multi-coloured action runtime (begin / commit /
//!   abort with per-colour inheritance, permanence and recovery);
//! * [`structures`] — the paper's action structures implemented on top of
//!   colours: serializing, glued and top-level/n-level independent
//!   actions, plus the automatic colour-assignment compiler;
//! * [`dist`] — a deterministic simulated distributed system (fail-silent
//!   nodes, lossy network, RPC, two-phase commit, replication);
//! * [`apps`] — the paper's five example applications;
//! * [`sim`] — workload generators and metrics used by the experiment
//!   harness;
//! * [`typed`] — typed handles ([`EscrowCounter`], [`KeyedDirectory`])
//!   that encode an object's commutativity in its API.
//!
//! # Quickstart
//!
//! ```
//! use chroma::core::Runtime;
//! use chroma::{EscrowCounter, KeyedDirectory};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rt = Runtime::builder().lock_shards(8).build();
//! let account = rt.create_object(&100i64)?;
//!
//! // A conventional top-level atomic action: all-or-nothing.
//! rt.atomic(|a| {
//!     let balance: i64 = a.read(account)?;
//!     a.write(account, &(balance - 30))?;
//!     Ok(())
//! })?;
//!
//! assert_eq!(rt.read_committed::<i64>(account)?, 70);
//!
//! // Typed handles ride on the same runtime: a striped counter whose
//! // increments commute, and a directory whose entries lock per key.
//! let hits = EscrowCounter::create(&rt, 4)?;
//! rt.atomic(|a| hits.add(a, 3))?;
//! assert_eq!(hits.committed_value(&rt)?, 3);
//!
//! let dir: KeyedDirectory<String> = KeyedDirectory::create(&rt, 8)?;
//! rt.atomic(|a| dir.insert(a, "printer", &"room 3".to_owned()))?;
//! assert_eq!(
//!     rt.atomic(|a| dir.lookup(a, "printer"))?,
//!     Some("room 3".to_owned())
//! );
//!
//! // Declared read-only actions read a consistent MVCC snapshot
//! // without ever touching the lock table — they cannot block a
//! // writer or deadlock, no matter how long the scan runs.
//! let snap = rt.begin_read_only();
//! let frozen: i64 = snap.read(account)?;
//! rt.atomic(|a| a.modify(account, |b: &mut i64| *b += 5))?;
//! assert_eq!(snap.read::<i64>(account)?, frozen); // still the old cut
//! snap.end();
//! # Ok(())
//! # }
//! ```

pub use chroma_apps as apps;
pub use chroma_base as base;
pub use chroma_core as core;
pub use chroma_dist as dist;
pub use chroma_locks as locks;
pub use chroma_obs as obs;
pub use chroma_sim as sim;
pub use chroma_store as store;
pub use chroma_structures as structures;
pub use chroma_typed as typed;

// The typed handles are the recommended way to model commutative
// objects, so they are first-class citizens of the façade.
pub use chroma_typed::{EscrowCounter, KeyedDirectory};

// Declared read-only actions are the recommended way to run long
// scans, so the scope type is first-class too.
pub use chroma_core::SnapshotScope;

// The transport boundary is how a deployment graduates from the
// simulator to real processes (the `chroma-node` binary), so the trait
// and both implementations are first-class: `Transport` for writing a
// host, `TcpTransport` for real sockets, `NetConfig` for configuring
// the simulated network's fault injection.
pub use chroma_dist::{NetConfig, TcpTransport, Transport};
