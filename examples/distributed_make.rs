//! The paper's §4(iv) example: fault-tolerant distributed make over a
//! serializing action (fig. 8), using the makefile printed in the
//! paper.
//!
//! ```text
//! cargo run --example distributed_make
//! ```

use chroma::apps::{DistMake, Makefile};
use chroma::core::{ActionError, Runtime};

const PAPER_MAKEFILE: &str = "Test: Test0.o Test1.o\n\
                              \tcc -o Test Test0.o Test1.o\n\
                              Test0.o: Test0.h Test1.h Test0.c\n\
                              \tcc -c Test0.c\n\
                              Test1.o: Test1.h Test1.c\n\
                              \tcc -c Test1.c\n";

fn main() -> Result<(), ActionError> {
    let rt = Runtime::builder().build();
    let make = DistMake::new(&rt, Makefile::parse(PAPER_MAKEFILE)?)?;
    for src in ["Test0.h", "Test1.h", "Test0.c", "Test1.c"] {
        make.write_source(src, &format!("// source of {src}"))?;
    }

    println!("== first build (everything out of date) ==");
    let report = make.make("Test")?;
    println!("rebuilt: {:?}", report.rebuilt);

    println!("\n== nothing changed: make is a no-op ==");
    let report = make.make("Test")?;
    println!(
        "rebuilt: {:?} (up to date: {:?})",
        report.rebuilt, report.up_to_date
    );

    println!("\n== edit Test1.c: only its chain rebuilds ==");
    make.write_source("Test1.c", "// edited")?;
    let report = make.make("Test")?;
    println!("rebuilt: {:?}", report.rebuilt);

    println!("\n== the fault-tolerance claim: a failing link ==");
    make.write_source("Test0.c", "// edited again")?;
    make.write_source("Test1.c", "// edited again")?;
    make.inject_failure("Test"); // compiles succeed, the link fails
    let commands_before = make.commands_run();
    match make.make("Test") {
        Err(e) => println!("make failed as injected: {e}"),
        Ok(_) => unreachable!("failure was injected"),
    }
    println!(
        "compiles performed before the failure: {}",
        make.commands_run() - commands_before
    );
    println!(
        "Test0.o stamp: {} (survived the failure)",
        make.file_state("Test0.o")?.stamp
    );

    println!("\n== fix and retry: only the link runs ==");
    make.clear_failure("Test");
    let commands_before = make.commands_run();
    let report = make.make("Test")?;
    println!(
        "rebuilt: {:?} ({} command(s))",
        report.rebuilt,
        make.commands_run() - commands_before
    );
    assert_eq!(report.rebuilt, vec!["Test".to_owned()]);
    println!("\nok — completed compiles were never redone");
    Ok(())
}
