//! Quickstart: persistent objects, atomic actions, nesting, recovery.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use chroma::core::{ActionError, Runtime};

fn main() -> Result<(), ActionError> {
    let rt = Runtime::builder().build();

    // Persistent objects live in the runtime's object store.
    let checking = rt.create_object(&100i64)?;
    let savings = rt.create_object(&50i64)?;

    // A top-level atomic action: all-or-nothing, serializable,
    // permanent once committed.
    rt.atomic(|a| {
        let amount = 30i64;
        a.modify(checking, |b: &mut i64| *b -= amount)?;
        a.modify(savings, |b: &mut i64| *b += amount)?;
        Ok(())
    })?;
    println!(
        "after transfer: checking={} savings={}",
        rt.read_committed::<i64>(checking)?,
        rt.read_committed::<i64>(savings)?
    );

    // Failure atomicity: an error aborts the action and undoes its
    // effects.
    let result: Result<(), ActionError> = rt.atomic(|a| {
        a.modify(checking, |b: &mut i64| *b -= 1000)?;
        let balance: i64 = a.read(checking)?;
        if balance < 0 {
            return Err(ActionError::failed("insufficient funds"));
        }
        Ok(())
    });
    println!(
        "overdraft attempt: {:?}; checking={}",
        result.err().map(|e| e.to_string()),
        rt.read_committed::<i64>(checking)?
    );

    // Nested actions contain failures without aborting the parent.
    rt.atomic(|a| {
        let risky: Result<(), ActionError> = a.nested(|n| {
            n.modify(checking, |b: &mut i64| *b -= 5)?;
            Err(ActionError::failed("sub-task failed"))
        });
        println!("nested failure contained: {}", risky.is_err());
        a.modify(savings, |b: &mut i64| *b += 1) // parent continues
    })?;

    // Permanence of effect: committed state survives a crash.
    rt.crash_and_recover();
    println!(
        "after crash+recovery: checking={} savings={}",
        rt.read_committed::<i64>(checking)?,
        rt.read_committed::<i64>(savings)?
    );
    assert_eq!(rt.read_committed::<i64>(checking)?, 70);
    assert_eq!(rt.read_committed::<i64>(savings)?, 81);
    println!("ok");
    Ok(())
}
