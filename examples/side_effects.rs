//! The paper's §4(i–iii) examples in one scenario: bulletin board,
//! name server and billing — side effects that must *survive* the
//! invoking action's abort, via top-level independent actions (fig. 7).
//!
//! ```text
//! cargo run --example side_effects
//! ```

use chroma::apps::{BulletinBoard, Ledger, NameServer};
use chroma::core::{ActionError, Runtime};

fn main() -> Result<(), ActionError> {
    let rt = Runtime::builder().build();
    let board = BulletinBoard::create(&rt)?;
    let names = NameServer::create(&rt)?;
    let ledger = Ledger::create(&rt)?;
    names.register("builder", "node-1")?;

    // An application action that uses all three services and then
    // fails. The paper's argument: none of the three side effects
    // should be rolled back with it.
    let result: Result<(), ActionError> = rt.atomic(|app| {
        // (iii) Billing: the user pays for the attempt, not the outcome.
        ledger.charge_from(app, "ada", "build-slot", 5)?;

        // (ii) Name server: the app noticed a stale binding and repairs
        // it asynchronously while carrying on.
        let repair = names.update_async("builder", "node-2");

        // (i) Bulletin board: progress announcements become visible to
        // everyone immediately.
        board.post_from(app, "ada", "build started on node-2")?;

        repair.join()?;
        Err(ActionError::failed("the build itself crashed"))
    });
    println!(
        "application outcome: {:?}",
        result.err().map(|e| e.to_string())
    );

    // All three side effects survived.
    println!("\nledger total: {} (charge stands)", ledger.total()?);
    println!(
        "name server: builder -> {:?} (repair stands)",
        names.lookup("builder")?
    );
    let posts = board.posts()?;
    println!("bulletin board: {} post(s)", posts.len());
    for post in &posts {
        println!("  [{}] {}: {}", post.seq, post.author, post.text);
    }

    assert_eq!(ledger.total()?, 5);
    assert_eq!(names.lookup("builder")?, Some("node-2".to_owned()));
    assert_eq!(posts.len(), 1);

    // Compensation (the paper's note on bulletin boards): a retraction
    // is a *new* top-level action, not a rollback.
    board.retract(posts[0].seq)?;
    println!(
        "\nafter compensation: post retracted = {}",
        board.posts()?[0].retracted
    );
    println!("ok");
    Ok(())
}
