//! The paper's §4(v) example: arranging a meeting across personal
//! diaries with glued actions (fig. 9).
//!
//! ```text
//! cargo run --example meeting_scheduler
//! ```

use chroma::apps::{schedule_meeting, Diary, ScheduleOutcome};
use chroma::core::{ActionError, Runtime};

fn main() -> Result<(), ActionError> {
    let rt = Runtime::builder().build();
    let slots = 8; // say, 9:00..17:00

    let ada = Diary::create(&rt, "ada", slots)?;
    let bob = Diary::create(&rt, "bob", slots)?;
    let cleo = Diary::create(&rt, "cleo", slots)?;

    // Pre-existing appointments.
    ada.book(&rt, 0, "standup")?;
    ada.book(&rt, 1, "1:1")?;
    bob.book(&rt, 2, "dentist")?;
    bob.book(&rt, 3, "review")?;
    cleo.book(&rt, 4, "deep work")?;

    println!("diaries before scheduling:");
    for diary in [&ada, &bob, &cleo] {
        let row: Vec<String> = (0..slots)
            .map(|i| {
                diary
                    .slot_state(&rt, i)
                    .map(|s| s.appointment.unwrap_or_else(|| "-".into()))
                    .unwrap_or_else(|_| "?".into())
            })
            .collect();
        println!("  {:>5}: {row:?}", diary.owner);
    }

    // Negotiate round by round; rejected slots are released as soon as a
    // round rules them out (fig. 9's point), and the final booking is
    // atomic across all three diaries.
    let outcome = schedule_meeting(
        &rt,
        &[ada.clone(), bob.clone(), cleo.clone()],
        "design sync",
    )?;
    match outcome {
        ScheduleOutcome::Booked { slot } => println!("\nbooked slot {slot} for everyone"),
        ScheduleOutcome::NoSlot => println!("\nno common slot"),
    }

    println!("\ndiaries after scheduling:");
    for diary in [&ada, &bob, &cleo] {
        let row: Vec<String> = (0..slots)
            .map(|i| {
                diary
                    .slot_state(&rt, i)
                    .map(|s| s.appointment.unwrap_or_else(|| "-".into()))
                    .unwrap_or_else(|_| "?".into())
            })
            .collect();
        println!("  {:>5}: {row:?}", diary.owner);
    }
    assert_eq!(outcome, ScheduleOutcome::Booked { slot: 5 });
    println!("\nok");
    Ok(())
}
