//! Type-specific concurrency control (§2's enhancement): the escrow
//! counter and the per-key directory, showing write/write concurrency
//! that plain read/write locking would forbid.
//!
//! ```text
//! cargo run --example typed_objects
//! ```

use std::sync::Arc;
use std::time::Instant;

use chroma::core::{ActionError, Runtime};
use chroma::typed::{EscrowCounter, KeyedDirectory};

fn main() -> Result<(), ActionError> {
    let rt = Runtime::builder().build();

    // ------------------------------------------------------------------
    // Escrow counter: commuting adds overlap even while actions hold
    // their locks.
    // ------------------------------------------------------------------
    let hits = Arc::new(EscrowCounter::create(&rt, 8)?);
    let begun = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let rt = rt.clone();
            let hits = Arc::clone(&hits);
            scope.spawn(move || {
                for _ in 0..5 {
                    rt.atomic(|a| {
                        hits.add(a, 1)?;
                        // The action keeps working (and keeps its locks)
                        // for a while — others still add concurrently.
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        Ok(())
                    })
                    .unwrap();
                }
                let _ = worker;
            });
        }
    });
    println!(
        "20 adds from 4 workers (each holding ~5ms): {:?}; total = {}",
        begun.elapsed(),
        hits.committed_value(&rt)?
    );
    assert_eq!(hits.committed_value(&rt)?, 20);

    // An aborting action's adds vanish, like any other action effect.
    let _ = rt.atomic(|a| {
        hits.add(a, 1000)?;
        Err::<(), _>(ActionError::failed("oops"))
    });
    println!(
        "after an aborted add of 1000: total = {}",
        hits.committed_value(&rt)?
    );
    assert_eq!(hits.committed_value(&rt)?, 20);

    // ------------------------------------------------------------------
    // Keyed directory: the paper's example — "reading and deleting
    // different entries can be permitted to take place simultaneously."
    // ------------------------------------------------------------------
    let services: KeyedDirectory<String> = KeyedDirectory::create(&rt, 16)?;
    rt.atomic(|a| {
        services.insert(a, "printer", &"room 3".to_owned())?;
        services.insert(a, "scanner", &"room 5".to_owned())?;
        services.insert(a, "plotter", &"basement".to_owned())?;
        Ok(())
    })?;

    // One action holds a write lock on "printer" while another reads
    // "scanner" — no blocking, because they live in different buckets.
    let editor = rt.begin_top(chroma::base::ColourSet::single(rt.default_colour()))?;
    services.insert(&rt.scope(editor)?, "printer", &"room 9".to_owned())?;
    let concurrent_read = rt.atomic(|a| services.lookup(a, "scanner"))?;
    println!("while printer is being edited, scanner -> {concurrent_read:?}");
    rt.commit(editor)?;

    rt.atomic(|a| {
        println!("final directory:");
        for (key, value) in services.entries(a)? {
            println!("  {key} -> {value}");
        }
        Ok(())
    })?;
    println!("ok");
    Ok(())
}
