//! The distributed substrate (§2): fail-silent nodes, a lossy network,
//! two-phase commit, and a replicated name server — shown under fault
//! injection in the deterministic simulator.
//!
//! ```text
//! cargo run --example distributed_commit
//! ```

use chroma::base::ObjectId;
use chroma::dist::{Sim, Write};
use chroma::store::StoreBytes;

fn main() {
    // ------------------------------------------------------------------
    // Two-phase commit across three nodes, on a network losing 20% of
    // messages and duplicating 10%, with a participant crashing between
    // prepare and decision.
    // ------------------------------------------------------------------
    let mut sim = Sim::new(2026);
    sim.net.loss = 0.2;
    sim.net.duplication = 0.1;
    let coordinator = sim.add_node();
    let p1 = sim.add_node();
    let p2 = sim.add_node();

    let txn = sim.begin_transaction(
        coordinator,
        vec![
            (
                p1,
                vec![Write {
                    object: ObjectId::from_raw(1),
                    state: StoreBytes::from(b"ledger-entry".to_vec()),
                }],
            ),
            (
                p2,
                vec![Write {
                    object: ObjectId::from_raw(2),
                    state: StoreBytes::from(b"index-entry".to_vec()),
                }],
            ),
        ],
    );
    // Crash p2 mid-protocol, recover it later.
    sim.schedule_crash(p2, 60_000);
    sim.schedule_recover(p2, 900_000);
    sim.run_to_quiescence();

    println!("transaction {txn}:");
    println!(
        "  coordinator decision: {:?}",
        sim.coordinator_outcome(coordinator, txn)
    );
    let i1 = sim.node(p1).store.read(ObjectId::from_raw(1)).is_some();
    let i2 = sim.node(p2).store.read(ObjectId::from_raw(2)).is_some();
    println!("  installed at p1: {i1}, at p2: {i2}");
    println!(
        "  in doubt anywhere: {}",
        sim.node(p1).in_doubt(txn) || sim.node(p2).in_doubt(txn)
    );
    assert_eq!(i1, i2, "atomicity");
    let stats = sim.net_stats();
    println!(
        "  network: {} sent, {} delivered, {} dropped, {} duplicated",
        stats.sent, stats.delivered, stats.dropped, stats.duplicated
    );

    // ------------------------------------------------------------------
    // A replicated name server staying available through crashes.
    // ------------------------------------------------------------------
    let mut sim = Sim::new(7);
    let nodes = vec![sim.add_node(), sim.add_node(), sim.add_node()];
    let ns = chroma::apps::ReplicatedNameServer::create(&mut sim, ObjectId::from_raw(500), &nodes);
    assert!(ns.register(&mut sim, "printer", "room-3"));
    sim.run_to_quiescence();

    println!("\nreplicated name server:");
    sim.schedule_crash(nodes[0], 0);
    sim.run_to_quiescence();
    println!(
        "  node 0 down, lookup(printer) = {:?}",
        ns.lookup(&sim, "printer")
    );
    assert!(ns.register(&mut sim, "scanner", "room-5"));
    sim.run_to_quiescence();
    sim.schedule_recover(nodes[0], 0);
    sim.run_to_quiescence();
    sim.schedule_crash(nodes[1], 0);
    sim.schedule_crash(nodes[2], 0);
    sim.run_to_quiescence();
    println!(
        "  only the recovered node 0 up, lookup(scanner) = {:?} (caught up)",
        ns.lookup(&sim, "scanner")
    );
    assert_eq!(ns.lookup(&sim, "scanner"), Some("room-5".to_owned()));
    println!("ok");
}
