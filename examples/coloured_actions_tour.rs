//! A tour of multi-coloured actions themselves (§5): the fig. 10
//! two-colour example, the fig. 14 n-level structure through the
//! automatic colour compiler (fig. 15), and a look at the generated
//! assignment.
//!
//! ```text
//! cargo run --example coloured_actions_tour
//! ```

use chroma::core::{ColourSet, Runtime};
use chroma::structures::compiler::{assign, Structure};

fn main() -> Result<(), chroma::core::ActionError> {
    // ------------------------------------------------------------------
    // Fig. 10: an action B coloured {red, blue} inside A coloured
    // {blue}. B behaves like a top-level action for red objects and
    // like a nested action for blue ones.
    // ------------------------------------------------------------------
    let rt = Runtime::builder().build();
    let red = rt.universe().colour("red");
    let blue = rt.universe().colour("blue");
    let audit_log = rt.create_object(&0i32)?; // accessed in red
    let balance = rt.create_object(&0i32)?; // accessed in blue

    let a = rt.begin_top(ColourSet::single(blue))?;
    let b = rt.begin_nested(a, ColourSet::from_iter([red, blue]))?;
    {
        let scope = rt.scope(b)?;
        scope.write_in(red, audit_log, &1i32)?;
        scope.write_in(blue, balance, &100i32)?;
    }
    rt.commit(b)?;
    println!(
        "after B commits: audit_log committed={} balance committed={}",
        rt.read_committed::<i32>(audit_log)?,
        rt.read_committed::<i32>(balance)?
    );
    rt.abort(a);
    println!(
        "after A aborts:  audit_log committed={} balance working={}",
        rt.read_committed::<i32>(audit_log)?,
        rt.read_current::<i32>(balance)?
    );
    assert_eq!(rt.read_committed::<i32>(audit_log)?, 1); // red survived
    assert_eq!(rt.read_current::<i32>(balance)?, 0); // blue undone

    // ------------------------------------------------------------------
    // Figs. 14/15: describe the n-level independent structure and let
    // the compiler assign colours.
    // ------------------------------------------------------------------
    let fig14 = Structure::top(
        "A",
        vec![
            Structure::work("D"),
            Structure::action(
                "B",
                vec![
                    Structure::independent("C", 2, vec![Structure::work("C.body")]),
                    Structure::independent("E", 1, vec![Structure::work("E.body")]),
                ],
            ),
            Structure::independent("F", 1, vec![Structure::work("F.body")]),
        ],
    );
    let plan = assign(&fig14).expect("assignment");
    println!(
        "\nfig. 15 automatic colour assignment ({} colours):",
        plan.colour_count()
    );
    for node in &plan.nodes {
        println!("  {:>7}: colours {}", node.name, node.colours);
    }

    println!("\nsurvival predictions (fig. 14 claims):");
    for (work, aborter) in [
        ("E.body", "B"),
        ("E.body", "A"),
        ("C.body", "A"),
        ("D", "A"),
    ] {
        println!(
            "  {aborter} aborts → {work} undone? {}",
            plan.undone_by(work, aborter).expect("known")
        );
    }

    // Execute the plan with "A aborts at the end" and verify the claims
    // on the real runtime.
    let rt = Runtime::builder().build();
    let report = plan.execute(&rt, &|name| name != "A")?;
    println!("\nexecuted with A aborting — survivors:");
    let mut names: Vec<_> = report.survived.iter().collect();
    names.sort();
    for (name, survived) in names {
        println!(
            "  {name}: {}",
            if *survived { "survived" } else { "undone" }
        );
    }
    assert!(report.survived["C.body"]);
    assert!(report.survived["F.body"]);
    assert!(!report.survived["D"]);
    assert!(!report.survived["E.body"]);
    println!("\nok");
    Ok(())
}
