//! Property tests: the JSONL wire format round-trips every event the
//! bus can emit, and the latency histogram's derived statistics stay
//! within the bounds its bucketing promises.

use chroma_base::{ActionId, Colour, LockMode, NodeId, ObjectId};
use chroma_obs::{Event, EventKind, Histogram, MsgKind};
use proptest::prelude::*;

fn mode_of(tag: u8) -> LockMode {
    match tag % 3 {
        0 => LockMode::Read,
        1 => LockMode::ExclusiveRead,
        _ => LockMode::Write,
    }
}

fn kind_strategy() -> impl Strategy<Value = EventKind> {
    (0u8..7, any::<u64>(), any::<u64>(), 0usize..64, any::<u64>()).prop_map(
        |(pick, x, y, colour, extra)| {
            let tag = (extra & 0xff) as u8;
            let node = NodeId::from_raw((extra >> 32) as u32);
            let flag = extra & 1 == 0;
            let action = ActionId::from_raw(x);
            let object = ObjectId::from_raw(y);
            let colour = Colour::from_index(colour);
            let kind = MsgKind::ALL[(tag as usize) % MsgKind::ALL.len()];
            match pick {
                0 => EventKind::ActionBegin {
                    action,
                    parent: flag.then_some(ActionId::from_raw(y)),
                    colours: x,
                },
                1 => EventKind::LockGrant {
                    action,
                    object,
                    colour,
                    mode: mode_of(tag),
                },
                2 => EventKind::LockInherit {
                    from: action,
                    to: ActionId::from_raw(y),
                    object,
                    colour,
                },
                3 => EventKind::UndoRecord {
                    action,
                    object,
                    colour,
                },
                4 => EventKind::TpcDecide {
                    node,
                    txn: x,
                    commit: flag,
                    participants: y,
                },
                5 => EventKind::TpcVote {
                    node,
                    txn: x,
                    yes: flag,
                },
                _ => EventKind::MsgSend {
                    from: node,
                    to: NodeId::from_raw(node.as_raw().wrapping_add(1)),
                    kind,
                },
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn jsonl_round_trips_random_events(
        at_us in any::<u64>(),
        kind in kind_strategy(),
        lc in any::<u64>(),
        has_corr in any::<bool>(),
        corr in any::<u64>(),
        has_bound in any::<bool>(),
        bound in any::<u32>(),
    ) {
        let mut event = Event::at(at_us, kind);
        event.lc = lc;
        event.corr = has_corr.then_some(corr);
        if event.node.is_none() && has_bound {
            event.node = Some(NodeId::from_raw(bound));
        }
        let line = event.to_json_line();
        let back = Event::from_json_line(&line).expect("own output parses");
        prop_assert_eq!(back, event);
    }

    #[test]
    fn histogram_statistics_stay_bounded(samples in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut hist = Histogram::default();
        for &s in &samples {
            hist.observe(s);
        }
        let max = *samples.iter().max().expect("non-empty");
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.max_us(), max);
        // Quantiles are bucketed approximations but may never exceed
        // the exact maximum, and must be monotone in q.
        let q50 = hist.quantile_us(0.5);
        let q95 = hist.quantile_us(0.95);
        prop_assert!(q50 <= q95, "p50 {} > p95 {}", q50, q95);
        prop_assert!(q95 <= max, "p95 {} > max {}", q95, max);
        let summary = hist.summary();
        prop_assert_eq!(summary.count, samples.len());
        prop_assert!(summary.mean_us <= max as f64);
    }

    #[test]
    fn histogram_merge_is_additive(
        left in prop::collection::vec(any::<u64>(), 0..50),
        right in prop::collection::vec(any::<u64>(), 0..50),
    ) {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for &s in &left {
            a.observe(s);
            whole.observe(s);
        }
        for &s in &right {
            b.observe(s);
            whole.observe(s);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.max_us(), whole.max_us());
        prop_assert_eq!(a.quantile_us(0.5), whole.quantile_us(0.5));
    }
}
