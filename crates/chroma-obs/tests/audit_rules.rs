//! Negative tests for the trace auditor: each invariant rule must fire
//! on a trace violating exactly it, and corrupted JSONL traces must be
//! rejected outright rather than partially audited.

use chroma_base::{ActionId, Colour, LockMode, NodeId, ObjectId};
use chroma_obs::{Event, EventKind, TraceAuditor, Violation};

fn ev(kind: EventKind) -> Event {
    Event::at(0, kind)
}

fn a(raw: u64) -> ActionId {
    ActionId::from_raw(raw)
}

fn o(raw: u64) -> ObjectId {
    ObjectId::from_raw(raw)
}

fn n(raw: u32) -> NodeId {
    NodeId::from_raw(raw)
}

fn begin(action: ActionId, parent: Option<ActionId>, colours: u64) -> Event {
    ev(EventKind::ActionBegin {
        action,
        parent,
        colours,
    })
}

fn grant(action: ActionId, object: ObjectId, mode: LockMode) -> Event {
    ev(EventKind::LockGrant {
        action,
        object,
        colour: Colour::from_index(0),
        mode,
    })
}

fn release(action: ActionId, object: ObjectId) -> Event {
    ev(EventKind::LockRelease {
        action,
        object,
        colour: Colour::from_index(0),
    })
}

// ---------------------------------------------------------------------
// R1: strict two-phase locking
// ---------------------------------------------------------------------

#[test]
fn r1_grant_after_release_fires() {
    let trace = vec![
        begin(a(1), None, 0b1),
        grant(a(1), o(1), LockMode::Read),
        release(a(1), o(1)),
        grant(a(1), o(2), LockMode::Read),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::LockAfterShrink { action, .. }] if *action == a(1)
    ));
}

#[test]
fn r1_grant_after_termination_fires() {
    let trace = vec![
        begin(a(1), None, 0b1),
        ev(EventKind::ActionCommit { action: a(1) }),
        grant(a(1), o(1), LockMode::Read),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::LockAfterShrink { .. }]
    ));
}

#[test]
fn r1_grant_after_inherit_fires() {
    // Passing a lock up is already the shrinking phase: no new locks.
    let trace = vec![
        begin(a(1), None, 0b1),
        begin(a(2), Some(a(1)), 0b1),
        grant(a(2), o(1), LockMode::Write),
        ev(EventKind::LockInherit {
            from: a(2),
            to: a(1),
            object: o(1),
            colour: Colour::from_index(0),
        }),
        grant(a(2), o(2), LockMode::Read),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::LockAfterShrink { action, .. }] if *action == a(2)
    ));
}

// ---------------------------------------------------------------------
// R2: Moss commit-time inheritance by the closest colour-holding
// ancestor
// ---------------------------------------------------------------------

#[test]
fn r2_inherit_skipping_closest_ancestor_fires() {
    // Grandparent and parent both carry colour 0; the child passes its
    // lock to the grandparent, skipping the closer parent.
    let trace = vec![
        begin(a(1), None, 0b1),
        begin(a(2), Some(a(1)), 0b1),
        begin(a(3), Some(a(2)), 0b1),
        grant(a(3), o(1), LockMode::Write),
        ev(EventKind::LockInherit {
            from: a(3),
            to: a(1),
            object: o(1),
            colour: Colour::from_index(0),
        }),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::BadInheritTarget { from, to, expected, .. }]
            if *from == a(3) && *to == a(1) && *expected == Some(a(2))
    ));
}

#[test]
fn r2_inherit_when_no_ancestor_has_colour_fires() {
    // The parent does not carry colour 0, so the lock should have been
    // released, not inherited.
    let trace = vec![
        begin(a(1), None, 0b10),
        begin(a(2), Some(a(1)), 0b11),
        grant(a(2), o(1), LockMode::Write),
        ev(EventKind::LockInherit {
            from: a(2),
            to: a(1),
            object: o(1),
            colour: Colour::from_index(0),
        }),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::BadInheritTarget { expected: None, .. }]
    ));
}

#[test]
fn r2_inherit_of_never_granted_lock_fires() {
    let trace = vec![
        begin(a(1), None, 0b1),
        begin(a(2), Some(a(1)), 0b1),
        ev(EventKind::LockInherit {
            from: a(2),
            to: a(1),
            object: o(1),
            colour: Colour::from_index(0),
        }),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::InheritWithoutLock { from, .. } if *from == a(2))));
}

#[test]
fn release_of_never_granted_lock_fires() {
    let trace = vec![begin(a(1), None, 0b1), release(a(1), o(1))];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::ReleaseWithoutLock { .. }]
    ));
}

// ---------------------------------------------------------------------
// R3: no write without a write-mode lock
// ---------------------------------------------------------------------

#[test]
fn r3_undo_without_any_lock_fires() {
    let trace = vec![
        begin(a(1), None, 0b1),
        ev(EventKind::UndoRecord {
            action: a(1),
            object: o(1),
            colour: Colour::from_index(0),
        }),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::WriteWithoutWriteLock { .. }]
    ));
}

#[test]
fn r3_undo_under_read_lock_fires() {
    let trace = vec![
        begin(a(1), None, 0b1),
        grant(a(1), o(1), LockMode::Read),
        ev(EventKind::UndoRecord {
            action: a(1),
            object: o(1),
            colour: Colour::from_index(0),
        }),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::WriteWithoutWriteLock { .. }]
    ));
}

#[test]
fn r3_undo_under_write_lock_is_clean() {
    let trace = vec![
        begin(a(1), None, 0b1),
        grant(a(1), o(1), LockMode::Write),
        ev(EventKind::UndoRecord {
            action: a(1),
            object: o(1),
            colour: Colour::from_index(0),
        }),
        release(a(1), o(1)),
        ev(EventKind::ActionCommit { action: a(1) }),
    ];
    assert!(TraceAuditor::audit_events(&trace).is_clean());
}

// ---------------------------------------------------------------------
// R4: two-phase-commit safety
// ---------------------------------------------------------------------

#[test]
fn r4_divergent_resolution_fires() {
    let trace = vec![
        ev(EventKind::TpcVote {
            node: n(1),
            txn: 7,
            yes: true,
        }),
        ev(EventKind::TpcDecide {
            node: n(0),
            txn: 7,
            commit: true,
            participants: 1,
        }),
        ev(EventKind::TpcResolve {
            node: n(1),
            txn: 7,
            commit: false,
        }),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::DivergentDecision {
            txn: 7,
            earlier: true,
            later: false,
            ..
        }]
    ));
}

#[test]
fn r4_commit_without_quorum_fires() {
    // Two participants declared, one yes-vote seen.
    let trace = vec![
        ev(EventKind::TpcVote {
            node: n(1),
            txn: 3,
            yes: true,
        }),
        ev(EventKind::TpcDecide {
            node: n(0),
            txn: 3,
            commit: true,
            participants: 2,
        }),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::CommitWithoutQuorum {
            txn: 3,
            yes_votes: 1,
            participants: 2,
        }]
    ));
}

#[test]
fn r4_commit_despite_no_vote_fires() {
    let trace = vec![
        ev(EventKind::TpcVote {
            node: n(1),
            txn: 9,
            yes: true,
        }),
        ev(EventKind::TpcVote {
            node: n(2),
            txn: 9,
            yes: false,
        }),
        ev(EventKind::TpcVote {
            node: n(2),
            txn: 9,
            yes: true,
        }),
        ev(EventKind::TpcDecide {
            node: n(0),
            txn: 9,
            commit: true,
            participants: 2,
        }),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::CommitDespiteNoVote { txn: 9, node } if *node == n(2))));
}

#[test]
fn r4_presumed_abort_resolution_then_agreeing_decide_is_clean() {
    // A participant resolved abort (coordinator never logged commit);
    // the coordinator later reaching the same abort verdict is fine.
    let trace = vec![
        ev(EventKind::TpcResolve {
            node: n(1),
            txn: 4,
            commit: false,
        }),
        ev(EventKind::TpcDecide {
            node: n(0),
            txn: 4,
            commit: false,
            participants: 1,
        }),
    ];
    assert!(TraceAuditor::audit_events(&trace).is_clean());
}

// ---------------------------------------------------------------------
// Dangling references and corrupted traces
// ---------------------------------------------------------------------

#[test]
fn unknown_action_reference_fires() {
    let trace = vec![grant(a(99), o(1), LockMode::Read)];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::UnknownAction { action, .. }] if *action == a(99)
    ));
}

#[test]
fn corrupted_jsonl_is_rejected_with_line_number() {
    let good = Event::at(12, EventKind::WalAppend { records: 1 }).to_json_line();
    let text = format!("{good}\n{{\"at_us\":5,\"ev\":\"wal_append\"\n{good}\n");
    let err = TraceAuditor::audit_jsonl(&text).expect_err("truncated line must reject");
    assert!(err.to_string().contains("line 2"), "{err}");
}

#[test]
fn jsonl_with_unknown_event_tag_is_rejected() {
    let text = "{\"at_us\":1,\"ev\":\"not_a_real_event\"}\n";
    assert!(TraceAuditor::audit_jsonl(text).is_err());
}

#[test]
fn blank_lines_are_tolerated_but_garbage_is_not() {
    let good = Event::at(3, EventKind::NodeCrash { node: n(2) }).to_json_line();
    let ok = format!("\n{good}\n\n");
    assert_eq!(TraceAuditor::audit_jsonl(&ok).expect("clean").events, 1);
    let bad = format!("{good}garbage\n");
    assert!(TraceAuditor::audit_jsonl(&bad).is_err());
}
