//! `chroma-trace` — offline analysis of chroma JSONL traces.
//!
//! ```text
//! chroma-trace analyze <trace.jsonl>             audit R1–R8 + span/flow summary
//! chroma-trace export <trace.jsonl> [out.json]   write Chrome trace-event JSON
//! chroma-trace critical-path <trace.jsonl>       per-colour latency phase breakdown
//! ```
//!
//! `analyze` exits non-zero on any invariant violation or malformed
//! line, so it slots straight into CI after a traced run.

use std::process::ExitCode;

use chroma_obs::{chrome_trace_from, Event, SpanForest, TraceAuditor};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path, out) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str(), None),
        [cmd, path, out] if cmd == "export" => (cmd.as_str(), path.as_str(), Some(out.clone())),
        _ => {
            eprintln!(
                "usage: chroma-trace <analyze|export|critical-path> <trace.jsonl> [out.json]"
            );
            return ExitCode::from(2);
        }
    };

    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("chroma-trace: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let events = match parse(&text) {
        Ok(events) => events,
        Err(message) => {
            eprintln!("chroma-trace: {message}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "analyze" => analyze(&events),
        "export" => export(&events, path, out),
        "critical-path" => {
            let forest = SpanForest::build(&events);
            print!("{}", forest.critical_path(&events));
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("chroma-trace: unknown subcommand `{other}`");
            ExitCode::from(2)
        }
    }
}

fn parse(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_json_line(line) {
            Ok(event) => events.push(event),
            Err(e) => return Err(e.at_line(i + 1).to_string()),
        }
    }
    Ok(events)
}

fn analyze(events: &[Event]) -> ExitCode {
    let forest = SpanForest::build(events);
    let actions = forest
        .spans
        .iter()
        .filter(|s| matches!(s.kind, chroma_obs::SpanKind::Action { .. }))
        .count();
    println!(
        "{} event(s): {} span(s) ({actions} action(s)), {} root(s), {} flow(s), \
         {} unpaired send(s), {} unpaired receive(s)",
        events.len(),
        forest.spans.len(),
        forest.roots.len(),
        forest.flows.len(),
        forest.unpaired_sends.len(),
        forest.unpaired_receives.len(),
    );
    let report = TraceAuditor::audit_events(events);
    print!("{report}");
    if report.is_clean() {
        println!();
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn export(events: &[Event], path: &str, out: Option<String>) -> ExitCode {
    let out = out.unwrap_or_else(|| format!("{}.json", path.trim_end_matches(".jsonl")));
    let forest = SpanForest::build(events);
    let json = chrome_trace_from(&forest, events);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("chroma-trace: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {out}: {} span(s), {} flow arrow(s) across {} track(s)",
        forest.spans.len(),
        forest.flows.len(),
        events
            .iter()
            .map(|e| e.node)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
    );
    ExitCode::SUCCESS
}
