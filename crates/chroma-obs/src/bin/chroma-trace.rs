//! `chroma-trace` — offline analysis of chroma JSONL traces.
//!
//! ```text
//! chroma-trace analyze <trace.jsonl>             audit R1–R8 + span/flow summary
//! chroma-trace export <trace.jsonl> [out.json]   write Chrome trace-event JSON
//! chroma-trace critical-path <trace.jsonl>       per-colour latency phase breakdown
//! chroma-trace watch <trace.jsonl> [--once]      tail live gauges and violations
//! chroma-trace merge <out.jsonl> <in.jsonl>...   merge per-process traces causally
//! ```
//!
//! `analyze` exits non-zero on any invariant violation or malformed
//! line, so it slots straight into CI after a traced run.
//!
//! `merge` combines the per-process traces of a real (`chroma-node`)
//! cluster into one stream ordered by `(lc, node)` — Lamport clocks
//! put every send before its receives — so `analyze` audits a real
//! deployment exactly as it audits a simulation. Unlike `analyze`, the
//! merge is lenient: a line torn by `kill -9` is skipped and counted,
//! not fatal.
//!
//! `watch` tails a trace a live system is appending to, printing each
//! `metrics_snapshot` gauge record and every `watchdog_violation` as
//! they land. With `--once` it reads to the current end of file and
//! exits — non-zero if any violation was seen — so it doubles as a
//! cheap CI gate on a finished trace.

use std::io::Read as IoRead;
use std::process::ExitCode;

use chroma_obs::{chrome_trace_from, Event, EventKind, SpanForest, TraceAuditor};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path, out) = match args.as_slice() {
        [cmd, out, inputs @ ..] if cmd == "merge" && !inputs.is_empty() => {
            return merge(out, inputs);
        }
        [cmd, path] => (cmd.as_str(), path.as_str(), None),
        [cmd, path, out] if cmd == "export" => (cmd.as_str(), path.as_str(), Some(out.clone())),
        [cmd, path, flag] if cmd == "watch" && flag == "--once" => {
            return watch(path, true);
        }
        _ => {
            eprintln!(
                "usage: chroma-trace <analyze|export|critical-path> <trace.jsonl> [out.json]\n\
                 \x20      chroma-trace watch <trace.jsonl> [--once]\n\
                 \x20      chroma-trace merge <out.jsonl> <in.jsonl>..."
            );
            return ExitCode::from(2);
        }
    };
    if cmd == "watch" {
        return watch(path, false);
    }

    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("chroma-trace: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let events = match parse(&text) {
        Ok(events) => events,
        Err(message) => {
            eprintln!("chroma-trace: {message}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "analyze" => analyze(&events),
        "export" => export(&events, path, out),
        "critical-path" => {
            let forest = SpanForest::build(&events);
            print!("{}", forest.critical_path(&events));
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("chroma-trace: unknown subcommand `{other}`");
            ExitCode::from(2)
        }
    }
}

/// Merges per-process traces into `out` in causal `(lc, node)` order.
fn merge(out: &str, inputs: &[String]) -> ExitCode {
    let outcome = match chroma_obs::merge_trace_files(inputs) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("chroma-trace: merge failed: {e}");
            return ExitCode::from(2);
        }
    };
    let mut text = String::new();
    for event in &outcome.events {
        text.push_str(&event.to_json_line());
        text.push('\n');
    }
    if let Err(e) = std::fs::write(out, &text) {
        eprintln!("chroma-trace: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    let detail: Vec<String> = inputs
        .iter()
        .zip(&outcome.per_file)
        .map(|(path, n)| format!("{path}: {n}"))
        .collect();
    println!(
        "merged {} event(s) from {} file(s) into {out} ({}; {} malformed line(s) skipped)",
        outcome.events.len(),
        inputs.len(),
        detail.join(", "),
        outcome.skipped,
    );
    ExitCode::SUCCESS
}

fn parse(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_json_line(line) {
            Ok(event) => events.push(event),
            Err(e) => return Err(e.at_line(i + 1).to_string()),
        }
    }
    Ok(events)
}

fn analyze(events: &[Event]) -> ExitCode {
    let forest = SpanForest::build(events);
    let actions = forest
        .spans
        .iter()
        .filter(|s| matches!(s.kind, chroma_obs::SpanKind::Action { .. }))
        .count();
    println!(
        "{} event(s): {} span(s) ({actions} action(s)), {} root(s), {} flow(s), \
         {} unpaired send(s), {} unpaired receive(s)",
        events.len(),
        forest.spans.len(),
        forest.roots.len(),
        forest.flows.len(),
        forest.unpaired_sends.len(),
        forest.unpaired_receives.len(),
    );
    let report = TraceAuditor::audit_events(events);
    print!("{report}");
    if report.is_clean() {
        println!();
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Tails `path`, printing gauge snapshots and violations as they
/// arrive. `once` stops at the current end of file instead of
/// following; the exit code then reflects whether violations were
/// seen.
fn watch(path: &str, once: bool) -> ExitCode {
    let mut file = match std::fs::File::open(path) {
        Ok(file) => file,
        Err(e) => {
            eprintln!("chroma-trace: cannot open {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut pending = String::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut snapshots = 0u64;
    let mut violations = 0u64;
    loop {
        match file.read(&mut chunk) {
            Ok(0) => {
                if once {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
            Ok(n) => {
                pending.push_str(&String::from_utf8_lossy(&chunk[..n]));
                // process complete lines only; a live writer may have
                // half a record in flight
                while let Some(eol) = pending.find('\n') {
                    let line: String = pending.drain(..=eol).collect();
                    watch_line(line.trim_end(), &mut snapshots, &mut violations);
                }
            }
            Err(e) => {
                eprintln!("chroma-trace: read error on {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if !pending.trim().is_empty() {
        watch_line(pending.trim_end(), &mut snapshots, &mut violations);
    }
    println!("watched {path}: {snapshots} gauge snapshot(s), {violations} violation(s)");
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn watch_line(line: &str, snapshots: &mut u64, violations: &mut u64) {
    if line.is_empty() {
        return;
    }
    let Ok(event) = Event::from_json_line(line) else {
        return; // not this tool's record (or a torn write): skip
    };
    match event.kind {
        EventKind::MetricsSnapshot {
            lock_entries,
            lock_waiters,
            group_queue,
            versions,
            gc_backlog,
            ckpt_backlog,
            snapshots: open_snapshots,
            live_actions,
        } => {
            *snapshots += 1;
            println!(
                "[{:>12}] gauges  locks.entries={lock_entries} locks.waiting={lock_waiters} \
                 store.group_queue={group_queue} store.versions={versions} \
                 store.gc_backlog={gc_backlog} store.ckpt_backlog={ckpt_backlog} \
                 core.snapshots={open_snapshots} core.live_actions={live_actions}",
                event.at_us
            );
        }
        EventKind::WatchdogViolation {
            rule,
            action,
            object,
            aux,
        } => {
            *violations += 1;
            println!(
                "[{:>12}] VIOLATION {rule} action={action} object={object} aux={aux}",
                event.at_us
            );
        }
        _ => {}
    }
}

fn export(events: &[Event], path: &str, out: Option<String>) -> ExitCode {
    let out = out.unwrap_or_else(|| format!("{}.json", path.trim_end_matches(".jsonl")));
    let forest = SpanForest::build(events);
    let json = chrome_trace_from(&forest, events);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("chroma-trace: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {out}: {} span(s), {} flow arrow(s) across {} track(s)",
        forest.spans.len(),
        forest.flows.len(),
        events
            .iter()
            .map(|e| e.node)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
    );
    ExitCode::SUCCESS
}
