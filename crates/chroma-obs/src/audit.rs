//! Offline invariant auditing of captured event streams.
//!
//! The auditor replays a trace in emission order and checks the
//! properties the paper's construction is supposed to guarantee:
//!
//! * **R1 — strict 2PL.** Once an action has released or passed on any
//!   lock (its shrinking phase), or has terminated, it acquires no
//!   further locks.
//! * **R2 — Moss inheritance.** A commit-time lock transfer must go to
//!   the *closest* ancestor that holds the lock's colour, and the
//!   transferring action must actually hold the lock.
//! * **R3 — no write without a write lock.** Every before-image
//!   (`UndoRecord`) must be covered by a write-mode lock held by that
//!   action on that object in that colour at that moment.
//! * **R4 — 2PC safety.** All decision and resolution events for one
//!   transaction agree; a commit decision requires a yes-vote from
//!   every participant and no observed no-vote.
//! * **R5 — per-replica version monotonicity.** A member never
//!   installs a version of a replicated object lower than one it has
//!   already installed (a late two-phase-commit decision must not roll
//!   a caught-up copy backwards).
//! * **R6 — no read from a catching-up replica.** A read is never
//!   served from a member between its `CatchupBegin` and `CatchupEnd`
//!   for that object, and never from a copy flagged stale.
//! * **R7 — bounded staleness.** A served read, and a member rejoining
//!   after catch-up, may lag the highest version any member has
//!   installed by at most the configured window
//!   ([`with_staleness_window`](TraceAuditor::with_staleness_window),
//!   default 1 — the one write the group may have in flight).
//! * **R8 — no happens-before inversion.** Causality, as witnessed by
//!   the per-node Lamport clocks (`lc`) and send/receive correlation
//!   ids (`corr`): a delivery's merged clock must strictly exceed the
//!   matching send's, every delivery must correlate to a send the
//!   trace contains, a child action's whole span must be enclosed by
//!   its parent's (begin after the parent begins, terminate before
//!   the parent terminates), and a 2PC commit decision must causally
//!   follow every yes-vote it counts. Clock checks only apply to
//!   events that were stamped (`lc > 0`), so pre-causality traces
//!   still audit.
//! * **R9 — group-commit coverage.** Every committed batch's marker
//!   (`DiskAppend`) is covered by exactly one group fsync
//!   (`DiskGroupCommit` must declare precisely the batches appended
//!   since the previous group flush), and recovery (`DiskReplay`)
//!   replays exactly the batches whose markers were group-fsynced but
//!   never checkpointed. The rule only arms once the trace contains a
//!   `DiskGroupCommit`, so pre-group-commit traces still audit.
//! * **R10 — snapshot-read correctness.** A declared read-only action
//!   (`SnapshotOpen`) must (a) serve every `SnapshotRead` from the
//!   *newest* published version (`VersionPublish`) whose stamp is
//!   `<=` the snapshot's captured stamp for that version's colour —
//!   stamp 0 meaning the base/stable state — and (b) never appear in
//!   lock traffic (request, grant, or conflict: a waiting snapshot
//!   reader would be a waits-for edge). Version chains are volatile,
//!   so a `NodeCrash` resets the node's published history: post-crash
//!   snapshots correctly see the stable state as stamp 0.
//! * **R11 — segment lifecycle.** The segmented intentions log's
//!   maintenance never loses a committed batch: a segment is
//!   garbage-collected (`SegmentGc`) only at or below the checkpoint
//!   watermark (`CheckpointEnd`'s `upto`), and recovery (`DiskReplay`)
//!   replays exactly the manifest's live suffix — the batches sealed
//!   into uncheckpointed segments (`SegmentSeal`) plus those committed
//!   into the active segment since the last seal. The rule only arms
//!   once the trace contains a `SegmentSeal`, so pre-segment traces
//!   still audit.
//!
//! The auditor is deliberately independent of the runtime: it sees
//! only the trace, so a bug that corrupts runtime state *and* its own
//! bookkeeping is still caught as long as the emitted events disagree
//! with each other.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use chroma_base::{ActionId, Colour, LockMode, NodeId, ObjectId};

use crate::event::{Event, EventKind, TraceParseError};

/// One invariant breach found in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// R1: a lock was granted to an action already past its shrinking
    /// point (released/inherited a lock, or terminated).
    LockAfterShrink {
        /// The offending action.
        action: ActionId,
        /// The object granted.
        object: ObjectId,
        /// The colour granted.
        colour: Colour,
    },
    /// R2: a lock was inherited by something other than the closest
    /// ancestor holding the colour.
    BadInheritTarget {
        /// The committing action.
        from: ActionId,
        /// Who actually received the lock.
        to: ActionId,
        /// Who should have (`None` = no ancestor holds the colour, so
        /// the lock should have been released instead).
        expected: Option<ActionId>,
        /// The object concerned.
        object: ObjectId,
        /// The colour concerned.
        colour: Colour,
    },
    /// R2: an action passed on a lock the trace never granted it.
    InheritWithoutLock {
        /// The committing action.
        from: ActionId,
        /// The object concerned.
        object: ObjectId,
        /// The colour concerned.
        colour: Colour,
    },
    /// An action released a lock the trace never granted it.
    ReleaseWithoutLock {
        /// The releasing action.
        action: ActionId,
        /// The object concerned.
        object: ObjectId,
        /// The colour concerned.
        colour: Colour,
    },
    /// R3: a before-image was recorded without a write-mode lock.
    WriteWithoutWriteLock {
        /// The writing action.
        action: ActionId,
        /// The object written.
        object: ObjectId,
        /// The colour of the write.
        colour: Colour,
    },
    /// R4: two decision/resolution events for one transaction disagree.
    DivergentDecision {
        /// The transaction.
        txn: u64,
        /// The node that emitted the conflicting event.
        node: NodeId,
        /// What the trace had already established.
        earlier: bool,
        /// What this event claims.
        later: bool,
    },
    /// R4: a commit decision without a yes-vote from every participant.
    CommitWithoutQuorum {
        /// The transaction.
        txn: u64,
        /// Distinct yes-voters seen before the decision.
        yes_votes: u64,
        /// Participants the decision itself declares.
        participants: u64,
    },
    /// R4: a commit decision although some participant voted no.
    CommitDespiteNoVote {
        /// The transaction.
        txn: u64,
        /// A no-voter.
        node: NodeId,
    },
    /// R5: a member installed a lower version of a replicated object
    /// than one it had already installed.
    ReplicaVersionRegression {
        /// The regressing member.
        node: NodeId,
        /// The replicated object.
        object: ObjectId,
        /// The version previously installed.
        from: u64,
        /// The lower version installed now.
        to: u64,
    },
    /// R6: a read was served from a member still catching up (inside
    /// its `CatchupBegin`..`CatchupEnd` window, or flagged stale).
    ReadDuringCatchup {
        /// The serving member.
        node: NodeId,
        /// The replicated object.
        object: ObjectId,
    },
    /// R7: a served or rejoin version lagged the group's highest
    /// installed version by more than the staleness window.
    StalenessWindowExceeded {
        /// The lagging member.
        node: NodeId,
        /// The replicated object.
        object: ObjectId,
        /// The lagging version.
        version: u64,
        /// The highest version any member had installed by then.
        latest: u64,
        /// The configured window.
        window: u64,
    },
    /// The trace references an action never begun (truncated or
    /// corrupted trace, or a missing emission site).
    UnknownAction {
        /// The unknown action.
        action: ActionId,
        /// Which event kind referenced it.
        context: &'static str,
    },
    /// R8: a delivery's Lamport clock did not exceed the matching
    /// send's — the receive failed to merge the sender's clock, so
    /// the trace cannot order the pair causally.
    ClockInversion {
        /// The correlation id pairing the two events.
        corr: u64,
        /// The send's clock.
        send_lc: u64,
        /// The delivery's (not greater) clock.
        recv_lc: u64,
    },
    /// R8: a delivery whose correlation id matches no send in the
    /// trace — an applied message that nothing provably caused.
    ReceiveWithoutSend {
        /// The orphaned correlation id.
        corr: u64,
        /// The node that applied the delivery.
        node: NodeId,
    },
    /// R8: a child action's span escaped its parent's — it began
    /// after the parent terminated, or was still live when the parent
    /// terminated.
    ChildOutsideParent {
        /// The escaping child.
        child: ActionId,
        /// Its parent.
        parent: ActionId,
    },
    /// R8: a 2PC commit decision whose Lamport clock does not exceed
    /// a counted yes-vote's — the decision cannot have causally
    /// followed the vote it claims to be based on.
    CommitBeforeVote {
        /// The transaction.
        txn: u64,
        /// The yes-voter whose vote the decision did not follow.
        node: NodeId,
    },
    /// R9: a group fsync did not cover exactly the batches appended
    /// since the previous one — a marker was either flushed twice or
    /// reported durable without a covering fsync.
    GroupFsyncCoverage {
        /// Batches the `DiskGroupCommit` event declared.
        declared: u64,
        /// Batch appends the trace saw since the last group fsync.
        appended: u64,
    },
    /// R9: recovery did not replay exactly the batches whose markers
    /// were group-fsynced but never checkpointed.
    ReplayMarkMismatch {
        /// Batches the `DiskReplay` event replayed.
        replayed: u64,
        /// Marked-but-unchecked batches the trace had accumulated.
        marked: u64,
    },
    /// R10: a snapshot read did not observe the newest committed
    /// version visible at the snapshot's captured stamps.
    SnapshotReadNotNewest {
        /// The reading snapshot action.
        action: ActionId,
        /// The object read.
        object: ObjectId,
        /// The version stamp the read claims it served.
        served: u64,
        /// The newest published stamp visible at the snapshot's
        /// captured frontier (0 = the base / stable state).
        expected: u64,
    },
    /// R10: a snapshot (read-only) action appeared in lock traffic —
    /// it requested, was granted, or waited for a lock, so it could
    /// appear in a waits-for edge.
    SnapshotReaderLocks {
        /// The offending snapshot action.
        action: ActionId,
        /// The object it touched in the lock table.
        object: ObjectId,
    },
    /// R11: a segment was garbage-collected above the checkpoint
    /// watermark — its committed batches were never folded into the
    /// object store, so a crash after the GC would lose them.
    GcUncheckpointedSegment {
        /// The segment the GC deleted.
        segment: u64,
        /// The checkpoint watermark at the time of the GC.
        watermark: u64,
    },
    /// R11: recovery did not replay exactly the manifest's live
    /// suffix (uncheckpointed sealed segments plus the active tail).
    ReplayManifestMismatch {
        /// Batches the `DiskReplay` event replayed.
        replayed: u64,
        /// Batches the live suffix held according to the trace.
        live: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::LockAfterShrink {
                action,
                object,
                colour,
            } => write!(
                f,
                "strict 2PL: {action} granted {object}/{colour} after shrinking"
            ),
            Violation::BadInheritTarget {
                from,
                to,
                expected,
                object,
                colour,
            } => match expected {
                Some(e) => write!(
                    f,
                    "inheritance: {from} passed {object}/{colour} to {to}, closest {colour} ancestor is {e}"
                ),
                None => write!(
                    f,
                    "inheritance: {from} passed {object}/{colour} to {to}, but no ancestor holds {colour} (should release)"
                ),
            },
            Violation::InheritWithoutLock {
                from,
                object,
                colour,
            } => write!(f, "inheritance: {from} passed {object}/{colour} it never held"),
            Violation::ReleaseWithoutLock {
                action,
                object,
                colour,
            } => write!(f, "release: {action} released {object}/{colour} it never held"),
            Violation::WriteWithoutWriteLock {
                action,
                object,
                colour,
            } => write!(
                f,
                "write safety: {action} recorded an undo for {object}/{colour} without a write lock"
            ),
            Violation::DivergentDecision {
                txn,
                node,
                earlier,
                later,
            } => write!(
                f,
                "2pc: T{txn} decided {} but {node} says {}",
                verdict(*earlier),
                verdict(*later)
            ),
            Violation::CommitWithoutQuorum {
                txn,
                yes_votes,
                participants,
            } => write!(
                f,
                "2pc: T{txn} committed with {yes_votes}/{participants} yes-votes"
            ),
            Violation::CommitDespiteNoVote { txn, node } => {
                write!(f, "2pc: T{txn} committed although {node} voted no")
            }
            Violation::ReplicaVersionRegression {
                node,
                object,
                from,
                to,
            } => write!(
                f,
                "replication: {node} installed {object} v{to} after already holding v{from}"
            ),
            Violation::ReadDuringCatchup { node, object } => write!(
                f,
                "replication: a read of {object} was served from {node} while it was catching up"
            ),
            Violation::StalenessWindowExceeded {
                node,
                object,
                version,
                latest,
                window,
            } => write!(
                f,
                "replication: {node} served {object} v{version} while the group held v{latest} (window {window})"
            ),
            Violation::UnknownAction { action, context } => {
                write!(f, "trace: {context} references unknown action {action}")
            }
            Violation::ClockInversion {
                corr,
                send_lc,
                recv_lc,
            } => write!(
                f,
                "causality: delivery of corr {corr} carries lc {recv_lc}, not after the send's lc {send_lc}"
            ),
            Violation::ReceiveWithoutSend { corr, node } => write!(
                f,
                "causality: {node} applied a delivery with corr {corr} that matches no send"
            ),
            Violation::ChildOutsideParent { child, parent } => write!(
                f,
                "causality: {child}'s span is not enclosed by its parent {parent}'s"
            ),
            Violation::CommitBeforeVote { txn, node } => write!(
                f,
                "causality: T{txn}'s commit decision does not causally follow {node}'s yes-vote"
            ),
            Violation::GroupFsyncCoverage { declared, appended } => write!(
                f,
                "group commit: a group fsync declared {declared} batch(es) but {appended} were appended since the last one"
            ),
            Violation::ReplayMarkMismatch { replayed, marked } => write!(
                f,
                "group commit: recovery replayed {replayed} batch(es) but {marked} were marked and never checkpointed"
            ),
            Violation::SnapshotReadNotNewest {
                action,
                object,
                served,
                expected,
            } => write!(
                f,
                "snapshot: {action} read {object} at stamp {served}, but the newest visible version is stamp {expected}"
            ),
            Violation::SnapshotReaderLocks { action, object } => write!(
                f,
                "snapshot: read-only {action} appeared in lock traffic for {object}"
            ),
            Violation::GcUncheckpointedSegment { segment, watermark } => write!(
                f,
                "segment lifecycle: segment {segment} was GC'd above checkpoint watermark {watermark}"
            ),
            Violation::ReplayManifestMismatch { replayed, live } => write!(
                f,
                "segment lifecycle: recovery replayed {replayed} batch(es) but the manifest's live suffix held {live}"
            ),
        }
    }
}

fn verdict(commit: bool) -> &'static str {
    if commit {
        "commit"
    } else {
        "abort"
    }
}

/// The outcome of auditing one trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// How many events were replayed.
    pub events: usize,
    /// Every breach found, in trace order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// `true` when no invariant was breached.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "audit: {} events, clean", self.events)
        } else {
            writeln!(
                f,
                "audit: {} events, {} violation(s):",
                self.events,
                self.violations.len()
            )?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

#[derive(Debug)]
struct ActionState {
    parent: Option<ActionId>,
    colours: u64,
    /// Entered the shrinking phase: released or passed on some lock,
    /// or terminated.
    shrunk: bool,
    /// Committed or aborted (R8: a terminated parent encloses no new
    /// children, and terminates none of its live ones).
    ended: bool,
}

#[derive(Debug, Default)]
struct TxnState {
    yes: BTreeSet<u32>,
    no: BTreeSet<u32>,
    decision: Option<bool>,
    /// Lamport clock of each member's first stamped yes-vote (R8:
    /// the commit decision must causally follow every one).
    yes_lc: HashMap<u32, u64>,
}

/// Replays an event stream and checks the paper's invariants.
///
/// Feed events in emission order with [`observe`](TraceAuditor::observe),
/// then collect the [`AuditReport`] with
/// [`finish`](TraceAuditor::finish); or use the one-shot helpers
/// [`audit_events`](TraceAuditor::audit_events) and
/// [`audit_jsonl`](TraceAuditor::audit_jsonl).
#[derive(Debug)]
pub struct TraceAuditor {
    actions: HashMap<ActionId, ActionState>,
    /// Strongest mode currently held per (action, object, colour).
    held: HashMap<(ActionId, ObjectId, usize), LockMode>,
    txns: HashMap<u64, TxnState>,
    /// Highest version each member has installed, per (node, object).
    replica_versions: HashMap<(u32, u64), u64>,
    /// Highest version *any* member has installed, per object.
    max_installed: HashMap<u64, u64>,
    /// (node, object) pairs inside an open catch-up window.
    catching_up: HashSet<(u32, u64)>,
    /// How far a served read may lag the group's highest installed
    /// version (R7).
    staleness_window: u64,
    /// Lamport clock of the (single) send per correlation id (R8).
    sends: HashMap<u64, u64>,
    /// Live (unterminated) children per action (R8 enclosure).
    live_children: HashMap<ActionId, BTreeSet<ActionId>>,
    /// R9: batch appends since the last group fsync.
    group_appends: u64,
    /// R9: batches covered by a group fsync but not yet checkpointed.
    marked_unchecked: u64,
    /// R9 only arms once the trace proves the store group-commits.
    saw_group_commit: bool,
    /// R11: uncheckpointed sealed segments as (sequence, batches), in
    /// seal order.
    sealed_live: Vec<(u64, u64)>,
    /// R11: batches committed into the active segment since the last
    /// seal.
    active_batches: u64,
    /// R11: highest checkpointed segment sequence.
    ckpt_watermark: u64,
    /// R11 only arms once the trace proves the log is segmented.
    saw_segment: bool,
    /// R10: published versions per (node, object) in append order,
    /// as (colour index, stamp). Cleared per node on a crash: chains
    /// are volatile, so post-crash snapshots see the stable (stamp-0)
    /// state again. Node-less local emissions key as node 0.
    published: HashMap<(u32, u64), Vec<(usize, u64)>>,
    /// R10: each snapshot action's captured frontier (colour index →
    /// stamp), accumulated from its `SnapshotOpen` events.
    snapshot_stamps: HashMap<ActionId, HashMap<usize, u64>>,
    /// Actions the trace declared read-only (they must never appear
    /// in lock traffic).
    snapshot_actions: HashSet<ActionId>,
    violations: Vec<Violation>,
    events: usize,
}

impl Default for TraceAuditor {
    fn default() -> Self {
        TraceAuditor {
            actions: HashMap::new(),
            held: HashMap::new(),
            txns: HashMap::new(),
            replica_versions: HashMap::new(),
            max_installed: HashMap::new(),
            catching_up: HashSet::new(),
            // one write may be in flight: its installs land at
            // different times on different members
            staleness_window: 1,
            sends: HashMap::new(),
            live_children: HashMap::new(),
            group_appends: 0,
            marked_unchecked: 0,
            saw_group_commit: false,
            sealed_live: Vec::new(),
            active_batches: 0,
            ckpt_watermark: 0,
            saw_segment: false,
            published: HashMap::new(),
            snapshot_stamps: HashMap::new(),
            snapshot_actions: HashSet::new(),
            violations: Vec::new(),
            events: 0,
        }
    }
}

impl TraceAuditor {
    /// A fresh auditor (staleness window 1).
    #[must_use]
    pub fn new() -> Self {
        TraceAuditor::default()
    }

    /// Sets how many versions a served read may lag the group's
    /// highest installed version before R7 fires.
    #[must_use]
    pub fn with_staleness_window(mut self, window: u64) -> Self {
        self.staleness_window = window;
        self
    }

    /// Audits a complete in-memory trace.
    #[must_use]
    pub fn audit_events(events: &[Event]) -> AuditReport {
        let mut auditor = TraceAuditor::new();
        for event in events {
            auditor.observe(event);
        }
        auditor.finish()
    }

    /// Parses and audits a JSONL trace.
    ///
    /// # Errors
    ///
    /// [`TraceParseError`] (with its 1-based line number) on the first
    /// malformed line; a corrupted trace is rejected rather than
    /// partially audited.
    pub fn audit_jsonl(text: &str) -> Result<AuditReport, TraceParseError> {
        let mut auditor = TraceAuditor::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event = Event::from_json_line(line).map_err(|e| e.at_line(i + 1))?;
            auditor.observe(&event);
        }
        Ok(auditor.finish())
    }

    /// Replays one event.
    pub fn observe(&mut self, event: &Event) {
        self.events += 1;
        match event.kind {
            EventKind::ActionBegin {
                action,
                parent,
                colours,
            } => {
                if let Some(p) = parent {
                    match self.actions.get(&p) {
                        None => self.violations.push(Violation::UnknownAction {
                            action: p,
                            context: "action_begin parent",
                        }),
                        Some(state) if state.ended => {
                            self.violations.push(Violation::ChildOutsideParent {
                                child: action,
                                parent: p,
                            });
                        }
                        Some(_) => {
                            self.live_children.entry(p).or_default().insert(action);
                        }
                    }
                }
                self.actions.insert(
                    action,
                    ActionState {
                        parent,
                        colours,
                        shrunk: false,
                        ended: false,
                    },
                );
            }
            EventKind::ActionCommit { action } | EventKind::ActionAbort { action } => {
                let mut parent = None;
                match self.actions.get_mut(&action) {
                    Some(state) => {
                        state.shrunk = true;
                        state.ended = true;
                        parent = state.parent;
                    }
                    None => self.violations.push(Violation::UnknownAction {
                        action,
                        context: "action termination",
                    }),
                }
                if let Some(p) = parent {
                    if let Some(siblings) = self.live_children.get_mut(&p) {
                        siblings.remove(&action);
                    }
                }
                if let Some(children) = self.live_children.remove(&action) {
                    for child in children {
                        self.violations.push(Violation::ChildOutsideParent {
                            child,
                            parent: action,
                        });
                    }
                }
            }
            EventKind::LockGrant {
                action,
                object,
                colour,
                mode,
            } => {
                if self.snapshot_actions.contains(&action) {
                    self.violations
                        .push(Violation::SnapshotReaderLocks { action, object });
                }
                match self.actions.get(&action) {
                    Some(state) if state.shrunk => {
                        self.violations.push(Violation::LockAfterShrink {
                            action,
                            object,
                            colour,
                        });
                    }
                    Some(_) => {}
                    None => self.violations.push(Violation::UnknownAction {
                        action,
                        context: "lock_grant",
                    }),
                }
                let slot = self
                    .held
                    .entry((action, object, colour.index()))
                    .or_insert(mode);
                *slot = slot.strongest(mode);
            }
            EventKind::LockRelease {
                action,
                object,
                colour,
            } => {
                if let Some(state) = self.actions.get_mut(&action) {
                    state.shrunk = true;
                }
                if self
                    .held
                    .remove(&(action, object, colour.index()))
                    .is_none()
                {
                    self.violations.push(Violation::ReleaseWithoutLock {
                        action,
                        object,
                        colour,
                    });
                }
            }
            EventKind::LockInherit {
                from,
                to,
                object,
                colour,
            } => {
                let moved = self.held.remove(&(from, object, colour.index()));
                if moved.is_none() {
                    self.violations.push(Violation::InheritWithoutLock {
                        from,
                        object,
                        colour,
                    });
                }
                if let Some(state) = self.actions.get_mut(&from) {
                    state.shrunk = true;
                }
                let expected = self.closest_ancestor_with_colour(from, colour);
                if expected != Some(to) {
                    self.violations.push(Violation::BadInheritTarget {
                        from,
                        to,
                        expected,
                        object,
                        colour,
                    });
                }
                if !self.actions.contains_key(&to) {
                    self.violations.push(Violation::UnknownAction {
                        action: to,
                        context: "lock_inherit target",
                    });
                }
                // the ancestor now holds the lock (it may escalate an
                // existing weaker hold)
                let mode = moved.unwrap_or(LockMode::Read);
                let slot = self
                    .held
                    .entry((to, object, colour.index()))
                    .or_insert(mode);
                *slot = slot.strongest(mode);
            }
            EventKind::UndoRecord {
                action,
                object,
                colour,
            } => {
                if !self.actions.contains_key(&action) {
                    self.violations.push(Violation::UnknownAction {
                        action,
                        context: "undo_record",
                    });
                }
                let covered = self
                    .held
                    .get(&(action, object, colour.index()))
                    .is_some_and(|mode| mode.permits_write());
                if !covered {
                    self.violations.push(Violation::WriteWithoutWriteLock {
                        action,
                        object,
                        colour,
                    });
                }
            }
            EventKind::TpcVote { node, txn, yes } => {
                let state = self.txns.entry(txn).or_default();
                if yes {
                    state.yes.insert(node.as_raw());
                    if event.lc > 0 {
                        state.yes_lc.entry(node.as_raw()).or_insert(event.lc);
                    }
                } else {
                    state.no.insert(node.as_raw());
                    if state.decision == Some(true) {
                        self.violations
                            .push(Violation::CommitDespiteNoVote { txn, node });
                    }
                }
            }
            EventKind::TpcDecide {
                node,
                txn,
                commit,
                participants,
            } => {
                let state = self.txns.entry(txn).or_default();
                match state.decision {
                    Some(earlier) if earlier != commit => {
                        self.violations.push(Violation::DivergentDecision {
                            txn,
                            node,
                            earlier,
                            later: commit,
                        });
                    }
                    Some(_) => {}
                    None => {
                        state.decision = Some(commit);
                        if commit {
                            let yes_votes = state.yes.len() as u64;
                            if yes_votes < participants {
                                self.violations.push(Violation::CommitWithoutQuorum {
                                    txn,
                                    yes_votes,
                                    participants,
                                });
                            }
                            if let Some(&no_voter) = state.no.iter().next() {
                                self.violations.push(Violation::CommitDespiteNoVote {
                                    txn,
                                    node: NodeId::from_raw(no_voter),
                                });
                            }
                            // R8: the decision must causally follow
                            // every stamped yes-vote it counts.
                            if event.lc > 0 {
                                let mut late: Vec<u32> = state
                                    .yes_lc
                                    .iter()
                                    .filter(|(_, &vlc)| vlc >= event.lc)
                                    .map(|(&voter, _)| voter)
                                    .collect();
                                late.sort_unstable();
                                for voter in late {
                                    self.violations.push(Violation::CommitBeforeVote {
                                        txn,
                                        node: NodeId::from_raw(voter),
                                    });
                                }
                            }
                        }
                    }
                }
            }
            EventKind::TpcResolve { node, txn, commit } => {
                let state = self.txns.entry(txn).or_default();
                match state.decision {
                    Some(earlier) if earlier != commit => {
                        self.violations.push(Violation::DivergentDecision {
                            txn,
                            node,
                            earlier,
                            later: commit,
                        });
                    }
                    Some(_) => {}
                    // presumed abort: a participant may resolve a
                    // transaction whose coordinator never logged a
                    // decision; later events must still agree with it
                    None => state.decision = Some(commit),
                }
            }
            EventKind::ReplicaInstall {
                node,
                object,
                version,
            } => {
                let key = (node.as_raw(), object.as_raw());
                if let Some(&prev) = self.replica_versions.get(&key) {
                    if version < prev {
                        self.violations.push(Violation::ReplicaVersionRegression {
                            node,
                            object,
                            from: prev,
                            to: version,
                        });
                    }
                }
                let held = self.replica_versions.entry(key).or_insert(version);
                *held = (*held).max(version);
                let group = self.max_installed.entry(object.as_raw()).or_insert(0);
                *group = (*group).max(version);
            }
            EventKind::ReplicaRead {
                node,
                object,
                version,
                stale,
            } => {
                if stale || self.catching_up.contains(&(node.as_raw(), object.as_raw())) {
                    self.violations
                        .push(Violation::ReadDuringCatchup { node, object });
                }
                self.check_staleness(node, object, version);
            }
            EventKind::CatchupBegin { node, object } => {
                self.catching_up.insert((node.as_raw(), object.as_raw()));
            }
            EventKind::CatchupEnd {
                node,
                object,
                version,
            } => {
                self.catching_up.remove(&(node.as_raw(), object.as_raw()));
                self.check_staleness(node, object, version);
            }
            EventKind::MsgSend { .. } => {
                if let Some(corr) = event.corr {
                    // one send per correlation id; keep the first
                    self.sends.entry(corr).or_insert(event.lc);
                }
            }
            EventKind::MsgDeliver { to, .. } => {
                if let Some(corr) = event.corr {
                    match self.sends.get(&corr) {
                        None => self
                            .violations
                            .push(Violation::ReceiveWithoutSend { corr, node: to }),
                        Some(&send_lc) => {
                            if send_lc > 0 && event.lc > 0 && event.lc <= send_lc {
                                self.violations.push(Violation::ClockInversion {
                                    corr,
                                    send_lc,
                                    recv_lc: event.lc,
                                });
                            }
                        }
                    }
                }
            }
            // R9: group-commit coverage. Batch appends accumulate
            // until a group fsync declares how many it covered;
            // checkpoints retire marked batches; recovery must replay
            // exactly the marked-but-unchecked remainder.
            EventKind::DiskAppend { .. } => {
                self.group_appends += 1;
            }
            EventKind::DiskGroupCommit { batches, .. } => {
                self.saw_group_commit = true;
                if batches != self.group_appends {
                    self.violations.push(Violation::GroupFsyncCoverage {
                        declared: batches,
                        appended: self.group_appends,
                    });
                }
                self.group_appends = 0;
                self.marked_unchecked += batches;
                // R11: until the next seal these batches live in the
                // active segment.
                self.active_batches += batches;
            }
            EventKind::DiskCheckpoint { .. } => {
                if self.saw_group_commit {
                    self.marked_unchecked = self.marked_unchecked.saturating_sub(1);
                }
            }
            // R11: segment lifecycle. Seals move the active batches
            // into the sealed-live set; a checkpoint retires every
            // sealed segment up to its watermark; GC must stay at or
            // below it; recovery must replay exactly what is left.
            EventKind::SegmentSeal {
                segment, batches, ..
            } => {
                self.saw_segment = true;
                self.sealed_live.push((segment, batches));
                self.active_batches = 0;
            }
            EventKind::CheckpointEnd { upto, batches, .. } => {
                if self.saw_group_commit {
                    self.marked_unchecked = self.marked_unchecked.saturating_sub(batches);
                }
                self.ckpt_watermark = self.ckpt_watermark.max(upto);
                self.sealed_live.retain(|&(seq, _)| seq > upto);
            }
            EventKind::SegmentGc { segment, .. } => {
                if self.saw_segment && segment > self.ckpt_watermark {
                    self.violations.push(Violation::GcUncheckpointedSegment {
                        segment,
                        watermark: self.ckpt_watermark,
                    });
                }
            }
            EventKind::DiskReplay { batches, .. } => {
                if self.saw_group_commit && batches != self.marked_unchecked {
                    self.violations.push(Violation::ReplayMarkMismatch {
                        replayed: batches,
                        marked: self.marked_unchecked,
                    });
                }
                if self.saw_segment {
                    let live: u64 =
                        self.sealed_live.iter().map(|&(_, b)| b).sum::<u64>() + self.active_batches;
                    if batches != live {
                        self.violations.push(Violation::ReplayManifestMismatch {
                            replayed: batches,
                            live,
                        });
                    }
                }
                // replay installs and collapses the live suffix: no
                // batch stays marked or live (the watermark survives —
                // sequences are monotone across restarts)
                self.marked_unchecked = 0;
                self.sealed_live.clear();
                self.active_batches = 0;
            }
            // R10: a read-only action must never enter the lock table,
            // not even to request or wait — a waiting snapshot reader
            // is a waits-for edge.
            EventKind::LockRequest { action, object, .. }
            | EventKind::LockConflict { action, object, .. } => {
                if self.snapshot_actions.contains(&action) {
                    self.violations
                        .push(Violation::SnapshotReaderLocks { action, object });
                }
            }
            EventKind::SnapshotOpen {
                action,
                colour,
                stamp,
            } => {
                self.snapshot_actions.insert(action);
                self.snapshot_stamps
                    .entry(action)
                    .or_default()
                    .insert(colour.index(), stamp);
            }
            EventKind::SnapshotRead {
                action,
                object,
                stamp,
                ..
            } => {
                let caps = match self.snapshot_stamps.get(&action) {
                    Some(caps) => caps.clone(),
                    None => {
                        self.violations.push(Violation::UnknownAction {
                            action,
                            context: "snapshot_read",
                        });
                        HashMap::new()
                    }
                };
                // Newest published version of the object visible at
                // the captured frontier; publications are appended in
                // stamp order, so the last visible one is the newest.
                let key = (event.node.map_or(0, NodeId::as_raw), object.as_raw());
                let expected = self.published.get(&key).map_or(0, |versions| {
                    versions
                        .iter()
                        .rev()
                        .find(|(ci, s)| caps.get(ci).copied().unwrap_or(0) >= *s)
                        .map_or(0, |&(_, s)| s)
                });
                if stamp != expected {
                    self.violations.push(Violation::SnapshotReadNotNewest {
                        action,
                        object,
                        served: stamp,
                        expected,
                    });
                }
            }
            EventKind::VersionPublish {
                object,
                colour,
                stamp,
            } => {
                let key = (event.node.map_or(0, NodeId::as_raw), object.as_raw());
                self.published
                    .entry(key)
                    .or_default()
                    .push((colour.index(), stamp));
            }
            // Version chains are volatile: after a crash the node's
            // snapshot readers fall back to the stable (stamp-0)
            // state, which must not read as "not newest".
            EventKind::NodeCrash { node } => {
                self.published.retain(|&(n, _), _| n != node.as_raw());
            }
            // WAL activity, the fan-out announcement, recovery
            // markers, GC sweeps, in-flight network perturbations and
            // the online watchdog's own output carry no audited
            // obligations of their own
            EventKind::WalAppend { .. }
            | EventKind::WalFlush { .. }
            | EventKind::ReplicaWrite { .. }
            | EventKind::TpcPrepare { .. }
            | EventKind::NodeRecover { .. }
            | EventKind::MsgDrop { .. }
            | EventKind::MsgDup { .. }
            | EventKind::VersionGc { .. }
            | EventKind::WatchdogViolation { .. }
            | EventKind::MetricsSnapshot { .. }
            | EventKind::CheckpointBegin { .. } => {}
        }
    }

    /// R7: `version` (a served read, or a member's version at rejoin)
    /// must be within `staleness_window` of the group's highest
    /// installed version.
    fn check_staleness(&mut self, node: NodeId, object: ObjectId, version: u64) {
        let latest = self
            .max_installed
            .get(&object.as_raw())
            .copied()
            .unwrap_or(0);
        if version.saturating_add(self.staleness_window) < latest {
            self.violations.push(Violation::StalenessWindowExceeded {
                node,
                object,
                version,
                latest,
                window: self.staleness_window,
            });
        }
    }

    /// The closest proper ancestor of `from` whose colour set contains
    /// `colour`.
    fn closest_ancestor_with_colour(&self, from: ActionId, colour: Colour) -> Option<ActionId> {
        let bit = 1u64 << colour.index();
        let mut cursor = self.actions.get(&from)?.parent;
        let mut hops = 0;
        while let Some(ancestor) = cursor {
            let state = self.actions.get(&ancestor)?;
            if state.colours & bit != 0 {
                return Some(ancestor);
            }
            cursor = state.parent;
            hops += 1;
            if hops > self.actions.len() {
                return None; // cycle in a corrupted trace
            }
        }
        None
    }

    /// Finalises the audit.
    #[must_use]
    pub fn finish(self) -> AuditReport {
        AuditReport {
            events: self.events,
            violations: self.violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> Event {
        Event::at(0, kind)
    }

    #[test]
    fn clean_nested_lifecycle_passes() {
        let a = ActionId::from_raw(1);
        let child = ActionId::from_raw(2);
        let o = ObjectId::from_raw(5);
        let c = Colour::from_index(0);
        let trace = vec![
            ev(EventKind::ActionBegin {
                action: a,
                parent: None,
                colours: 0b1,
            }),
            ev(EventKind::ActionBegin {
                action: child,
                parent: Some(a),
                colours: 0b1,
            }),
            ev(EventKind::LockGrant {
                action: child,
                object: o,
                colour: c,
                mode: LockMode::Write,
            }),
            ev(EventKind::UndoRecord {
                action: child,
                object: o,
                colour: c,
            }),
            ev(EventKind::LockInherit {
                from: child,
                to: a,
                object: o,
                colour: c,
            }),
            ev(EventKind::ActionCommit { action: child }),
            ev(EventKind::LockRelease {
                action: a,
                object: o,
                colour: c,
            }),
            ev(EventKind::ActionCommit { action: a }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.events, trace.len());
    }

    #[test]
    fn clean_replication_lifecycle_passes() {
        let n1 = NodeId::from_raw(1);
        let n2 = NodeId::from_raw(2);
        let n3 = NodeId::from_raw(3);
        let o = ObjectId::from_raw(9);
        let trace = vec![
            ev(EventKind::ReplicaWrite {
                object: o,
                version: 1,
                fanout: 3,
            }),
            ev(EventKind::ReplicaInstall {
                node: n1,
                object: o,
                version: 1,
            }),
            ev(EventKind::ReplicaInstall {
                node: n2,
                object: o,
                version: 1,
            }),
            // n3 crashed before installing v1 and catches up on recovery
            ev(EventKind::CatchupBegin {
                node: n3,
                object: o,
            }),
            ev(EventKind::ReplicaInstall {
                node: n3,
                object: o,
                version: 1,
            }),
            ev(EventKind::CatchupEnd {
                node: n3,
                object: o,
                version: 1,
            }),
            ev(EventKind::ReplicaRead {
                node: n2,
                object: o,
                version: 1,
                stale: false,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn staleness_window_is_configurable() {
        let n1 = NodeId::from_raw(1);
        let n2 = NodeId::from_raw(2);
        let o = ObjectId::from_raw(9);
        let trace = [
            ev(EventKind::ReplicaInstall {
                node: n1,
                object: o,
                version: 5,
            }),
            ev(EventKind::ReplicaRead {
                node: n2,
                object: o,
                version: 2,
                stale: false,
            }),
        ];
        let mut strict = TraceAuditor::new();
        for e in &trace {
            strict.observe(e);
        }
        assert!(!strict.finish().is_clean(), "lag 3 must breach window 1");
        let mut lax = TraceAuditor::new().with_staleness_window(3);
        for e in &trace {
            lax.observe(e);
        }
        assert!(lax.finish().is_clean(), "lag 3 fits window 3");
    }

    fn stamped(lc: u64, corr: Option<u64>, kind: EventKind) -> Event {
        let mut e = Event::at(0, kind);
        e.lc = lc;
        e.corr = corr;
        e
    }

    #[test]
    fn r8_send_receive_pair_with_merged_clock_passes() {
        use crate::event::MsgKind;
        let n1 = NodeId::from_raw(1);
        let n2 = NodeId::from_raw(2);
        let trace = vec![
            stamped(
                3,
                Some(7),
                EventKind::MsgSend {
                    from: n1,
                    to: n2,
                    kind: MsgKind::Prepare,
                },
            ),
            stamped(
                4,
                Some(7),
                EventKind::MsgDeliver {
                    from: n1,
                    to: n2,
                    kind: MsgKind::Prepare,
                },
            ),
        ];
        assert!(TraceAuditor::audit_events(&trace).is_clean());
    }

    #[test]
    fn r8_clock_inversion_fires() {
        use crate::event::MsgKind;
        let n1 = NodeId::from_raw(1);
        let n2 = NodeId::from_raw(2);
        let trace = vec![
            stamped(
                5,
                Some(7),
                EventKind::MsgSend {
                    from: n1,
                    to: n2,
                    kind: MsgKind::Prepare,
                },
            ),
            // the receive failed to merge: its clock is behind the send's
            stamped(
                3,
                Some(7),
                EventKind::MsgDeliver {
                    from: n1,
                    to: n2,
                    kind: MsgKind::Prepare,
                },
            ),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::ClockInversion {
                corr: 7,
                send_lc: 5,
                recv_lc: 3
            }]
        ));
    }

    #[test]
    fn r8_receive_without_send_fires() {
        use crate::event::MsgKind;
        let trace = vec![stamped(
            3,
            Some(9),
            EventKind::MsgDeliver {
                from: NodeId::from_raw(1),
                to: NodeId::from_raw(2),
                kind: MsgKind::Decision,
            },
        )];
        let report = TraceAuditor::audit_events(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::ReceiveWithoutSend { corr: 9, .. }]
        ));
    }

    #[test]
    fn r8_child_must_be_enclosed_by_parent() {
        let a = ActionId::from_raw(1);
        let child = ActionId::from_raw(2);
        // parent terminates while the child is still live
        let trace = vec![
            ev(EventKind::ActionBegin {
                action: a,
                parent: None,
                colours: 1,
            }),
            ev(EventKind::ActionBegin {
                action: child,
                parent: Some(a),
                colours: 1,
            }),
            ev(EventKind::ActionCommit { action: a }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::ChildOutsideParent { .. }]
        ));
        // child begins after the parent already terminated
        let trace = vec![
            ev(EventKind::ActionBegin {
                action: a,
                parent: None,
                colours: 1,
            }),
            ev(EventKind::ActionCommit { action: a }),
            ev(EventKind::ActionBegin {
                action: child,
                parent: Some(a),
                colours: 1,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::ChildOutsideParent { .. }]
        ));
    }

    #[test]
    fn r8_commit_must_follow_votes() {
        let n1 = NodeId::from_raw(1);
        let n2 = NodeId::from_raw(2);
        let vote = |node, lc| {
            stamped(
                lc,
                None,
                EventKind::TpcVote {
                    node,
                    txn: 4,
                    yes: true,
                },
            )
        };
        let decide = |lc| {
            stamped(
                lc,
                None,
                EventKind::TpcDecide {
                    node: n1,
                    txn: 4,
                    commit: true,
                    participants: 2,
                },
            )
        };
        // clean: the decision's clock exceeds both votes'
        let trace = vec![vote(n1, 2), vote(n2, 5), decide(9)];
        assert!(TraceAuditor::audit_events(&trace).is_clean());
        // corrupted: n2's vote does not happen-before the decision
        let trace = vec![vote(n1, 2), vote(n2, 11), decide(9)];
        let report = TraceAuditor::audit_events(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::CommitBeforeVote { txn: 4, node }] if *node == n2
        ));
    }

    #[test]
    fn r9_clean_group_commit_lifecycle_passes() {
        let append = || {
            ev(EventKind::DiskAppend {
                records: 3,
                bytes: 64,
            })
        };
        let trace = vec![
            append(),
            append(),
            ev(EventKind::DiskGroupCommit {
                batches: 2,
                records: 6,
                bytes: 128,
            }),
            ev(EventKind::DiskCheckpoint { objects: 2 }),
            // second batch crashed before install: replay picks it up
            ev(EventKind::DiskReplay {
                batches: 1,
                objects: 2,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn r9_fsync_coverage_mismatch_is_flagged() {
        let trace = vec![
            ev(EventKind::DiskAppend {
                records: 3,
                bytes: 64,
            }),
            ev(EventKind::DiskAppend {
                records: 3,
                bytes: 64,
            }),
            // the group fsync claims to cover only one of the two markers
            ev(EventKind::DiskGroupCommit {
                batches: 1,
                records: 3,
                bytes: 64,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::GroupFsyncCoverage {
                declared: 1,
                appended: 2,
            }]
        ));
    }

    #[test]
    fn r9_replay_must_match_marked_batches() {
        let trace = vec![
            ev(EventKind::DiskAppend {
                records: 3,
                bytes: 64,
            }),
            ev(EventKind::DiskGroupCommit {
                batches: 1,
                records: 3,
                bytes: 64,
            }),
            // batch never checkpointed, yet recovery replays nothing
            ev(EventKind::DiskReplay {
                batches: 0,
                objects: 0,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::ReplayMarkMismatch {
                replayed: 0,
                marked: 1,
            }]
        ));
    }

    #[test]
    fn r9_stays_unarmed_on_pre_group_commit_traces() {
        // legacy traces have appends/checkpoints/replays but no group
        // fsync events; R9 must not fire on them
        let trace = vec![
            ev(EventKind::DiskAppend {
                records: 3,
                bytes: 64,
            }),
            ev(EventKind::DiskCheckpoint { objects: 1 }),
            ev(EventKind::DiskReplay {
                batches: 7,
                objects: 9,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn r11_clean_segment_lifecycle_passes() {
        let group = |batches: u64| {
            ev(EventKind::DiskGroupCommit {
                batches,
                records: batches * 2,
                bytes: batches * 64,
            })
        };
        let append = |records: u64| {
            ev(EventKind::DiskAppend {
                records,
                bytes: records * 32,
            })
        };
        let trace = vec![
            append(2),
            append(2),
            group(2),
            ev(EventKind::SegmentSeal {
                segment: 1,
                batches: 2,
                bytes: 256,
            }),
            append(2),
            group(1),
            ev(EventKind::CheckpointBegin {
                segments: 1,
                batches: 2,
            }),
            ev(EventKind::CheckpointEnd {
                upto: 1,
                batches: 2,
                objects: 2,
            }),
            ev(EventKind::SegmentGc {
                segment: 1,
                bytes: 256,
            }),
            // crash + reopen: only the active segment's batch replays
            ev(EventKind::DiskReplay {
                batches: 1,
                objects: 1,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn r11_gc_above_watermark_is_flagged() {
        let trace = vec![
            ev(EventKind::DiskAppend {
                records: 2,
                bytes: 64,
            }),
            ev(EventKind::DiskGroupCommit {
                batches: 1,
                records: 2,
                bytes: 64,
            }),
            ev(EventKind::SegmentSeal {
                segment: 3,
                batches: 1,
                bytes: 64,
            }),
            // GC with no covering checkpoint: the batch is lost
            ev(EventKind::SegmentGc {
                segment: 3,
                bytes: 64,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::GcUncheckpointedSegment {
                segment: 3,
                watermark: 0,
            }]
        ));
    }

    #[test]
    fn r11_replay_must_match_live_suffix() {
        let trace = vec![
            ev(EventKind::DiskAppend {
                records: 2,
                bytes: 64,
            }),
            ev(EventKind::DiskGroupCommit {
                batches: 1,
                records: 2,
                bytes: 64,
            }),
            ev(EventKind::SegmentSeal {
                segment: 1,
                batches: 1,
                bytes: 64,
            }),
            ev(EventKind::DiskAppend {
                records: 2,
                bytes: 64,
            }),
            ev(EventKind::DiskGroupCommit {
                batches: 1,
                records: 2,
                bytes: 64,
            }),
            // live suffix = 1 sealed batch + 1 active batch, but
            // recovery claims to have replayed only one of them
            ev(EventKind::DiskReplay {
                batches: 1,
                objects: 1,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::ReplayManifestMismatch {
                    replayed: 1,
                    live: 2,
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn r11_stays_unarmed_on_pre_segment_traces() {
        // A GC-like event stream without any seal must not arm R11.
        let trace = vec![
            ev(EventKind::DiskAppend {
                records: 2,
                bytes: 64,
            }),
            ev(EventKind::DiskGroupCommit {
                batches: 1,
                records: 2,
                bytes: 64,
            }),
            ev(EventKind::DiskReplay {
                batches: 1,
                objects: 1,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn r11_watermark_survives_replay() {
        // Sequences are monotone across restarts: a post-replay GC of
        // a pre-crash segment is still checked against the watermark.
        let trace = vec![
            ev(EventKind::DiskAppend {
                records: 2,
                bytes: 64,
            }),
            ev(EventKind::DiskGroupCommit {
                batches: 1,
                records: 2,
                bytes: 64,
            }),
            ev(EventKind::SegmentSeal {
                segment: 1,
                batches: 1,
                bytes: 64,
            }),
            ev(EventKind::CheckpointEnd {
                upto: 1,
                batches: 1,
                objects: 1,
            }),
            ev(EventKind::DiskReplay {
                batches: 0,
                objects: 0,
            }),
            // the old segment's deferred GC is fine: it is behind the
            // watermark even after the restart
            ev(EventKind::SegmentGc {
                segment: 1,
                bytes: 64,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn r10_clean_snapshot_trace_passes() {
        let writer = ActionId::from_raw(1);
        let reader = ActionId::from_raw(2);
        let o = ObjectId::from_raw(5);
        let c = Colour::from_index(0);
        let trace = vec![
            ev(EventKind::VersionPublish {
                object: o,
                colour: c,
                stamp: 1,
            }),
            ev(EventKind::ActionCommit { action: writer }),
            ev(EventKind::SnapshotOpen {
                action: reader,
                colour: c,
                stamp: 1,
            }),
            ev(EventKind::SnapshotRead {
                action: reader,
                object: o,
                colour: c,
                stamp: 1,
            }),
            // a later publish is invisible to the open snapshot
            ev(EventKind::VersionPublish {
                object: o,
                colour: c,
                stamp: 2,
            }),
            ev(EventKind::SnapshotRead {
                action: reader,
                object: o,
                colour: c,
                stamp: 1,
            }),
            ev(EventKind::ActionCommit { action: reader }),
        ];
        let mut auditor = TraceAuditor::new();
        for e in &trace {
            auditor.observe(e);
        }
        // `writer` / `reader` never had ActionBegin here, so filter
        // lifecycle noise and keep only R10 verdicts.
        let r10: Vec<_> = auditor
            .finish()
            .violations
            .into_iter()
            .filter(|v| {
                matches!(
                    v,
                    Violation::SnapshotReadNotNewest { .. } | Violation::SnapshotReaderLocks { .. }
                )
            })
            .collect();
        assert!(r10.is_empty(), "{r10:?}");
    }

    #[test]
    fn r10_flags_snapshot_read_that_misses_newest_visible() {
        let reader = ActionId::from_raw(2);
        let o = ObjectId::from_raw(5);
        let c = Colour::from_index(0);
        let trace = vec![
            ev(EventKind::VersionPublish {
                object: o,
                colour: c,
                stamp: 1,
            }),
            ev(EventKind::VersionPublish {
                object: o,
                colour: c,
                stamp: 2,
            }),
            ev(EventKind::SnapshotOpen {
                action: reader,
                colour: c,
                stamp: 2,
            }),
            // stale: stamp 2 is visible but the read served stamp 1
            ev(EventKind::SnapshotRead {
                action: reader,
                object: o,
                colour: c,
                stamp: 1,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(matches!(
            report.violations[..],
            [Violation::SnapshotReadNotNewest {
                served: 1,
                expected: 2,
                ..
            }]
        ));
    }

    #[test]
    fn r10_flags_snapshot_read_beyond_its_stamp() {
        let reader = ActionId::from_raw(2);
        let o = ObjectId::from_raw(5);
        let c = Colour::from_index(0);
        let trace = vec![
            ev(EventKind::VersionPublish {
                object: o,
                colour: c,
                stamp: 1,
            }),
            ev(EventKind::SnapshotOpen {
                action: reader,
                colour: c,
                stamp: 1,
            }),
            ev(EventKind::VersionPublish {
                object: o,
                colour: c,
                stamp: 2,
            }),
            // dirty: served a version newer than the captured stamp
            ev(EventKind::SnapshotRead {
                action: reader,
                object: o,
                colour: c,
                stamp: 2,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(matches!(
            report.violations[..],
            [Violation::SnapshotReadNotNewest {
                served: 2,
                expected: 1,
                ..
            }]
        ));
    }

    #[test]
    fn r10_flags_snapshot_reader_in_lock_traffic() {
        let reader = ActionId::from_raw(3);
        let o = ObjectId::from_raw(5);
        let c = Colour::from_index(0);
        for kind in [
            EventKind::LockRequest {
                action: reader,
                object: o,
                colour: c,
                mode: LockMode::Read,
            },
            EventKind::LockGrant {
                action: reader,
                object: o,
                colour: c,
                mode: LockMode::Read,
            },
            EventKind::LockConflict {
                action: reader,
                object: o,
                colour: c,
                mode: LockMode::Read,
            },
        ] {
            let trace = vec![
                ev(EventKind::SnapshotOpen {
                    action: reader,
                    colour: c,
                    stamp: 0,
                }),
                ev(kind),
            ];
            let mut auditor = TraceAuditor::new();
            for e in &trace {
                auditor.observe(e);
            }
            let report = auditor.finish();
            assert!(
                report
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::SnapshotReaderLocks { action, .. } if *action == reader)),
                "lock traffic {trace:?} must flag the snapshot reader: {report}"
            );
        }
        // ...while the same traffic from a normal action stays clean
        let writer = ActionId::from_raw(9);
        let trace = vec![
            ev(EventKind::ActionBegin {
                action: writer,
                parent: None,
                colours: 0b1,
            }),
            ev(EventKind::LockRequest {
                action: writer,
                object: o,
                colour: c,
                mode: LockMode::Write,
            }),
            ev(EventKind::LockGrant {
                action: writer,
                object: o,
                colour: c,
                mode: LockMode::Write,
            }),
        ];
        assert!(TraceAuditor::audit_events(&trace).is_clean());
    }

    #[test]
    fn r10_node_crash_resets_published_history() {
        let reader = ActionId::from_raw(4);
        let o = ObjectId::from_raw(5);
        let c = Colour::from_index(0);
        let trace = vec![
            ev(EventKind::VersionPublish {
                object: o,
                colour: c,
                stamp: 3,
            }),
            // chains are volatile: node 0 is the node-less local key
            ev(EventKind::NodeCrash {
                node: NodeId::from_raw(0),
            }),
            ev(EventKind::NodeRecover {
                node: NodeId::from_raw(0),
            }),
            ev(EventKind::SnapshotOpen {
                action: reader,
                colour: c,
                stamp: 3,
            }),
            // post-crash the read falls back to stable: stamp 0 is
            // correct, not "missed stamp 3"
            ev(EventKind::SnapshotRead {
                action: reader,
                object: o,
                colour: c,
                stamp: 0,
            }),
        ];
        let report = TraceAuditor::audit_events(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn r10_snapshot_read_without_open_is_unknown_action() {
        let report = TraceAuditor::audit_events(&[ev(EventKind::SnapshotRead {
            action: ActionId::from_raw(8),
            object: ObjectId::from_raw(1),
            colour: Colour::from_index(0),
            stamp: 0,
        })]);
        assert!(matches!(
            report.violations[..],
            [Violation::UnknownAction {
                context: "snapshot_read",
                ..
            }]
        ));
    }

    #[test]
    fn report_display_lists_violations() {
        let a = ActionId::from_raw(1);
        let o = ObjectId::from_raw(2);
        let c = Colour::from_index(0);
        let report = TraceAuditor::audit_events(&[ev(EventKind::UndoRecord {
            action: a,
            object: o,
            colour: c,
        })]);
        assert!(!report.is_clean());
        let text = report.to_string();
        assert!(text.contains("violation"), "{text}");
        assert!(text.contains("write lock"), "{text}");
    }
}
