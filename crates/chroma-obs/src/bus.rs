//! The event bus, the `Obs` handle instrumented code holds, and the
//! built-in sinks.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::io::Write as IoWrite;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use chroma_base::NodeId;
use parking_lot::{Mutex, RwLock};

use crate::event::{Event, EventKind, KIND_COUNT, KIND_NAMES};
use crate::metrics::{Histogram, Snapshot};
use crate::watchdog::Watchdog;

/// Receives every event emitted on a bus, in emission order.
pub trait EventSink: Send + Sync {
    /// Called once per event, after the bus has stamped its time.
    fn record(&self, event: &Event);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Central collector: counts events per kind, aggregates latency
/// histograms, stamps timestamps and fans events out to sinks.
///
/// The clock starts as wall time from bus creation; a deterministic
/// simulator switches it to manual mode with [`EventBus::set_time_us`]
/// so traces carry simulated time.
pub struct EventBus {
    counters: [AtomicU64; KIND_COUNT],
    histograms: Mutex<BTreeMap<String, Histogram>>,
    /// Named instantaneous values — occupancies and queue depths that
    /// move in both directions, unlike the monotone counters.
    gauges: Mutex<BTreeMap<String, u64>>,
    sinks: RwLock<Vec<Arc<dyn EventSink>>>,
    /// The in-line streaming watchdog, when installed. Kept apart from
    /// `sinks` because the watchdog emits `watchdog_violation` events
    /// *back through the bus*: running it after the sink fan-out (and
    /// outside the sink read lock) keeps that re-entry safe.
    watchdog: RwLock<Option<Arc<Watchdog>>>,
    /// Fast-path flag mirroring `watchdog.is_some()`, so untraced
    /// emissions never touch the watchdog lock.
    has_watchdog: AtomicBool,
    origin: Instant,
    manual: AtomicBool,
    manual_us: AtomicU64,
    /// Per-node Lamport clocks, keyed by raw node id. A node's clock
    /// ticks on every event it emits and is merged forward past the
    /// send's clock when it receives a message.
    clocks: Mutex<HashMap<u32, u64>>,
    /// Debug-only: actions seen beginning, so a parented begin whose
    /// parent never began trips an assertion at emission time rather
    /// than much later in an offline audit.
    #[cfg(debug_assertions)]
    begun: Mutex<std::collections::HashSet<u64>>,
}

impl EventBus {
    /// Creates a bus with no sinks, on the wall clock.
    #[must_use]
    pub fn new() -> Self {
        EventBus {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            sinks: RwLock::new(Vec::new()),
            watchdog: RwLock::new(None),
            has_watchdog: AtomicBool::new(false),
            origin: Instant::now(),
            manual: AtomicBool::new(false),
            manual_us: AtomicU64::new(0),
            clocks: Mutex::new(HashMap::new()),
            #[cfg(debug_assertions)]
            begun: Mutex::new(std::collections::HashSet::new()),
        }
    }

    /// Attaches a sink; it sees every subsequent event.
    pub fn add_sink(&self, sink: Arc<dyn EventSink>) {
        self.sinks.write().push(sink);
    }

    /// Installs (or, with `None`, removes) the streaming watchdog: it
    /// then inspects every subsequent event in-line and emits a
    /// `watchdog_violation` event the moment a rule fires — the
    /// violation appears in the trace immediately after the offending
    /// event, with zero intervening events.
    pub fn install_watchdog(&self, watchdog: Option<Arc<Watchdog>>) {
        self.has_watchdog
            .store(watchdog.is_some(), Ordering::Relaxed);
        *self.watchdog.write() = watchdog;
    }

    /// The installed watchdog, if any.
    #[must_use]
    pub fn watchdog(&self) -> Option<Arc<Watchdog>> {
        self.watchdog.read().clone()
    }

    /// Current bus time in microseconds (wall since creation, or the
    /// last manually set simulated time).
    #[must_use]
    pub fn now_us(&self) -> u64 {
        if self.manual.load(Ordering::Relaxed) {
            self.manual_us.load(Ordering::Relaxed)
        } else {
            u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
        }
    }

    /// Switches to manual (simulated) time and sets it.
    pub fn set_time_us(&self, us: u64) {
        self.manual.store(true, Ordering::Relaxed);
        self.manual_us.store(us, Ordering::Relaxed);
    }

    /// Counts, stamps and fans out one event with no node binding;
    /// returns the stamped record.
    pub fn emit(&self, kind: EventKind) -> Event {
        self.emit_traced(None, None, kind)
    }

    /// Counts, stamps and fans out one event with causal context.
    ///
    /// The event's node is the kind's intrinsic node when the payload
    /// names one, else `node`; when a node is known its Lamport clock
    /// ticks and stamps the event (`lc > 0`). `corr` flows through
    /// untouched.
    pub fn emit_traced(&self, node: Option<NodeId>, corr: Option<u64>, kind: EventKind) -> Event {
        self.counters[kind.index()].fetch_add(1, Ordering::Relaxed);
        self.debug_check_parent(&kind);
        let node = kind.intrinsic_node().or(node);
        let lc = node.map_or(0, |n| {
            let mut clocks = self.clocks.lock();
            let c = clocks.entry(n.as_raw()).or_insert(0);
            *c += 1;
            *c
        });
        let event = Event {
            at_us: self.now_us(),
            node,
            lc,
            corr,
            kind,
        };
        for sink in self.sinks.read().iter() {
            sink.record(&event);
        }
        if self.has_watchdog.load(Ordering::Relaxed)
            && !matches!(kind, EventKind::WatchdogViolation { .. })
        {
            // Clone the Arc out so the watchdog lock is not held while
            // the violation recursively re-enters `emit_traced`.
            let watchdog = self.watchdog.read().clone();
            if let Some(watchdog) = watchdog {
                for violation in watchdog.scan(&event) {
                    let emitted = self.emit_traced(None, None, violation);
                    watchdog.deliver(&emitted);
                }
            }
        }
        event
    }

    /// Merges an observed remote clock into `node`'s clock (sets it to
    /// at least `observed_lc`). Called by transports *before* emitting
    /// the delivery event, so the delivery's clock strictly exceeds
    /// the matching send's.
    pub fn merge_clock(&self, node: NodeId, observed_lc: u64) {
        let mut clocks = self.clocks.lock();
        let c = clocks.entry(node.as_raw()).or_insert(0);
        *c = (*c).max(observed_lc);
    }

    /// The current Lamport clock of `node` (0 if it never emitted).
    #[must_use]
    pub fn lamport(&self, node: NodeId) -> u64 {
        self.clocks.lock().get(&node.as_raw()).copied().unwrap_or(0)
    }

    #[cfg(debug_assertions)]
    fn debug_check_parent(&self, kind: &EventKind) {
        if let EventKind::ActionBegin { action, parent, .. } = kind {
            let mut begun = self.begun.lock();
            if let Some(p) = parent {
                debug_assert!(
                    begun.contains(&p.as_raw()),
                    "action {action} began under parent {p}, which never began"
                );
            }
            begun.insert(action.as_raw());
        }
    }

    #[cfg(not(debug_assertions))]
    #[allow(clippy::unused_self)]
    fn debug_check_parent(&self, _kind: &EventKind) {}

    /// Records one latency sample into the named histogram.
    ///
    /// Names may be built dynamically (e.g. a per-colour breakdown
    /// like `core.commit_us.red`); the name is only allocated the
    /// first time a histogram is created.
    pub fn observe(&self, metric: &str, us: u64) {
        let mut histograms = self.histograms.lock();
        if let Some(h) = histograms.get_mut(metric) {
            h.observe(us);
        } else {
            histograms.entry(metric.to_owned()).or_default().observe(us);
        }
    }

    /// Sets a named gauge to its current value. Gauges are sampled
    /// occupancies (lock entries, queue depths, live actions); setting
    /// one repeatedly just overwrites the reading.
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut gauges = self.gauges.lock();
        if let Some(g) = gauges.get_mut(name) {
            *g = value;
        } else {
            gauges.insert(name.to_owned(), value);
        }
    }

    /// The current value of a named gauge, if one was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.lock().get(name).copied()
    }

    /// The count of one event kind by its tag (0 for unknown tags).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        KIND_NAMES
            .iter()
            .position(|n| *n == name)
            .map_or(0, |i| self.counters[i].load(Ordering::Relaxed))
    }

    /// Copies out all counters and histogram summaries.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: KIND_NAMES
                .iter()
                .enumerate()
                .map(|(i, name)| (*name, self.counters[i].load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(name, v)| (name.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(name, h)| (name.clone(), h.summary()))
                .collect(),
        }
    }

    /// Flushes every attached sink.
    pub fn flush(&self) {
        for sink in self.sinks.read().iter() {
            sink.flush();
        }
    }
}

impl Default for EventBus {
    fn default() -> Self {
        EventBus::new()
    }
}

impl fmt::Debug for EventBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventBus")
            .field("sinks", &self.sinks.read().len())
            .finish_non_exhaustive()
    }
}

/// The handle instrumented code holds: a cheap clone that forwards to
/// a shared [`EventBus`], or does nothing when no bus is installed.
///
/// Subsystems are constructed with [`Obs::none`] and gain a bus later
/// via their `set_obs`/`install_obs` entry points, so observability is
/// strictly opt-in and the untraced hot path costs one branch.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    bus: Option<Arc<EventBus>>,
    node: Option<NodeId>,
}

impl Obs {
    /// The inert handle: every operation is a no-op.
    #[must_use]
    pub fn none() -> Self {
        Obs {
            bus: None,
            node: None,
        }
    }

    /// A handle bound to `bus`, with no node context.
    #[must_use]
    pub fn new(bus: Arc<EventBus>) -> Self {
        Obs {
            bus: Some(bus),
            node: None,
        }
    }

    /// This handle rebound to a node: every event emitted through it
    /// whose kind has no intrinsic node is attributed to `node` and
    /// stamped with `node`'s Lamport clock.
    #[must_use]
    pub fn at_node(&self, node: NodeId) -> Obs {
        Obs {
            bus: self.bus.clone(),
            node: Some(node),
        }
    }

    /// The bound node, if any.
    #[must_use]
    pub fn node(&self) -> Option<NodeId> {
        self.node
    }

    /// `true` when a bus is installed.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.bus.is_some()
    }

    /// The underlying bus, if any.
    #[must_use]
    pub fn bus(&self) -> Option<&Arc<EventBus>> {
        self.bus.as_ref()
    }

    /// Emits an event (no-op without a bus).
    pub fn emit(&self, kind: EventKind) {
        if let Some(bus) = &self.bus {
            bus.emit_traced(self.node, None, kind);
        }
    }

    /// Emits an event carrying a correlation id and returns the
    /// stamped record (None without a bus). Transports use the
    /// returned Lamport clock to ship the send's causal position to
    /// the receiving side.
    pub fn emit_corr(&self, corr: u64, kind: EventKind) -> Option<Event> {
        self.bus
            .as_ref()
            .map(|bus| bus.emit_traced(self.node, Some(corr), kind))
    }

    /// Merges an observed remote clock into `node`'s clock (no-op
    /// without a bus). See [`EventBus::merge_clock`].
    pub fn merge_clock(&self, node: NodeId, observed_lc: u64) {
        if let Some(bus) = &self.bus {
            bus.merge_clock(node, observed_lc);
        }
    }

    /// Records a latency sample (no-op without a bus).
    pub fn observe(&self, metric: &str, us: u64) {
        if let Some(bus) = &self.bus {
            bus.observe(metric, us);
        }
    }

    /// Sets a named gauge (no-op without a bus). See
    /// [`EventBus::set_gauge`].
    pub fn set_gauge(&self, name: &str, value: u64) {
        if let Some(bus) = &self.bus {
            bus.set_gauge(name, value);
        }
    }

    /// Current bus time, or 0 without a bus.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.bus.as_ref().map_or(0, |bus| bus.now_us())
    }
}

impl From<Arc<EventBus>> for Obs {
    /// A bus converts into a handle bound to it (no node context), so
    /// `Observable::install_obs` call sites can pass a bare bus.
    fn from(bus: Arc<EventBus>) -> Self {
        Obs::new(bus)
    }
}

impl From<&Arc<EventBus>> for Obs {
    fn from(bus: &Arc<EventBus>) -> Self {
        Obs::new(Arc::clone(bus))
    }
}

/// The one way to wire observability into a subsystem.
///
/// Every traced component — lock tables, stores, logs, runtimes, nodes,
/// whole simulations — implements this single entry point; installing a
/// handle recursively re-installs it into the component's children, so
/// one call at the top threads the bus through a whole stack. Pass
/// [`Obs::none`] to detach.
///
/// Node binding travels inside the [`Obs`] itself (see [`Obs::at_node`]):
/// a component that knows its own node identity rebinds the handle it
/// receives, so callers never need a separate `install_obs_at` variant.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use chroma_obs::{EventBus, Obs, Observable, ObsCell};
///
/// struct Subsystem {
///     obs: ObsCell,
/// }
///
/// impl Observable for Subsystem {
///     fn install_obs(&self, obs: Obs) {
///         self.obs.set(obs);
///     }
/// }
///
/// let s = Subsystem { obs: ObsCell::new() };
/// s.install_obs(Obs::new(Arc::new(EventBus::new())));
/// assert!(s.obs.get().enabled());
/// ```
pub trait Observable {
    /// Installs `obs` as this component's observability handle,
    /// replacing any previous one and propagating it to children.
    fn install_obs(&self, obs: Obs);
}

/// An [`Obs`] slot settable through `&self`, for subsystems that are
/// built before tracing is installed and are only reachable behind
/// shared references afterwards.
#[derive(Debug, Default)]
pub struct ObsCell {
    inner: std::sync::RwLock<Obs>,
}

impl ObsCell {
    /// An empty cell (inert handle).
    #[must_use]
    pub fn new() -> Self {
        ObsCell::default()
    }

    /// Replaces the stored handle.
    pub fn set(&self, obs: Obs) {
        *self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = obs;
    }

    /// Clones the stored handle (cheap: one `Option<Arc>`).
    #[must_use]
    pub fn get(&self) -> Obs {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// A bounded in-memory ring of events, for tests and the auditor.
///
/// When full, the oldest events are dropped and counted.
pub struct MemorySink {
    capacity: usize,
    inner: Mutex<MemoryInner>,
}

#[derive(Default)]
struct MemoryInner {
    events: VecDeque<Event>,
    dropped: u64,
}

impl MemorySink {
    /// A ring holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            capacity: capacity.max(1),
            inner: Mutex::new(MemoryInner::default()),
        }
    }

    /// Copies out the retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.iter().copied().collect()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// `true` if no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Discards all retained events.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.events.clear();
        inner.dropped = 0;
    }
}

impl EventSink for MemorySink {
    fn record(&self, event: &Event) {
        let mut inner = self.inner.lock();
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(*event);
    }
}

/// Streams events as JSON lines to any writer (a file, a `Vec<u8>`,
/// standard output).
///
/// Write errors are swallowed at `record` time — tracing must never
/// take down the traced system — but remembered, and reported by
/// [`JsonlSink::had_errors`].
pub struct JsonlSink {
    out: Mutex<Box<dyn IoWrite + Send>>,
    failed: AtomicBool,
}

impl JsonlSink {
    /// Wraps a writer.
    #[must_use]
    pub fn new(writer: impl IoWrite + Send + 'static) -> Self {
        JsonlSink {
            out: Mutex::new(Box::new(writer)),
            failed: AtomicBool::new(false),
        }
    }

    /// `true` if any write or flush failed.
    #[must_use]
    pub fn had_errors(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut out = self.out.lock();
        if writeln!(out, "{}", event.to_json_line()).is_err() {
            self.failed.store(true, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        if self.out.lock().flush().is_err() {
            self.failed.store(true, Ordering::Relaxed);
        }
    }
}

/// A crash-tolerant JSONL file sink for real processes: each event is
/// written as **one** `write(2)` of a complete line to a file opened in
/// append mode.
///
/// [`JsonlSink`] buffers through `writeln!`, so a `kill -9` can leave a
/// torn line mid-buffer. Here a line either fully reaches the kernel or
/// was never issued — the strongest guarantee available without fsync
/// per event — so a killed process's trace ends at a line boundary
/// (modulo filesystem-level tearing, which lenient merge parsing
/// tolerates). Append mode also makes restarts of the same process
/// continue the same trace file.
pub struct AppendJsonlSink {
    file: Mutex<std::fs::File>,
    failed: AtomicBool,
}

impl AppendJsonlSink {
    /// Opens (creating if necessary) `path` for appending.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn open(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(AppendJsonlSink {
            file: Mutex::new(file),
            failed: AtomicBool::new(false),
        })
    }

    /// `true` if any write failed.
    #[must_use]
    pub fn had_errors(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }
}

impl EventSink for AppendJsonlSink {
    fn record(&self, event: &Event) {
        let mut line = event.to_json_line();
        line.push('\n');
        if self.file.lock().write_all(line.as_bytes()).is_err() {
            self.failed.store(true, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        if self.file.lock().flush().is_err() {
            self.failed.store(true, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chroma_base::{ActionId, NodeId};

    fn begin(n: u64) -> EventKind {
        EventKind::ActionBegin {
            action: ActionId::from_raw(n),
            parent: None,
            colours: 1,
        }
    }

    #[test]
    fn counters_count_per_kind() {
        let bus = EventBus::new();
        bus.emit(begin(1));
        bus.emit(begin(2));
        bus.emit(EventKind::ActionCommit {
            action: ActionId::from_raw(1),
        });
        assert_eq!(bus.counter("action_begin"), 2);
        assert_eq!(bus.counter("action_commit"), 1);
        assert_eq!(bus.counter("action_abort"), 0);
        assert_eq!(bus.counter("not_a_kind"), 0);
        let snap = bus.snapshot();
        assert_eq!(snap.counter("action_begin"), 2);
    }

    #[test]
    fn manual_clock_stamps_events() {
        let bus = EventBus::new();
        bus.set_time_us(42_000);
        let e = bus.emit(begin(1));
        assert_eq!(e.at_us, 42_000);
        bus.set_time_us(43_000);
        assert_eq!(bus.now_us(), 43_000);
    }

    #[test]
    fn wall_clock_is_monotonic_from_zero() {
        let bus = EventBus::new();
        let a = bus.now_us();
        let b = bus.now_us();
        assert!(b >= a);
    }

    #[test]
    fn observe_feeds_named_histograms() {
        let bus = EventBus::new();
        bus.observe("core.commit_us", 10);
        bus.observe("core.commit_us", 30);
        bus.observe("locks.wait_us", 5);
        let dynamic = format!("core.commit_us.{}", "red");
        bus.observe(&dynamic, 12);
        bus.observe(&dynamic, 14);
        let snap = bus.snapshot();
        assert_eq!(snap.histogram("core.commit_us.red").unwrap().count, 2);
        let commit = snap.histogram("core.commit_us").unwrap();
        assert_eq!(commit.count, 2);
        assert_eq!(commit.mean_us, 20.0);
        assert_eq!(snap.histogram("locks.wait_us").unwrap().count, 1);
    }

    #[test]
    fn memory_sink_is_a_bounded_ring() {
        let bus = EventBus::new();
        let sink = Arc::new(MemorySink::new(3));
        bus.add_sink(sink.clone());
        for i in 0..5 {
            bus.emit(begin(i));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let kept: Vec<_> = sink.events();
        assert_eq!(
            kept[0].kind,
            begin(2),
            "oldest two were evicted, 2..5 remain"
        );
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let bus = EventBus::new();
        bus.set_time_us(7);
        let buffer: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl IoWrite for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = Arc::new(JsonlSink::new(Shared(buffer.clone())));
        bus.add_sink(sink.clone());
        bus.emit(begin(1));
        bus.emit(EventKind::NodeCrash {
            node: NodeId::from_raw(2),
        });
        bus.flush();
        assert!(!sink.had_errors());
        let text = String::from_utf8(buffer.lock().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let event = Event::from_json_line(line).unwrap();
            assert_eq!(event.at_us, 7);
        }
    }

    #[test]
    fn lamport_clocks_tick_and_merge() {
        use crate::event::MsgKind;
        let bus = Arc::new(EventBus::new());
        let n1 = NodeId::from_raw(1);
        let n2 = NodeId::from_raw(2);
        let obs = Obs::new(bus.clone());
        let send = obs
            .emit_corr(
                9,
                EventKind::MsgSend {
                    from: n1,
                    to: n2,
                    kind: MsgKind::Prepare,
                },
            )
            .unwrap();
        assert_eq!(send.node, Some(n1));
        assert_eq!(send.lc, 1);
        assert_eq!(send.corr, Some(9));
        // The receive side merges the send's clock first, so the
        // delivery is causally after it.
        bus.merge_clock(n2, send.lc);
        let deliver = obs
            .emit_corr(
                9,
                EventKind::MsgDeliver {
                    from: n1,
                    to: n2,
                    kind: MsgKind::Prepare,
                },
            )
            .unwrap();
        assert_eq!(deliver.node, Some(n2));
        assert!(deliver.lc > send.lc, "{} vs {}", deliver.lc, send.lc);
        assert_eq!(bus.lamport(n2), deliver.lc);
    }

    #[test]
    fn at_node_binds_nodeless_kinds() {
        let bus = Arc::new(EventBus::new());
        let sink = Arc::new(MemorySink::new(8));
        bus.add_sink(sink.clone());
        let obs = Obs::new(bus.clone()).at_node(NodeId::from_raw(5));
        assert_eq!(obs.node(), Some(NodeId::from_raw(5)));
        obs.emit(begin(1));
        let e = sink.events()[0];
        assert_eq!(e.node, Some(NodeId::from_raw(5)));
        assert_eq!(e.lc, 1);
        // A kind whose payload names a node ignores the binding.
        obs.emit(EventKind::NodeCrash {
            node: NodeId::from_raw(9),
        });
        let e = sink.events()[1];
        assert_eq!(e.node, Some(NodeId::from_raw(9)));
        assert_eq!(bus.lamport(NodeId::from_raw(9)), 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "never began")]
    fn parented_begin_without_parent_panics_in_debug() {
        let bus = EventBus::new();
        bus.emit(EventKind::ActionBegin {
            action: ActionId::from_raw(2),
            parent: Some(ActionId::from_raw(1)),
            colours: 1,
        });
    }

    #[test]
    fn gauges_overwrite_and_snapshot() {
        let bus = Arc::new(EventBus::new());
        assert_eq!(bus.gauge("locks.entries"), None);
        bus.set_gauge("locks.entries", 4);
        bus.set_gauge("locks.entries", 2);
        bus.set_gauge("store.group_queue", 9);
        assert_eq!(bus.gauge("locks.entries"), Some(2), "gauges overwrite");
        let snap = bus.snapshot();
        assert_eq!(snap.gauge("locks.entries"), Some(2));
        assert_eq!(snap.gauge("store.group_queue"), Some(9));
        assert!(snap.render().contains("gauges:"));
        // The Obs handle forwards (and is a no-op unbound).
        Obs::none().set_gauge("x", 1);
        let obs = Obs::new(bus.clone());
        obs.set_gauge("core.live_actions", 3);
        assert_eq!(bus.gauge("core.live_actions"), Some(3));
    }

    #[test]
    fn obs_handle_is_noop_without_bus() {
        let obs = Obs::none();
        assert!(!obs.enabled());
        obs.emit(begin(1)); // must not panic
        obs.observe("x", 1);
        assert_eq!(obs.now_us(), 0);

        let cell = ObsCell::new();
        assert!(!cell.get().enabled());
        let bus = Arc::new(EventBus::new());
        cell.set(Obs::new(bus.clone()));
        assert!(cell.get().enabled());
        cell.get().emit(begin(9));
        assert_eq!(bus.counter("action_begin"), 1);
    }
}
