//! The streaming watchdog: online, bounded-memory enforcement of the
//! offline auditor's checkable-in-flight rules.
//!
//! [`TraceAuditor`](crate::TraceAuditor) re-reads a finished JSONL
//! trace; the [`Watchdog`] instead taps the [`EventBus`] in-line
//! (see [`EventBus::install_watchdog`]) and re-implements the rules
//! whose state can be windowed by *live* entities — R1 (no lock after
//! shrink), R2 (Moss inheritance moves a held lock to the closest
//! colour-holding ancestor), R3 (writes under write locks), R4 (2PC
//! atomicity), R9 (group-fsync coverage), R10 (snapshot reads serve
//! the newest visible version; snapshot actions never lock) and R11
//! (segment GC stays behind the checkpoint watermark; recovery
//! replays exactly the manifest's live suffix).
//!
//! When a rule fires the bus emits a structured `watchdog_violation`
//! event *immediately after the offending event* — zero intervening
//! events — and the non-fatal callback registered with
//! [`Watchdog::on_violation`] runs synchronously. The watchdog never
//! panics and never stops the traced system.
//!
//! # Windowing discipline
//!
//! All state is bounded:
//!
//! * per-action state (held locks, shrunk flag, snapshot stamps) is
//!   keyed by *live* actions and evicted on commit/abort;
//! * recently terminated action ids sit in a fixed ring so a grant to
//!   a dead action is still caught ([`WatchdogConfig::retired_window`]);
//! * 2PC state is an insertion-ordered window of recent transactions
//!   ([`WatchdogConfig::txn_window`]);
//! * R9 is two counters and a flag;
//! * R11 keeps the uncheckpointed sealed segments in a window of at
//!   most [`WatchdogConfig::segment_window`] entries; if it ever
//!   overflows, the replay-matches-live-suffix check is skipped (the
//!   GC-behind-watermark check needs only the watermark and stays
//!   exact);
//! * R10 publication chains keep the newest
//!   [`WatchdogConfig::published_window`] versions per object over at
//!   most [`WatchdogConfig::published_objects`] objects. A check whose
//!   answer fell off a window is *skipped*, never guessed — the
//!   watchdog trades completeness for bounded memory, the offline
//!   auditor stays exact.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chroma_base::{ActionId, Colour, LockMode, ObjectId};
use parking_lot::{Mutex, RwLock};

use crate::event::{Event, EventKind, WatchdogRule};

/// Size limits for the watchdog's windowed state.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Recently terminated action ids remembered, so a lock grant to a
    /// dead action is still flagged as R1.
    pub retired_window: usize,
    /// Transactions tracked for R4, evicted oldest-first.
    pub txn_window: usize,
    /// Version publications retained per object for R10.
    pub published_window: usize,
    /// Objects with tracked publication chains; beyond this the
    /// oldest-tracked object is forgotten and reads of untracked
    /// objects go unchecked.
    pub published_objects: usize,
    /// Uncheckpointed sealed segments tracked for R11's
    /// replay-matches-live-suffix check; on overflow that check is
    /// skipped until the next replay resets the window.
    pub segment_window: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            retired_window: 4096,
            txn_window: 1024,
            published_window: 32,
            published_objects: 65536,
            segment_window: 1024,
        }
    }
}

struct LiveAction {
    parent: Option<ActionId>,
    colours: u64,
    /// The action released or inherited away a lock: 2PL's shrinking
    /// phase began, no further grants are legal (R1).
    shrunk: bool,
    /// Locks currently held, keyed by (object, colour index).
    held: HashMap<(u64, usize), LockMode>,
    /// Declared read-only snapshot action (saw a `snapshot_open`).
    snapshot: bool,
    /// Captured per-colour-index stamps of a snapshot action.
    caps: HashMap<usize, u64>,
}

impl LiveAction {
    fn new(parent: Option<ActionId>, colours: u64) -> Self {
        LiveAction {
            parent,
            colours,
            shrunk: false,
            held: HashMap::new(),
            snapshot: false,
            caps: HashMap::new(),
        }
    }
}

#[derive(Default)]
struct TxnWatch {
    yes: BTreeSet<u32>,
    no: BTreeSet<u32>,
    decision: Option<bool>,
}

#[derive(Default)]
struct PubChain {
    /// (colour index, stamp), in publication order.
    entries: VecDeque<(usize, u64)>,
    /// Older publications were dropped; an "expected = base" answer is
    /// no longer trustworthy.
    truncated: bool,
}

#[derive(Default)]
struct WatchdogState {
    actions: HashMap<ActionId, LiveAction>,
    retired: HashSet<u64>,
    retired_order: VecDeque<u64>,
    txns: HashMap<u64, TxnWatch>,
    txn_order: VecDeque<u64>,
    group_appends: u64,
    marked_unchecked: u64,
    saw_group_commit: bool,
    /// R11: uncheckpointed sealed segments as (sequence, batches).
    sealed_live: VecDeque<(u64, u64)>,
    /// The seal window overflowed: the replay check is unreliable and
    /// is skipped, never guessed.
    sealed_truncated: bool,
    /// R11: batches committed into the active segment since the last
    /// seal.
    active_batches: u64,
    /// R11: highest checkpointed segment sequence.
    ckpt_watermark: u64,
    saw_segment: bool,
    /// Publication chains keyed by (node raw id or 0, object raw id).
    published: HashMap<(u32, u64), PubChain>,
    published_order: VecDeque<(u32, u64)>,
    /// Once any whole object was evicted, an absent chain no longer
    /// means "nothing ever published" — reads of absent chains are
    /// then skipped instead of expected at the base version.
    published_evictions: u64,
    rule_counts: HashMap<WatchdogRule, u64>,
}

type Callback = dyn Fn(&Event) + Send + Sync;

/// The streaming watchdog. Install on a bus with
/// [`EventBus::install_watchdog`](crate::EventBus::install_watchdog)
/// (or the [`Watchdog::attach`] shorthand); it then inspects every
/// emitted event in-line.
pub struct Watchdog {
    config: WatchdogConfig,
    state: Mutex<WatchdogState>,
    violations: AtomicU64,
    callback: RwLock<Option<Arc<Callback>>>,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new()
    }
}

impl Watchdog {
    /// A watchdog with default window sizes.
    #[must_use]
    pub fn new() -> Self {
        Watchdog::with_config(WatchdogConfig::default())
    }

    /// A watchdog with explicit window sizes (each clamped to ≥ 1).
    #[must_use]
    pub fn with_config(config: WatchdogConfig) -> Self {
        let config = WatchdogConfig {
            retired_window: config.retired_window.max(1),
            txn_window: config.txn_window.max(1),
            published_window: config.published_window.max(1),
            published_objects: config.published_objects.max(1),
            segment_window: config.segment_window.max(1),
        };
        Watchdog {
            config,
            state: Mutex::new(WatchdogState::default()),
            violations: AtomicU64::new(0),
            callback: RwLock::new(None),
        }
    }

    /// Creates a default watchdog, installs it on `bus` and returns
    /// the handle.
    pub fn attach(bus: &crate::EventBus) -> Arc<Watchdog> {
        let watchdog = Arc::new(Watchdog::new());
        bus.install_watchdog(Some(Arc::clone(&watchdog)));
        watchdog
    }

    /// Registers the non-fatal violation callback, replacing any
    /// previous one. It runs synchronously on the emitting thread with
    /// the stamped `watchdog_violation` event; it must not block.
    pub fn on_violation(&self, callback: impl Fn(&Event) + Send + Sync + 'static) {
        *self.callback.write() = Some(Arc::new(callback));
    }

    /// Total violations detected so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Violations detected for one rule.
    #[must_use]
    pub fn rule_count(&self, rule: WatchdogRule) -> u64 {
        self.state
            .lock()
            .rule_counts
            .get(&rule)
            .copied()
            .unwrap_or(0)
    }

    /// Invokes the registered callback with a stamped violation event
    /// (called by the bus after emitting it).
    pub(crate) fn deliver(&self, event: &Event) {
        let callback = self.callback.read().clone();
        if let Some(callback) = callback {
            callback(event);
        }
    }

    /// Feeds one event through the rule machine; returns the violation
    /// kinds it triggered (usually empty).
    pub(crate) fn scan(&self, event: &Event) -> Vec<EventKind> {
        let mut out = Vec::new();
        {
            let mut state = self.state.lock();
            self.step(&mut state, event, &mut out);
            let n = out.len() as u64;
            if n > 0 {
                self.violations.fetch_add(n, Ordering::Relaxed);
                for kind in &out {
                    if let EventKind::WatchdogViolation { rule, .. } = kind {
                        *state.rule_counts.entry(*rule).or_insert(0) += 1;
                    }
                }
            }
        }
        out
    }

    #[allow(clippy::too_many_lines)]
    fn step(&self, state: &mut WatchdogState, event: &Event, out: &mut Vec<EventKind>) {
        let violation =
            |rule: WatchdogRule, action: ActionId, object: ObjectId, aux: u64| -> EventKind {
                EventKind::WatchdogViolation {
                    rule,
                    action,
                    object,
                    aux,
                }
            };
        let zero_a = ActionId::from_raw(0);
        let zero_o = ObjectId::from_raw(0);
        match event.kind {
            EventKind::ActionBegin {
                action,
                parent,
                colours,
            } => {
                state
                    .actions
                    .insert(action, LiveAction::new(parent, colours));
            }
            EventKind::ActionCommit { action } | EventKind::ActionAbort { action } => {
                state.actions.remove(&action);
                if state.retired.insert(action.as_raw()) {
                    state.retired_order.push_back(action.as_raw());
                    while state.retired_order.len() > self.config.retired_window {
                        if let Some(old) = state.retired_order.pop_front() {
                            state.retired.remove(&old);
                        }
                    }
                }
            }
            EventKind::LockRequest { action, object, .. }
            | EventKind::LockConflict { action, object, .. }
                if state.actions.get(&action).is_some_and(|a| a.snapshot) =>
            {
                out.push(violation(
                    WatchdogRule::SnapshotReaderLocks,
                    action,
                    object,
                    0,
                ));
            }
            EventKind::LockGrant {
                action,
                object,
                colour,
                mode,
            } => {
                if let Some(a) = state.actions.get_mut(&action) {
                    if a.snapshot {
                        out.push(violation(
                            WatchdogRule::SnapshotReaderLocks,
                            action,
                            object,
                            0,
                        ));
                    }
                    if a.shrunk {
                        out.push(violation(
                            WatchdogRule::LockAfterShrink,
                            action,
                            object,
                            colour.index() as u64,
                        ));
                    }
                    let slot = a
                        .held
                        .entry((object.as_raw(), colour.index()))
                        .or_insert(mode);
                    *slot = slot.strongest(mode);
                } else if state.retired.contains(&action.as_raw()) {
                    // A grant to a terminated action: shrunk for good.
                    out.push(violation(
                        WatchdogRule::LockAfterShrink,
                        action,
                        object,
                        colour.index() as u64,
                    ));
                }
                // An action the watchdog never saw begin predates the
                // attach; its lock discipline is unknowable online.
            }
            EventKind::LockInherit {
                from,
                to,
                object,
                colour,
            } => {
                let key = (object.as_raw(), colour.index());
                let mut moved = LockMode::Read;
                if let Some(a) = state.actions.get_mut(&from) {
                    a.shrunk = true;
                    match a.held.remove(&key) {
                        Some(mode) => moved = mode,
                        None => out.push(violation(
                            WatchdogRule::InheritWithoutLock,
                            from,
                            object,
                            colour.index() as u64,
                        )),
                    }
                    if let Some(expected) = closest_ancestor_with_colour(state, from, colour) {
                        if expected != to {
                            out.push(violation(
                                WatchdogRule::BadInheritTarget,
                                from,
                                object,
                                expected.as_raw(),
                            ));
                        }
                    }
                }
                if let Some(target) = state.actions.get_mut(&to) {
                    let slot = target.held.entry(key).or_insert(moved);
                    *slot = slot.strongest(moved);
                }
            }
            EventKind::LockRelease {
                action,
                object,
                colour,
            } => {
                if let Some(a) = state.actions.get_mut(&action) {
                    a.shrunk = true;
                    if a.held.remove(&(object.as_raw(), colour.index())).is_none() {
                        out.push(violation(
                            WatchdogRule::ReleaseWithoutLock,
                            action,
                            object,
                            colour.index() as u64,
                        ));
                    }
                }
            }
            EventKind::UndoRecord {
                action,
                object,
                colour,
            } => {
                if let Some(a) = state.actions.get(&action) {
                    let covered = a
                        .held
                        .get(&(object.as_raw(), colour.index()))
                        .is_some_and(|m| m.permits_write());
                    if !covered {
                        out.push(violation(
                            WatchdogRule::WriteWithoutWriteLock,
                            action,
                            object,
                            colour.index() as u64,
                        ));
                    }
                }
            }
            EventKind::TpcVote { node, txn, yes } => {
                let watch = txn_entry(state, txn, self.config.txn_window);
                if yes {
                    watch.yes.insert(node.as_raw());
                } else {
                    watch.no.insert(node.as_raw());
                    if watch.decision == Some(true) {
                        out.push(violation(
                            WatchdogRule::CommitDespiteNoVote,
                            zero_a,
                            zero_o,
                            txn,
                        ));
                    }
                }
            }
            EventKind::TpcDecide {
                txn,
                commit,
                participants,
                ..
            } => {
                let watch = txn_entry(state, txn, self.config.txn_window);
                match watch.decision {
                    None => {
                        watch.decision = Some(commit);
                        if commit {
                            if (watch.yes.len() as u64) < participants {
                                out.push(violation(
                                    WatchdogRule::CommitWithoutQuorum,
                                    zero_a,
                                    zero_o,
                                    txn,
                                ));
                            }
                            if !watch.no.is_empty() {
                                out.push(violation(
                                    WatchdogRule::CommitDespiteNoVote,
                                    zero_a,
                                    zero_o,
                                    txn,
                                ));
                            }
                        }
                    }
                    Some(prior) if prior != commit => {
                        out.push(violation(
                            WatchdogRule::DivergentDecision,
                            zero_a,
                            zero_o,
                            txn,
                        ));
                    }
                    Some(_) => {}
                }
            }
            EventKind::TpcResolve { txn, commit, .. } => {
                let watch = txn_entry(state, txn, self.config.txn_window);
                match watch.decision {
                    // Presumed abort: a participant may resolve before
                    // the watchdog saw any decision.
                    None => watch.decision = Some(commit),
                    Some(prior) if prior != commit => {
                        out.push(violation(
                            WatchdogRule::DivergentDecision,
                            zero_a,
                            zero_o,
                            txn,
                        ));
                    }
                    Some(_) => {}
                }
            }
            EventKind::DiskAppend { .. } => {
                state.group_appends += 1;
            }
            EventKind::DiskGroupCommit { batches, .. } => {
                state.saw_group_commit = true;
                if batches != state.group_appends {
                    out.push(violation(
                        WatchdogRule::GroupFsyncCoverage,
                        zero_a,
                        zero_o,
                        batches,
                    ));
                }
                state.group_appends = 0;
                state.marked_unchecked += batches;
                // R11: until the next seal these batches live in the
                // active segment.
                state.active_batches += batches;
            }
            EventKind::DiskCheckpoint { .. } if state.saw_group_commit => {
                state.marked_unchecked = state.marked_unchecked.saturating_sub(1);
            }
            EventKind::SegmentSeal {
                segment, batches, ..
            } => {
                state.saw_segment = true;
                state.active_batches = 0;
                state.sealed_live.push_back((segment, batches));
                while state.sealed_live.len() > self.config.segment_window {
                    state.sealed_live.pop_front();
                    state.sealed_truncated = true;
                }
            }
            EventKind::CheckpointEnd { upto, batches, .. } => {
                if state.saw_group_commit {
                    state.marked_unchecked = state.marked_unchecked.saturating_sub(batches);
                }
                state.ckpt_watermark = state.ckpt_watermark.max(upto);
                state.sealed_live.retain(|&(seq, _)| seq > upto);
            }
            EventKind::SegmentGc { segment, .. }
                if state.saw_segment && segment > state.ckpt_watermark =>
            {
                out.push(violation(
                    WatchdogRule::GcUncheckpointedSegment,
                    zero_a,
                    zero_o,
                    segment,
                ));
            }
            EventKind::DiskReplay { batches, .. }
                if state.saw_group_commit || state.saw_segment =>
            {
                if state.saw_group_commit {
                    if batches != state.marked_unchecked {
                        out.push(violation(
                            WatchdogRule::ReplayMarkMismatch,
                            zero_a,
                            zero_o,
                            batches,
                        ));
                    }
                    state.marked_unchecked = 0;
                }
                if state.saw_segment {
                    if !state.sealed_truncated {
                        let live: u64 = state.sealed_live.iter().map(|&(_, b)| b).sum::<u64>()
                            + state.active_batches;
                        if batches != live {
                            out.push(violation(
                                WatchdogRule::ReplayManifestMismatch,
                                zero_a,
                                zero_o,
                                batches,
                            ));
                        }
                    }
                    state.sealed_live.clear();
                    state.sealed_truncated = false;
                    state.active_batches = 0;
                }
            }
            EventKind::SnapshotOpen {
                action,
                colour,
                stamp,
            } => {
                let a = state
                    .actions
                    .entry(action)
                    .or_insert_with(|| LiveAction::new(None, 0));
                a.snapshot = true;
                a.caps.insert(colour.index(), stamp);
            }
            EventKind::SnapshotRead {
                action,
                object,
                stamp,
                ..
            } => {
                let Some(a) = state.actions.get(&action) else {
                    return;
                };
                if !a.snapshot {
                    return;
                }
                let key = (event.node.map_or(0, |n| n.as_raw()), object.as_raw());
                let expected = match state.published.get(&key) {
                    Some(chain) => {
                        let newest_visible = chain
                            .entries
                            .iter()
                            .rev()
                            .find(|(ci, s)| a.caps.get(ci).copied().unwrap_or(0) >= *s)
                            .map(|&(_, s)| s);
                        match newest_visible {
                            Some(s) => Some(s),
                            // Every retained publication is newer than
                            // the snapshot; with older ones dropped the
                            // true answer is unknowable.
                            None if chain.truncated => None,
                            None => Some(0),
                        }
                    }
                    None if state.published_evictions > 0 => None,
                    None => Some(0),
                };
                if let Some(expected) = expected {
                    if stamp != expected {
                        out.push(violation(
                            WatchdogRule::SnapshotReadNotNewest,
                            action,
                            object,
                            stamp,
                        ));
                    }
                }
            }
            EventKind::VersionPublish {
                object,
                colour,
                stamp,
            } => {
                let key = (event.node.map_or(0, |n| n.as_raw()), object.as_raw());
                if !state.published.contains_key(&key) {
                    state.published_order.push_back(key);
                    while state.published.len() >= self.config.published_objects {
                        match state.published_order.pop_front() {
                            Some(old) if old != key => {
                                if state.published.remove(&old).is_some() {
                                    state.published_evictions += 1;
                                }
                            }
                            _ => break,
                        }
                    }
                }
                let chain = state.published.entry(key).or_default();
                chain.entries.push_back((colour.index(), stamp));
                while chain.entries.len() > self.config.published_window {
                    chain.entries.pop_front();
                    chain.truncated = true;
                }
            }
            EventKind::NodeCrash { node } => {
                // The node's version chains are volatile: publications
                // die with it (recovery reseeds base versions).
                state.published.retain(|&(n, _), _| n != node.as_raw());
            }
            _ => {}
        }
    }
}

/// Walks `from`'s ancestors through the live-action map; the first one
/// possessing `colour` is the legal Moss inheritance target. `None`
/// when the walk leaves the window (unknown ancestor) — the check is
/// then skipped — or genuinely reaches the root.
fn closest_ancestor_with_colour(
    state: &WatchdogState,
    from: ActionId,
    colour: Colour,
) -> Option<ActionId> {
    let bit = 1u64 << colour.index();
    let mut cursor = state.actions.get(&from)?.parent;
    let mut hops = 0u32;
    while let Some(id) = cursor {
        let a = state.actions.get(&id)?;
        if a.colours & bit != 0 {
            return Some(id);
        }
        cursor = a.parent;
        hops += 1;
        if hops > 10_000 {
            return None; // cycle guard: corrupt parent chain
        }
    }
    None
}

fn txn_entry(state: &mut WatchdogState, txn: u64, window: usize) -> &mut TxnWatch {
    if !state.txns.contains_key(&txn) {
        state.txn_order.push_back(txn);
        while state.txns.len() >= window {
            match state.txn_order.pop_front() {
                Some(old) if old != txn => {
                    state.txns.remove(&old);
                }
                _ => break,
            }
        }
    }
    state.txns.entry(txn).or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{EventBus, MemorySink};
    use chroma_base::NodeId;
    use std::sync::atomic::AtomicUsize;

    fn aid(n: u64) -> ActionId {
        ActionId::from_raw(n)
    }
    fn oid(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }
    fn col(i: usize) -> Colour {
        Colour::from_index(i)
    }

    /// A bus with an attached watchdog, a memory sink and a violation
    /// counter bumped by the callback.
    fn rig() -> (
        Arc<EventBus>,
        Arc<Watchdog>,
        Arc<MemorySink>,
        Arc<AtomicUsize>,
    ) {
        let bus = Arc::new(EventBus::new());
        let sink = Arc::new(MemorySink::new(4096));
        bus.add_sink(sink.clone());
        let watchdog = Watchdog::attach(&bus);
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = fired.clone();
        watchdog.on_violation(move |event| {
            assert!(matches!(event.kind, EventKind::WatchdogViolation { .. }));
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        (bus, watchdog, sink, fired)
    }

    fn begin(bus: &EventBus, action: u64) {
        bus.emit(EventKind::ActionBegin {
            action: aid(action),
            parent: None,
            colours: 0b1,
        });
    }

    fn grant(bus: &EventBus, action: u64, object: u64, mode: LockMode) {
        bus.emit(EventKind::LockGrant {
            action: aid(action),
            object: oid(object),
            colour: col(0),
            mode,
        });
    }

    /// The violation must appear in the sink within `budget` events of
    /// the offending event (the bus emits it with zero intervening
    /// events; the assertion is deliberately looser so the *contract*
    /// tested is the bounded budget the tentpole promises).
    fn assert_violation_within(sink: &MemorySink, rule: WatchdogRule, budget: usize) {
        let events = sink.events();
        let offending = events
            .len()
            .checked_sub(budget + 1)
            .expect("enough events recorded");
        let found = events[offending..]
            .iter()
            .any(|e| matches!(e.kind, EventKind::WatchdogViolation { rule: r, .. } if r == rule));
        assert!(
            found,
            "no {rule} violation within {budget} events; tail: {:?}",
            &events[offending..]
        );
    }

    #[test]
    fn r1_grant_after_release_fires_online() {
        let (bus, wd, sink, fired) = rig();
        begin(&bus, 1);
        grant(&bus, 1, 7, LockMode::Read);
        bus.emit(EventKind::LockRelease {
            action: aid(1),
            object: oid(7),
            colour: col(0),
        });
        assert_eq!(wd.violations(), 0, "release itself is clean");
        grant(&bus, 1, 8, LockMode::Read);
        assert_eq!(wd.violations(), 1);
        assert_eq!(wd.rule_count(WatchdogRule::LockAfterShrink), 1);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "callback ran");
        assert_violation_within(&sink, WatchdogRule::LockAfterShrink, 1);
    }

    #[test]
    fn r1_grant_to_terminated_action_fires() {
        let (bus, wd, sink, _) = rig();
        begin(&bus, 1);
        bus.emit(EventKind::ActionCommit { action: aid(1) });
        grant(&bus, 1, 7, LockMode::Write);
        assert_eq!(wd.rule_count(WatchdogRule::LockAfterShrink), 1);
        assert_violation_within(&sink, WatchdogRule::LockAfterShrink, 1);
    }

    #[test]
    fn r2_inherit_without_lock_fires() {
        let (bus, wd, sink, _) = rig();
        begin(&bus, 1);
        bus.emit(EventKind::ActionBegin {
            action: aid(2),
            parent: Some(aid(1)),
            colours: 0b1,
        });
        bus.emit(EventKind::LockInherit {
            from: aid(2),
            to: aid(1),
            object: oid(7),
            colour: col(0),
        });
        assert_eq!(wd.rule_count(WatchdogRule::InheritWithoutLock), 1);
        assert_violation_within(&sink, WatchdogRule::InheritWithoutLock, 1);
    }

    #[test]
    fn r2_bad_inherit_target_fires() {
        let (bus, wd, sink, _) = rig();
        // grandparent(1, colour 0) -> parent(2, colour 0) -> child(3)
        begin(&bus, 1);
        bus.emit(EventKind::ActionBegin {
            action: aid(2),
            parent: Some(aid(1)),
            colours: 0b1,
        });
        bus.emit(EventKind::ActionBegin {
            action: aid(3),
            parent: Some(aid(2)),
            colours: 0b1,
        });
        grant(&bus, 3, 7, LockMode::Write);
        // Legal target is the *closest* colour-holding ancestor (2);
        // skipping to the grandparent must fire.
        bus.emit(EventKind::LockInherit {
            from: aid(3),
            to: aid(1),
            object: oid(7),
            colour: col(0),
        });
        assert_eq!(wd.rule_count(WatchdogRule::BadInheritTarget), 1);
        assert_violation_within(&sink, WatchdogRule::BadInheritTarget, 1);
    }

    #[test]
    fn r2_release_without_lock_fires() {
        let (bus, wd, sink, _) = rig();
        begin(&bus, 1);
        bus.emit(EventKind::LockRelease {
            action: aid(1),
            object: oid(7),
            colour: col(0),
        });
        assert_eq!(wd.rule_count(WatchdogRule::ReleaseWithoutLock), 1);
        assert_violation_within(&sink, WatchdogRule::ReleaseWithoutLock, 1);
    }

    #[test]
    fn r3_write_bypassing_lock_fires() {
        let (bus, wd, sink, fired) = rig();
        begin(&bus, 1);
        grant(&bus, 1, 7, LockMode::Read);
        // A before-image under a read lock: the classic write-without-
        // write-lock injection.
        bus.emit(EventKind::UndoRecord {
            action: aid(1),
            object: oid(7),
            colour: col(0),
        });
        assert_eq!(wd.rule_count(WatchdogRule::WriteWithoutWriteLock), 1);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_violation_within(&sink, WatchdogRule::WriteWithoutWriteLock, 1);
    }

    #[test]
    fn r4_commit_without_quorum_fires() {
        let (bus, wd, sink, _) = rig();
        bus.emit(EventKind::TpcVote {
            node: NodeId::from_raw(1),
            txn: 9,
            yes: true,
        });
        bus.emit(EventKind::TpcDecide {
            node: NodeId::from_raw(1),
            txn: 9,
            commit: true,
            participants: 3,
        });
        assert_eq!(wd.rule_count(WatchdogRule::CommitWithoutQuorum), 1);
        assert_violation_within(&sink, WatchdogRule::CommitWithoutQuorum, 1);
    }

    #[test]
    fn r4_commit_despite_no_vote_and_divergence_fire() {
        let (bus, wd, _, _) = rig();
        bus.emit(EventKind::TpcVote {
            node: NodeId::from_raw(1),
            txn: 9,
            yes: true,
        });
        bus.emit(EventKind::TpcVote {
            node: NodeId::from_raw(2),
            txn: 9,
            yes: false,
        });
        bus.emit(EventKind::TpcDecide {
            node: NodeId::from_raw(1),
            txn: 9,
            commit: true,
            participants: 2,
        });
        // commit with one no-vote and only one yes: both R4 flavours
        assert_eq!(wd.rule_count(WatchdogRule::CommitDespiteNoVote), 1);
        assert_eq!(wd.rule_count(WatchdogRule::CommitWithoutQuorum), 1);
        bus.emit(EventKind::TpcResolve {
            node: NodeId::from_raw(2),
            txn: 9,
            commit: false,
        });
        assert_eq!(wd.rule_count(WatchdogRule::DivergentDecision), 1);
    }

    #[test]
    fn r9_group_fsync_coverage_fires() {
        let (bus, wd, sink, _) = rig();
        bus.emit(EventKind::DiskAppend {
            records: 2,
            bytes: 64,
        });
        bus.emit(EventKind::DiskGroupCommit {
            batches: 3, // only 1 append since the last group fsync
            records: 6,
            bytes: 128,
        });
        assert_eq!(wd.rule_count(WatchdogRule::GroupFsyncCoverage), 1);
        assert_violation_within(&sink, WatchdogRule::GroupFsyncCoverage, 1);
    }

    #[test]
    fn r9_replay_mark_mismatch_fires() {
        let (bus, wd, sink, _) = rig();
        bus.emit(EventKind::DiskAppend {
            records: 2,
            bytes: 64,
        });
        bus.emit(EventKind::DiskGroupCommit {
            batches: 1,
            records: 2,
            bytes: 64,
        });
        // The one group-fsynced batch was never checkpointed, yet the
        // replay claims two.
        bus.emit(EventKind::DiskReplay {
            batches: 2,
            objects: 4,
        });
        assert_eq!(wd.rule_count(WatchdogRule::ReplayMarkMismatch), 1);
        assert_violation_within(&sink, WatchdogRule::ReplayMarkMismatch, 1);
    }

    #[test]
    fn r11_gc_uncheckpointed_segment_fires() {
        let (bus, wd, sink, _) = rig();
        bus.emit(EventKind::DiskAppend {
            records: 2,
            bytes: 64,
        });
        bus.emit(EventKind::DiskGroupCommit {
            batches: 1,
            records: 2,
            bytes: 64,
        });
        bus.emit(EventKind::SegmentSeal {
            segment: 2,
            batches: 1,
            bytes: 64,
        });
        // GC with no covering checkpoint: the sealed batch is lost.
        bus.emit(EventKind::SegmentGc {
            segment: 2,
            bytes: 64,
        });
        assert_eq!(wd.rule_count(WatchdogRule::GcUncheckpointedSegment), 1);
        assert_violation_within(&sink, WatchdogRule::GcUncheckpointedSegment, 1);
    }

    #[test]
    fn r11_replay_manifest_mismatch_fires() {
        let (bus, wd, sink, _) = rig();
        bus.emit(EventKind::DiskAppend {
            records: 2,
            bytes: 64,
        });
        bus.emit(EventKind::DiskGroupCommit {
            batches: 1,
            records: 2,
            bytes: 64,
        });
        bus.emit(EventKind::SegmentSeal {
            segment: 1,
            batches: 1,
            bytes: 64,
        });
        // Live suffix = 1 sealed batch, but recovery replays none —
        // the R9 mirror fires too (1 marked batch, 0 replayed).
        bus.emit(EventKind::DiskReplay {
            batches: 0,
            objects: 0,
        });
        assert_eq!(wd.rule_count(WatchdogRule::ReplayManifestMismatch), 1);
        assert_violation_within(&sink, WatchdogRule::ReplayManifestMismatch, 2);
    }

    #[test]
    fn r11_clean_segment_lifecycle_stays_silent() {
        let (bus, wd, _, fired) = rig();
        bus.emit(EventKind::DiskAppend {
            records: 2,
            bytes: 64,
        });
        bus.emit(EventKind::DiskGroupCommit {
            batches: 1,
            records: 2,
            bytes: 64,
        });
        bus.emit(EventKind::SegmentSeal {
            segment: 1,
            batches: 1,
            bytes: 64,
        });
        bus.emit(EventKind::CheckpointBegin {
            segments: 1,
            batches: 1,
        });
        bus.emit(EventKind::CheckpointEnd {
            upto: 1,
            batches: 1,
            objects: 1,
        });
        bus.emit(EventKind::SegmentGc {
            segment: 1,
            bytes: 64,
        });
        // Everything checkpointed: recovery replays nothing.
        bus.emit(EventKind::DiskReplay {
            batches: 0,
            objects: 0,
        });
        assert_eq!(wd.violations(), 0, "clean lifecycle must stay silent");
        assert_eq!(fired.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn r11_truncated_segment_window_skips_rather_than_guesses() {
        let bus = Arc::new(EventBus::new());
        let watchdog = Arc::new(Watchdog::with_config(WatchdogConfig {
            segment_window: 1,
            ..WatchdogConfig::default()
        }));
        bus.install_watchdog(Some(watchdog.clone()));
        for segment in 1..=3u64 {
            bus.emit(EventKind::DiskAppend {
                records: 2,
                bytes: 64,
            });
            bus.emit(EventKind::DiskGroupCommit {
                batches: 1,
                records: 2,
                bytes: 64,
            });
            bus.emit(EventKind::SegmentSeal {
                segment,
                batches: 1,
                bytes: 64,
            });
        }
        // The window saw only the newest seal; a replay count it
        // cannot verify must be skipped, not guessed wrong. (The R9
        // mirror still checks total marked batches and stays clean.)
        bus.emit(EventKind::DiskReplay {
            batches: 3,
            objects: 3,
        });
        assert_eq!(
            watchdog.rule_count(WatchdogRule::ReplayManifestMismatch),
            0,
            "truncated window must skip the replay check"
        );
    }

    #[test]
    fn r10_snapshot_read_not_newest_fires() {
        let (bus, wd, sink, _) = rig();
        bus.emit(EventKind::VersionPublish {
            object: oid(7),
            colour: col(0),
            stamp: 1,
        });
        bus.emit(EventKind::VersionPublish {
            object: oid(7),
            colour: col(0),
            stamp: 2,
        });
        begin(&bus, 5);
        bus.emit(EventKind::SnapshotOpen {
            action: aid(5),
            colour: col(0),
            stamp: 2,
        });
        // Stamp 2 is visible; serving stamp 1 is not the newest.
        bus.emit(EventKind::SnapshotRead {
            action: aid(5),
            object: oid(7),
            colour: col(0),
            stamp: 1,
        });
        assert_eq!(wd.rule_count(WatchdogRule::SnapshotReadNotNewest), 1);
        assert_violation_within(&sink, WatchdogRule::SnapshotReadNotNewest, 1);
    }

    #[test]
    fn r10_snapshot_reader_taking_locks_fires() {
        let (bus, wd, sink, _) = rig();
        begin(&bus, 5);
        bus.emit(EventKind::SnapshotOpen {
            action: aid(5),
            colour: col(0),
            stamp: 0,
        });
        bus.emit(EventKind::LockRequest {
            action: aid(5),
            object: oid(7),
            colour: col(0),
            mode: LockMode::Read,
        });
        assert_eq!(wd.rule_count(WatchdogRule::SnapshotReaderLocks), 1);
        assert_violation_within(&sink, WatchdogRule::SnapshotReaderLocks, 1);
    }

    #[test]
    fn clean_nested_lifecycle_stays_silent() {
        let (bus, wd, sink, fired) = rig();
        // parent holds colour 0; child writes under a write lock, then
        // inherits to the parent, which releases at commit.
        begin(&bus, 1);
        bus.emit(EventKind::ActionBegin {
            action: aid(2),
            parent: Some(aid(1)),
            colours: 0b1,
        });
        grant(&bus, 2, 7, LockMode::Write);
        bus.emit(EventKind::UndoRecord {
            action: aid(2),
            object: oid(7),
            colour: col(0),
        });
        bus.emit(EventKind::LockInherit {
            from: aid(2),
            to: aid(1),
            object: oid(7),
            colour: col(0),
        });
        bus.emit(EventKind::ActionCommit { action: aid(2) });
        bus.emit(EventKind::LockRelease {
            action: aid(1),
            object: oid(7),
            colour: col(0),
        });
        bus.emit(EventKind::ActionCommit { action: aid(1) });
        // Clean 2PC, group commit, snapshot traffic.
        bus.emit(EventKind::TpcVote {
            node: NodeId::from_raw(1),
            txn: 3,
            yes: true,
        });
        bus.emit(EventKind::TpcDecide {
            node: NodeId::from_raw(1),
            txn: 3,
            commit: true,
            participants: 1,
        });
        bus.emit(EventKind::DiskAppend {
            records: 2,
            bytes: 64,
        });
        bus.emit(EventKind::DiskGroupCommit {
            batches: 1,
            records: 2,
            bytes: 64,
        });
        bus.emit(EventKind::DiskCheckpoint { objects: 1 });
        bus.emit(EventKind::VersionPublish {
            object: oid(7),
            colour: col(0),
            stamp: 1,
        });
        begin(&bus, 9);
        bus.emit(EventKind::SnapshotOpen {
            action: aid(9),
            colour: col(0),
            stamp: 1,
        });
        bus.emit(EventKind::SnapshotRead {
            action: aid(9),
            object: oid(7),
            colour: col(0),
            stamp: 1,
        });
        bus.emit(EventKind::ActionCommit { action: aid(9) });
        assert_eq!(wd.violations(), 0, "clean run must stay silent");
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        assert!(sink
            .events()
            .iter()
            .all(|e| !matches!(e.kind, EventKind::WatchdogViolation { .. })));
    }

    #[test]
    fn truncated_publication_window_skips_rather_than_guesses() {
        let bus = Arc::new(EventBus::new());
        let watchdog = Arc::new(Watchdog::with_config(WatchdogConfig {
            published_window: 2,
            ..WatchdogConfig::default()
        }));
        bus.install_watchdog(Some(watchdog.clone()));
        for stamp in 1..=5 {
            bus.emit(EventKind::VersionPublish {
                object: oid(7),
                colour: col(0),
                stamp,
            });
        }
        begin(&bus, 1);
        bus.emit(EventKind::SnapshotOpen {
            action: aid(1),
            colour: col(0),
            stamp: 2,
        });
        // Stamps 1..=2 fell off the window; the read of stamp 2 cannot
        // be validated and must NOT be flagged.
        bus.emit(EventKind::SnapshotRead {
            action: aid(1),
            object: oid(7),
            colour: col(0),
            stamp: 2,
        });
        assert_eq!(watchdog.violations(), 0, "unknowable checks are skipped");
    }

    #[test]
    fn windowed_state_is_evicted_on_termination() {
        let (bus, wd, _, _) = rig();
        begin(&bus, 1);
        grant(&bus, 1, 7, LockMode::Write);
        bus.emit(EventKind::ActionCommit { action: aid(1) });
        {
            let state = wd.state.lock();
            assert!(state.actions.is_empty(), "live state evicted at commit");
            assert!(state.retired.contains(&1));
        }
        // The retired ring is bounded.
        let wd2 = Watchdog::with_config(WatchdogConfig {
            retired_window: 2,
            ..WatchdogConfig::default()
        });
        let bus2 = Arc::new(EventBus::new());
        bus2.install_watchdog(Some(Arc::new(wd2)));
        let wd2 = bus2.watchdog().unwrap();
        for n in 1..=5u64 {
            begin(&bus2, n);
            bus2.emit(EventKind::ActionCommit { action: aid(n) });
        }
        let state = wd2.state.lock();
        assert_eq!(state.retired.len(), 2);
        assert_eq!(state.retired_order.len(), 2);
    }

    #[test]
    fn node_crash_forgets_that_nodes_publications() {
        let (bus, wd, _, _) = rig();
        let n = NodeId::from_raw(3);
        let obs = crate::Obs::new(bus.clone()).at_node(n);
        obs.emit(EventKind::VersionPublish {
            object: oid(7),
            colour: col(0),
            stamp: 1,
        });
        assert_eq!(wd.state.lock().published.len(), 1);
        bus.emit(EventKind::NodeCrash { node: n });
        assert!(
            wd.state.lock().published.is_empty(),
            "crash clears the node's chains"
        );
        assert_eq!(wd.violations(), 0);
    }

    #[test]
    fn detached_watchdog_stops_scanning() {
        let (bus, wd, _, _) = rig();
        bus.install_watchdog(None);
        begin(&bus, 1);
        bus.emit(EventKind::LockRelease {
            action: aid(1),
            object: oid(7),
            colour: col(0),
        });
        assert_eq!(wd.violations(), 0, "detached watchdog sees nothing");
        assert!(bus.watchdog().is_none());
    }
}
