//! Chrome trace-event JSON export (loadable in Perfetto or
//! `chrome://tracing`).
//!
//! The exported profile has one *process* (track group) per traced
//! node — plus a `local` track for node-less events — with
//! reconstructed spans as complete (`"X"`) slices, crashes and
//! recoveries as instants, and one flow arrow (`"s"`/`"f"` pair) per
//! correlated send/delivery, anchored on thin per-message slices so
//! the arrows survive viewers that bind flows to enclosing slices.
//!
//! Timestamps are microseconds, which is exactly the unit the event
//! bus stamps, so no scaling happens on export.

use chroma_base::NodeId;

use crate::event::{escape_json_str, Event, EventKind};
use crate::span::{SpanForest, SpanKind};

/// Builds the trace-event JSON for a captured event slice.
#[must_use]
pub fn chrome_trace(events: &[Event]) -> String {
    chrome_trace_from(&SpanForest::build(events), events)
}

/// Builds the trace-event JSON from an already-built forest (must be
/// the forest of `events`).
#[must_use]
pub fn chrome_trace_from(forest: &SpanForest, events: &[Event]) -> String {
    let mut entries: Vec<String> = Vec::new();

    // one process per node; metadata names the tracks
    let mut pids: Vec<u64> = events.iter().map(|e| pid(e.node)).collect();
    pids.sort_unstable();
    pids.dedup();
    for &p in &pids {
        let name = if p == 0 {
            "local".to_owned()
        } else {
            format!("node N{}", p - 1)
        };
        entries.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":1,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json_str(&name)
        ));
        // order tracks by node id, local last
        let sort = if p == 0 { u64::from(u32::MAX) } else { p };
        entries.push(format!(
            "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{p},\"tid\":1,\
             \"args\":{{\"sort_index\":{sort}}}}}"
        ));
    }

    for span in &forest.spans {
        let cat = match span.kind {
            SpanKind::Action { .. } => "action",
            SpanKind::LockWait { .. } => "lock",
            SpanKind::Txn { .. } => "2pc",
            SpanKind::Catchup { .. } => "catchup",
            SpanKind::Snapshot { .. } => "snapshot",
        };
        entries.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":1}}",
            escape_json_str(&span.label()),
            span.begin_us,
            span.duration_us().max(1),
            pid(span.node)
        ));
    }

    for event in events {
        match event.kind {
            EventKind::NodeCrash { node } => entries.push(instant("crash", node, event.at_us)),
            EventKind::NodeRecover { node } => {
                entries.push(instant("recover", node, event.at_us));
            }
            // version-chain GC sweeps have no span; show them as
            // instants on the emitting track
            EventKind::VersionGc {
                reclaimed,
                retained,
            } => {
                entries.push(format!(
                    "{{\"name\":\"version gc\",\"cat\":\"gc\",\"ph\":\"i\",\"s\":\"p\",\
                     \"ts\":{},\"pid\":{},\"tid\":1,\
                     \"args\":{{\"reclaimed\":{reclaimed},\"retained\":{retained}}}}}",
                    event.at_us,
                    pid(event.node)
                ));
            }
            _ => {}
        }
    }

    for flow in &forest.flows {
        let name = escape_json_str(&format!("msg {}", flow.kind));
        let from_pid = pid(Some(flow.from));
        let to_pid = pid(Some(flow.to));
        // thin slices anchor the arrow endpoints on both tracks
        entries.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"net\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\
             \"pid\":{from_pid},\"tid\":1}}",
            flow.send_us
        ));
        entries.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"net\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\
             \"pid\":{to_pid},\"tid\":1}}",
            flow.recv_us
        ));
        // recv_idx is unique per flow, so it doubles as the arrow id
        entries.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"net\",\"ph\":\"s\",\"id\":{},\"ts\":{},\
             \"pid\":{from_pid},\"tid\":1}}",
            flow.recv_idx, flow.send_us
        ));
        entries.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"net\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\
             \"ts\":{},\"pid\":{to_pid},\"tid\":1}}",
            flow.recv_idx, flow.recv_us
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n]}\n");
    out
}

fn pid(node: Option<NodeId>) -> u64 {
    node.map_or(0, |n| u64::from(n.as_raw()) + 1)
}

fn instant(name: &str, node: NodeId, at_us: u64) -> String {
    format!(
        "{{\"name\":\"{name}\",\"cat\":\"node\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{at_us},\
         \"pid\":{},\"tid\":1}}",
        pid(Some(node))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MsgKind;
    use chroma_base::ActionId;

    #[test]
    fn export_has_node_tracks_and_flow_arrows() {
        let n1 = NodeId::from_raw(1);
        let n2 = NodeId::from_raw(2);
        let with_corr = |mut e: Event, corr: u64| {
            e.corr = Some(corr);
            e
        };
        let events = vec![
            Event::at(
                0,
                EventKind::ActionBegin {
                    action: ActionId::from_raw(1),
                    parent: None,
                    colours: 1,
                },
            ),
            with_corr(
                Event::at(
                    5,
                    EventKind::MsgSend {
                        from: n1,
                        to: n2,
                        kind: MsgKind::Prepare,
                    },
                ),
                1,
            ),
            with_corr(
                Event::at(
                    9,
                    EventKind::MsgDeliver {
                        from: n1,
                        to: n2,
                        kind: MsgKind::Prepare,
                    },
                ),
                1,
            ),
            Event::at(12, EventKind::NodeCrash { node: n2 }),
            Event::at(
                20,
                EventKind::ActionCommit {
                    action: ActionId::from_raw(1),
                },
            ),
        ];
        let json = chrome_trace(&events);
        // one track per node plus the local track
        assert!(json.contains("\"name\":\"node N1\""), "{json}");
        assert!(json.contains("\"name\":\"node N2\""), "{json}");
        assert!(json.contains("\"name\":\"local\""), "{json}");
        // the send/deliver pair became a flow arrow
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1, "{json}");
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1, "{json}");
        // the crash is an instant on N2's track
        assert!(json.contains("\"name\":\"crash\""), "{json}");
        // the action span exported as a complete slice
        assert!(json.contains("\"cat\":\"action\""), "{json}");
    }

    #[test]
    fn export_has_snapshot_slices_and_gc_instants() {
        use chroma_base::{Colour, ObjectId};
        let a = ActionId::from_raw(9);
        let events = vec![
            Event::at(
                0,
                EventKind::ActionBegin {
                    action: a,
                    parent: None,
                    colours: 0,
                },
            ),
            Event::at(
                2,
                EventKind::SnapshotOpen {
                    action: a,
                    colour: Colour::from_index(0),
                    stamp: 3,
                },
            ),
            Event::at(
                5,
                EventKind::SnapshotRead {
                    action: a,
                    object: ObjectId::from_raw(7),
                    colour: Colour::from_index(0),
                    stamp: 3,
                },
            ),
            Event::at(
                8,
                EventKind::VersionGc {
                    reclaimed: 4,
                    retained: 2,
                },
            ),
            Event::at(10, EventKind::ActionCommit { action: a }),
        ];
        let json = chrome_trace(&events);
        // the snapshot scope exported as a categorized slice
        assert!(json.contains("\"cat\":\"snapshot\""), "{json}");
        assert!(json.contains(&format!("snapshot {a}")), "{json}");
        // the GC sweep is an instant carrying its counters
        assert!(json.contains("\"name\":\"version gc\""), "{json}");
        assert!(
            json.contains("\"args\":{\"reclaimed\":4,\"retained\":2}"),
            "{json}"
        );
    }
}
