//! Merging per-process traces into one auditable stream.
//!
//! A real (`chroma-node`) deployment writes one Lamport-clocked JSONL
//! trace per process. The offline [`TraceAuditor`](crate::TraceAuditor)
//! wants a single stream in an order consistent with causality — which
//! the per-node Lamport clocks provide: a delivery's clock is forced
//! past the matching send's, so sorting by `(lc, node, source)` puts
//! every send before its receives and is stable for concurrent events.
//!
//! Parsing here is **lenient** where [`Event::from_json_line`] is
//! strict: a `kill -9` mid-write can leave a torn final line in a
//! process's trace, and that must not make the whole cluster's history
//! unauditable. Malformed lines are skipped and counted, never
//! silently absorbed — the count is reported so an unexpected number
//! of skips is visible.

use std::io::{self, BufRead};
use std::path::Path;

use crate::event::Event;

/// The result of merging trace files.
#[derive(Debug)]
pub struct MergeOutcome {
    /// All parsed events, in causal `(lc, node, source)` order.
    pub events: Vec<Event>,
    /// Lines that failed to parse (torn tails, junk) and were skipped.
    pub skipped: usize,
    /// Lines parsed, per input file (same order as the input paths).
    pub per_file: Vec<usize>,
}

/// Merges per-process JSONL trace files into one causally ordered
/// stream. See the [module docs](self) for ordering and leniency.
///
/// # Errors
///
/// I/O failures opening or reading any input file. Malformed *lines*
/// are not errors; they are skipped and counted.
pub fn merge_trace_files(paths: &[impl AsRef<Path>]) -> io::Result<MergeOutcome> {
    let mut tagged: Vec<(usize, Event)> = Vec::new();
    let mut skipped = 0;
    let mut per_file = Vec::with_capacity(paths.len());
    for (source, path) in paths.iter().enumerate() {
        let file = std::fs::File::open(path.as_ref())?;
        let mut parsed = 0;
        for line in io::BufReader::new(file).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match Event::from_json_line(&line) {
                Ok(event) => {
                    parsed += 1;
                    tagged.push((source, event));
                }
                Err(_) => skipped += 1,
            }
        }
        per_file.push(parsed);
    }
    merge_sort(&mut tagged);
    Ok(MergeOutcome {
        events: tagged.into_iter().map(|(_, e)| e).collect(),
        skipped,
        per_file,
    })
}

/// Merges already-parsed per-process event streams (each tagged with a
/// source index) into causal order — the in-memory core of
/// [`merge_trace_files`], usable by tests that never touch disk.
pub fn merge_events(inputs: Vec<Vec<Event>>) -> Vec<Event> {
    let mut tagged: Vec<(usize, Event)> = inputs
        .into_iter()
        .enumerate()
        .flat_map(|(source, events)| events.into_iter().map(move |e| (source, e)))
        .collect();
    merge_sort(&mut tagged);
    tagged.into_iter().map(|(_, e)| e).collect()
}

fn merge_sort(tagged: &mut [(usize, Event)]) {
    // stable: within one (lc, node) the source file's own order — which
    // is the emitting process's real order — is preserved
    tagged.sort_by_key(|(source, event)| {
        (
            event.lc,
            event.node.map_or(u32::MAX, chroma_base::NodeId::as_raw),
            *source,
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use chroma_base::NodeId;

    fn ev(node: u32, lc: u64) -> Event {
        let node = NodeId::from_raw(node);
        let mut event = Event::at(12, EventKind::NodeRecover { node });
        event.lc = lc;
        event
    }

    #[test]
    fn merge_orders_by_clock_then_node() {
        let merged = merge_events(vec![vec![ev(2, 5), ev(2, 9)], vec![ev(1, 5), ev(1, 7)]]);
        let order: Vec<(u64, u32)> = merged
            .iter()
            .map(|e| (e.lc, e.node.unwrap().as_raw()))
            .collect();
        assert_eq!(order, vec![(5, 1), (5, 2), (7, 1), (9, 2)]);
    }

    #[test]
    fn merge_files_is_lenient_about_torn_tails() {
        let dir = std::env::temp_dir().join(format!("chroma-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        std::fs::write(
            &a,
            format!("{}\n{{\"at_us\":12,\"ev\":\"no", ev(1, 1).to_json_line()),
        )
        .unwrap();
        std::fs::write(&b, format!("{}\n\n", ev(2, 2).to_json_line())).unwrap();
        let outcome = merge_trace_files(&[&a, &b]).unwrap();
        assert_eq!(outcome.events.len(), 2);
        assert_eq!(outcome.skipped, 1, "the torn tail is counted, not fatal");
        assert_eq!(outcome.per_file, vec![1, 1]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
