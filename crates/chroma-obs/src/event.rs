//! The typed event vocabulary and its JSONL wire form.
//!
//! Every record is one line of flat JSON — no nesting, and only the
//! two escapes (`\\` and `\"`) a string field can need — so traces
//! stream through line-oriented tools and a corrupted line is always
//! a hard parse error, never a silent skip.
//!
//! Besides the payload, every event carries causal context: the node
//! it happened on (`node`), a per-node Lamport clock (`lc`, 0 when
//! untraced), and for network events a correlation id (`corr`) that
//! pairs each delivery with the send that caused it even when the
//! network duplicates or drops messages.

use std::fmt;

use chroma_base::{ActionId, Colour, LockMode, NodeId, ObjectId, MAX_LIVE_COLOURS};

/// The network message classes the simulator traces.
///
/// Mirrors `chroma-dist`'s wire vocabulary without depending on it
/// (the dependency points the other way).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum MsgKind {
    Prepare,
    VoteYes,
    VoteNo,
    Decision,
    Ack,
    DecisionQuery,
    RpcRequest,
    RpcReply,
    ReplicaState,
    ReplicaNone,
    ReplicaPull,
}

impl MsgKind {
    /// Every kind, in wire-tag order.
    pub const ALL: [MsgKind; 11] = [
        MsgKind::Prepare,
        MsgKind::VoteYes,
        MsgKind::VoteNo,
        MsgKind::Decision,
        MsgKind::Ack,
        MsgKind::DecisionQuery,
        MsgKind::RpcRequest,
        MsgKind::RpcReply,
        MsgKind::ReplicaState,
        MsgKind::ReplicaNone,
        MsgKind::ReplicaPull,
    ];

    /// The stable wire tag.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            MsgKind::Prepare => "prepare",
            MsgKind::VoteYes => "vote_yes",
            MsgKind::VoteNo => "vote_no",
            MsgKind::Decision => "decision",
            MsgKind::Ack => "ack",
            MsgKind::DecisionQuery => "decision_query",
            MsgKind::RpcRequest => "rpc_request",
            MsgKind::RpcReply => "rpc_reply",
            MsgKind::ReplicaState => "replica_state",
            MsgKind::ReplicaNone => "replica_none",
            MsgKind::ReplicaPull => "replica_pull",
        }
    }

    fn parse(tag: &str) -> Option<MsgKind> {
        MsgKind::ALL.iter().copied().find(|k| k.name() == tag)
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The invariant a streaming [`watchdog`](crate::Watchdog) violation
/// reports, mirroring the offline auditor's online-checkable subset
/// (R1–R4, R9, R10).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WatchdogRule {
    /// R1: a lock was granted to an action that already shrank
    /// (released or inherited away a lock, or terminated).
    LockAfterShrink,
    /// R2: a commit-time inheritance moved a lock the source never
    /// held.
    InheritWithoutLock,
    /// R2: a lock was inherited by something other than the closest
    /// ancestor possessing the colour.
    BadInheritTarget,
    /// R2: a release for a lock the action never held.
    ReleaseWithoutLock,
    /// R3: a before-image was recorded without a write-permitting lock.
    WriteWithoutWriteLock,
    /// R4: a commit decision without yes-votes from every participant.
    CommitWithoutQuorum,
    /// R4: a commit decision despite a recorded no-vote.
    CommitDespiteNoVote,
    /// R4: conflicting decisions recorded for one transaction.
    DivergentDecision,
    /// R9: a group fsync declared a batch count that does not match
    /// the appends since the previous group fsync.
    GroupFsyncCoverage,
    /// R9: replay batches did not equal group-fsynced-not-checkpointed.
    ReplayMarkMismatch,
    /// R10: a declared read-only snapshot action appeared in lock
    /// traffic.
    SnapshotReaderLocks,
    /// R10: a snapshot read served a version older than the newest
    /// visible at the snapshot's captured stamps.
    SnapshotReadNotNewest,
    /// R11: a segment was garbage-collected above the checkpoint
    /// watermark — its batches were never folded into the object
    /// store.
    GcUncheckpointedSegment,
    /// R11: recovery replayed a batch count that does not match the
    /// manifest's live suffix (sealed segments + active tail).
    ReplayManifestMismatch,
}

impl WatchdogRule {
    /// Every rule, in wire-tag order.
    pub const ALL: [WatchdogRule; 14] = [
        WatchdogRule::LockAfterShrink,
        WatchdogRule::InheritWithoutLock,
        WatchdogRule::BadInheritTarget,
        WatchdogRule::ReleaseWithoutLock,
        WatchdogRule::WriteWithoutWriteLock,
        WatchdogRule::CommitWithoutQuorum,
        WatchdogRule::CommitDespiteNoVote,
        WatchdogRule::DivergentDecision,
        WatchdogRule::GroupFsyncCoverage,
        WatchdogRule::ReplayMarkMismatch,
        WatchdogRule::SnapshotReaderLocks,
        WatchdogRule::SnapshotReadNotNewest,
        WatchdogRule::GcUncheckpointedSegment,
        WatchdogRule::ReplayManifestMismatch,
    ];

    /// The stable wire tag.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            WatchdogRule::LockAfterShrink => "lock_after_shrink",
            WatchdogRule::InheritWithoutLock => "inherit_without_lock",
            WatchdogRule::BadInheritTarget => "bad_inherit_target",
            WatchdogRule::ReleaseWithoutLock => "release_without_lock",
            WatchdogRule::WriteWithoutWriteLock => "write_without_write_lock",
            WatchdogRule::CommitWithoutQuorum => "commit_without_quorum",
            WatchdogRule::CommitDespiteNoVote => "commit_despite_no_vote",
            WatchdogRule::DivergentDecision => "divergent_decision",
            WatchdogRule::GroupFsyncCoverage => "group_fsync_coverage",
            WatchdogRule::ReplayMarkMismatch => "replay_mark_mismatch",
            WatchdogRule::SnapshotReaderLocks => "snapshot_reader_locks",
            WatchdogRule::SnapshotReadNotNewest => "snapshot_read_not_newest",
            WatchdogRule::GcUncheckpointedSegment => "gc_uncheckpointed_segment",
            WatchdogRule::ReplayManifestMismatch => "replay_manifest_mismatch",
        }
    }

    fn parse(tag: &str) -> Option<WatchdogRule> {
        WatchdogRule::ALL.iter().copied().find(|r| r.name() == tag)
    }
}

impl fmt::Display for WatchdogRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened, strongly typed. See [`Event`] for the timestamped
/// record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// An action started (top-level when `parent` is `None`).
    ActionBegin {
        /// The new action.
        action: ActionId,
        /// Its enclosing action, if nested.
        parent: Option<ActionId>,
        /// Bitmask of the colours the action runs in
        /// (bit *i* = colour index *i*).
        colours: u64,
    },
    /// An action committed.
    ActionCommit {
        /// The committing action.
        action: ActionId,
    },
    /// An action aborted (explicitly or by cascade).
    ActionAbort {
        /// The aborting action.
        action: ActionId,
    },
    /// An action asked the lock table for a lock.
    LockRequest {
        /// The requesting action.
        action: ActionId,
        /// The object to lock.
        object: ObjectId,
        /// The colour the lock is requested in.
        colour: Colour,
        /// The requested mode.
        mode: LockMode,
    },
    /// A lock request succeeded (fresh grant, re-grant or upgrade).
    LockGrant {
        /// The holding action.
        action: ActionId,
        /// The locked object.
        object: ObjectId,
        /// The colour the lock is held in.
        colour: Colour,
        /// The granted mode.
        mode: LockMode,
    },
    /// A lock request was refused or had to wait.
    LockConflict {
        /// The blocked action.
        action: ActionId,
        /// The contended object.
        object: ObjectId,
        /// The colour requested.
        colour: Colour,
        /// The mode requested.
        mode: LockMode,
    },
    /// At commit, a lock moved from an action to an ancestor that also
    /// holds the colour (the Moss inheritance rule).
    LockInherit {
        /// The committing (shrinking) action.
        from: ActionId,
        /// The inheriting ancestor.
        to: ActionId,
        /// The object whose lock moved.
        object: ObjectId,
        /// The colour concerned.
        colour: Colour,
    },
    /// A lock was released outright.
    LockRelease {
        /// The releasing action.
        action: ActionId,
        /// The unlocked object.
        object: ObjectId,
        /// The colour released.
        colour: Colour,
    },
    /// A before-image was recorded prior to a write.
    UndoRecord {
        /// The writing action.
        action: ActionId,
        /// The object about to change.
        object: ObjectId,
        /// The colour of the write.
        colour: Colour,
    },
    /// Records were appended to a durable log.
    WalAppend {
        /// How many records were appended.
        records: u64,
    },
    /// An intentions-list batch was installed durably.
    WalFlush {
        /// How many objects the batch installed.
        objects: u64,
    },
    /// A participant force-logged the prepared state of a transaction.
    TpcPrepare {
        /// The participant.
        node: NodeId,
        /// The transaction.
        txn: u64,
    },
    /// A participant voted.
    TpcVote {
        /// The voting participant.
        node: NodeId,
        /// The transaction.
        txn: u64,
        /// `true` = yes (prepared), `false` = no (veto).
        yes: bool,
    },
    /// The coordinator reached a decision.
    TpcDecide {
        /// The coordinator.
        node: NodeId,
        /// The transaction.
        txn: u64,
        /// `true` = commit, `false` = abort.
        commit: bool,
        /// How many participants the transaction had.
        participants: u64,
    },
    /// A participant learned and applied the decision.
    TpcResolve {
        /// The resolving participant.
        node: NodeId,
        /// The transaction.
        txn: u64,
        /// The decision it applied.
        commit: bool,
    },
    /// A node fail-silently crashed.
    NodeCrash {
        /// The crashed node.
        node: NodeId,
    },
    /// A node recovered from stable storage.
    NodeRecover {
        /// The recovering node.
        node: NodeId,
    },
    /// A message entered the network.
    MsgSend {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message class.
        kind: MsgKind,
    },
    /// The network dropped a message (loss, partition, or dead target).
    MsgDrop {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message class.
        kind: MsgKind,
    },
    /// The network duplicated a message.
    MsgDup {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message class.
        kind: MsgKind,
    },
    /// A message reached a live node.
    MsgDeliver {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message class.
        kind: MsgKind,
    },
    /// Records were appended (and fsynced) to the on-disk intentions
    /// log.
    DiskAppend {
        /// How many records the batch appended (intents + commit).
        records: u64,
        /// Total bytes written, including length framing.
        bytes: u64,
    },
    /// A committed batch was installed into per-object files and the
    /// intentions log was truncated.
    DiskCheckpoint {
        /// How many objects the batch installed.
        objects: u64,
    },
    /// Opening the store replayed committed batches from the
    /// intentions log (crash recovery).
    DiskReplay {
        /// How many committed batches were replayed.
        batches: u64,
        /// How many object installs the replay performed.
        objects: u64,
    },
    /// A leader flushed a whole group of pending batches with one
    /// intents-fsync and one marker-fsync (group commit). Every batch
    /// in the group keeps its own commit marker; this event records
    /// the shared durability point that covered them all.
    DiskGroupCommit {
        /// How many batches the group contained.
        batches: u64,
        /// Total records appended for the group (intents + markers).
        records: u64,
        /// Total bytes written, including length framing.
        bytes: u64,
    },
    /// A replicated write started fanning out to the available
    /// members of a replica group.
    ReplicaWrite {
        /// The replicated object.
        object: ObjectId,
        /// The version this write will install.
        version: u64,
        /// How many members the write targets.
        fanout: u64,
    },
    /// A member durably installed a version of a replicated object
    /// (the per-replica version bump).
    ReplicaInstall {
        /// The installing member.
        node: NodeId,
        /// The replicated object.
        object: ObjectId,
        /// The version installed.
        version: u64,
    },
    /// A read was served from a member's copy of a replicated object.
    ReplicaRead {
        /// The serving member.
        node: NodeId,
        /// The replicated object.
        object: ObjectId,
        /// The version served.
        version: u64,
        /// `true` if the serving copy was marked stale (catching up) —
        /// correct implementations never emit this; the auditor flags
        /// it.
        stale: bool,
    },
    /// A recovering member began catching its copy up from its peers.
    CatchupBegin {
        /// The recovering member.
        node: NodeId,
        /// The object being caught up.
        object: ObjectId,
    },
    /// A recovering member finished catch-up and rejoined the group.
    CatchupEnd {
        /// The recovered member.
        node: NodeId,
        /// The object caught up.
        object: ObjectId,
        /// The member's version at rejoin.
        version: u64,
    },
    /// A declared read-only action captured one colour's published
    /// commit frontier at open. Emitted once per colour with a
    /// non-zero frontier (or once with colour 0 / stamp 0 when nothing
    /// has committed yet), before any read by the action.
    SnapshotOpen {
        /// The read-only action.
        action: ActionId,
        /// The colour whose frontier was captured.
        colour: Colour,
        /// The captured stamp: the snapshot sees this colour's
        /// versions with stamps `<=` it.
        stamp: u64,
    },
    /// A snapshot read was served from a version chain (or from stable
    /// storage, reported as the stamp-0 base version).
    SnapshotRead {
        /// The reading read-only action.
        action: ActionId,
        /// The object read.
        object: ObjectId,
        /// The served version's colour (colour 0 for base versions).
        colour: Colour,
        /// The served version's commit stamp (0 = base version).
        stamp: u64,
    },
    /// An outermost-coloured commit appended a new version to an
    /// object's chain, just before publishing the colour's frontier.
    VersionPublish {
        /// The object whose chain grew.
        object: ObjectId,
        /// The committing colour.
        colour: Colour,
        /// The version's commit stamp.
        stamp: u64,
    },
    /// A version-chain GC sweep reclaimed versions no live snapshot
    /// can reach.
    VersionGc {
        /// Versions dropped by the sweep.
        reclaimed: u64,
        /// Versions still held after the sweep.
        retained: u64,
    },
    /// The streaming watchdog detected a violated invariant while the
    /// system was running (the online counterpart of an offline
    /// [`Violation`](crate::Violation)).
    WatchdogViolation {
        /// Which online rule fired.
        rule: WatchdogRule,
        /// The implicated action (`0` when the rule has none).
        action: ActionId,
        /// The implicated object (`0` when the rule has none).
        object: ObjectId,
        /// Rule-dependent extra context — a transaction id for R4, a
        /// served stamp for R10, a batch count for R9; `0` otherwise.
        aux: u64,
    },
    /// A periodic gauge sample: the live occupancy of the system's
    /// bounded structures, published so an operator (or `chroma-trace
    /// watch`) can follow a run without stopping it.
    MetricsSnapshot {
        /// Granted lock entries across all shards.
        lock_entries: u64,
        /// Actions currently parked in a blocking lock wait.
        lock_waiters: u64,
        /// Batches sitting in the group-commit queue.
        group_queue: u64,
        /// Versions held across all version chains.
        versions: u64,
        /// Stamped commits since the last automatic GC sweep.
        gc_backlog: u64,
        /// Open read-only snapshot actions.
        snapshots: u64,
        /// Actions begun and not yet terminated.
        live_actions: u64,
        /// Batches committed to the segmented intentions log but not
        /// yet folded behind the checkpoint watermark (the recovery
        /// replay debt). Absent in traces from before segmented logs;
        /// parsed as 0.
        ckpt_backlog: u64,
    },
    /// The active intentions-log segment was sealed: a fresh segment
    /// took over appends and the manifest committed to it.
    SegmentSeal {
        /// The sealed segment's sequence number.
        segment: u64,
        /// Batches committed into the sealed segment.
        batches: u64,
        /// Record bytes the sealed segment holds (past the magic).
        bytes: u64,
    },
    /// The checkpointer started folding fully-committed sealed
    /// segments into the object store.
    CheckpointBegin {
        /// Sealed segments in this fold.
        segments: u64,
        /// Committed batches the fold covers.
        batches: u64,
    },
    /// The checkpointer committed a fold: the manifest no longer lists
    /// the folded segments and the watermark advanced.
    CheckpointEnd {
        /// Highest folded segment sequence (the new watermark).
        upto: u64,
        /// Committed batches folded behind the watermark.
        batches: u64,
        /// Object states installed by the fold.
        objects: u64,
    },
    /// A folded segment's file was garbage-collected (always behind
    /// the checkpoint watermark — the auditor's R11 checks this).
    SegmentGc {
        /// The deleted segment's sequence number.
        segment: u64,
        /// Record bytes reclaimed.
        bytes: u64,
    },
}

/// Count of [`EventKind`] variants; sizes the per-kind counter array.
pub(crate) const KIND_COUNT: usize = 40;

/// The stable tag of every kind, indexed by [`EventKind::index`].
pub(crate) const KIND_NAMES: [&str; KIND_COUNT] = [
    "action_begin",
    "action_commit",
    "action_abort",
    "lock_request",
    "lock_grant",
    "lock_conflict",
    "lock_inherit",
    "lock_release",
    "undo_record",
    "wal_append",
    "wal_flush",
    "tpc_prepare",
    "tpc_vote",
    "tpc_decide",
    "tpc_resolve",
    "node_crash",
    "node_recover",
    "msg_send",
    "msg_drop",
    "msg_dup",
    "msg_deliver",
    "disk_append",
    "disk_checkpoint",
    "disk_replay",
    "replica_write",
    "replica_install",
    "replica_read",
    "catchup_begin",
    "catchup_end",
    "disk_group_commit",
    "snapshot_open",
    "snapshot_read",
    "version_publish",
    "version_gc",
    "watchdog_violation",
    "metrics_snapshot",
    "segment_seal",
    "checkpoint_begin",
    "checkpoint_end",
    "segment_gc",
];

impl EventKind {
    /// Dense index of this kind (for counter arrays).
    #[must_use]
    pub const fn index(&self) -> usize {
        match self {
            EventKind::ActionBegin { .. } => 0,
            EventKind::ActionCommit { .. } => 1,
            EventKind::ActionAbort { .. } => 2,
            EventKind::LockRequest { .. } => 3,
            EventKind::LockGrant { .. } => 4,
            EventKind::LockConflict { .. } => 5,
            EventKind::LockInherit { .. } => 6,
            EventKind::LockRelease { .. } => 7,
            EventKind::UndoRecord { .. } => 8,
            EventKind::WalAppend { .. } => 9,
            EventKind::WalFlush { .. } => 10,
            EventKind::TpcPrepare { .. } => 11,
            EventKind::TpcVote { .. } => 12,
            EventKind::TpcDecide { .. } => 13,
            EventKind::TpcResolve { .. } => 14,
            EventKind::NodeCrash { .. } => 15,
            EventKind::NodeRecover { .. } => 16,
            EventKind::MsgSend { .. } => 17,
            EventKind::MsgDrop { .. } => 18,
            EventKind::MsgDup { .. } => 19,
            EventKind::MsgDeliver { .. } => 20,
            EventKind::DiskAppend { .. } => 21,
            EventKind::DiskCheckpoint { .. } => 22,
            EventKind::DiskReplay { .. } => 23,
            EventKind::ReplicaWrite { .. } => 24,
            EventKind::ReplicaInstall { .. } => 25,
            EventKind::ReplicaRead { .. } => 26,
            EventKind::CatchupBegin { .. } => 27,
            EventKind::CatchupEnd { .. } => 28,
            EventKind::DiskGroupCommit { .. } => 29,
            EventKind::SnapshotOpen { .. } => 30,
            EventKind::SnapshotRead { .. } => 31,
            EventKind::VersionPublish { .. } => 32,
            EventKind::VersionGc { .. } => 33,
            EventKind::WatchdogViolation { .. } => 34,
            EventKind::MetricsSnapshot { .. } => 35,
            EventKind::SegmentSeal { .. } => 36,
            EventKind::CheckpointBegin { .. } => 37,
            EventKind::CheckpointEnd { .. } => 38,
            EventKind::SegmentGc { .. } => 39,
        }
    }

    /// The stable snake_case tag (the `ev` field on the wire).
    #[must_use]
    pub const fn name(&self) -> &'static str {
        KIND_NAMES[self.index()]
    }

    /// The node this kind is intrinsically *about*, when the payload
    /// already names one: 2PC and replica events carry the acting
    /// participant, network events are attributed to the sender
    /// (delivery to the receiver). Kinds whose payload has no node
    /// return `None` and rely on the emitting handle's binding.
    ///
    /// The wire form never writes a separate top-level `node` field
    /// for these kinds — doing so would duplicate the payload field.
    #[must_use]
    pub const fn intrinsic_node(&self) -> Option<NodeId> {
        match self {
            EventKind::TpcPrepare { node, .. }
            | EventKind::TpcVote { node, .. }
            | EventKind::TpcDecide { node, .. }
            | EventKind::TpcResolve { node, .. }
            | EventKind::NodeCrash { node }
            | EventKind::NodeRecover { node }
            | EventKind::ReplicaInstall { node, .. }
            | EventKind::ReplicaRead { node, .. }
            | EventKind::CatchupBegin { node, .. }
            | EventKind::CatchupEnd { node, .. } => Some(*node),
            EventKind::MsgSend { from, .. }
            | EventKind::MsgDrop { from, .. }
            | EventKind::MsgDup { from, .. } => Some(*from),
            EventKind::MsgDeliver { to, .. } => Some(*to),
            _ => None,
        }
    }
}

/// One timestamped observation.
///
/// `at_us` is wall-clock microseconds for live runtimes and simulated
/// microseconds inside `chroma-dist`'s deterministic simulator (the
/// simulator drives the bus clock).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Microseconds since the bus's epoch (wall or simulated).
    pub at_us: u64,
    /// The node the event happened on: the kind's intrinsic node when
    /// its payload names one, otherwise the emitting handle's bound
    /// node. `None` for unbound local emissions.
    pub node: Option<NodeId>,
    /// Lamport clock at the emitting node, `> 0` when stamped. A
    /// delivery's clock is merged with (forced past) the matching
    /// send's, so `lc` orders events causally across nodes. `0` means
    /// the event predates causal tracing or was emitted node-less.
    pub lc: u64,
    /// Correlation id pairing `msg_send` with the `msg_deliver` /
    /// `msg_drop` / `msg_dup` events it caused. Duplicated deliveries
    /// share the original send's id.
    pub corr: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// An event with no causal context beyond the kind's intrinsic
    /// node — the shape every pre-causality emitter produced.
    #[must_use]
    pub fn at(at_us: u64, kind: EventKind) -> Event {
        Event {
            at_us,
            node: kind.intrinsic_node(),
            lc: 0,
            corr: None,
            kind,
        }
    }
    /// Serialises to one line of flat JSON (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut s = format!("{{\"at_us\":{},\"ev\":\"{}\"", self.at_us, self.kind.name());
        let num = |s: &mut String, key: &str, v: u64| {
            s.push_str(&format!(",\"{key}\":{v}"));
        };
        match self.kind {
            EventKind::ActionBegin {
                action,
                parent,
                colours,
            } => {
                num(&mut s, "action", action.as_raw());
                if let Some(p) = parent {
                    num(&mut s, "parent", p.as_raw());
                }
                num(&mut s, "colours", colours);
            }
            EventKind::ActionCommit { action } | EventKind::ActionAbort { action } => {
                num(&mut s, "action", action.as_raw());
            }
            EventKind::LockRequest {
                action,
                object,
                colour,
                mode,
            }
            | EventKind::LockGrant {
                action,
                object,
                colour,
                mode,
            }
            | EventKind::LockConflict {
                action,
                object,
                colour,
                mode,
            } => {
                num(&mut s, "action", action.as_raw());
                num(&mut s, "object", object.as_raw());
                num(&mut s, "colour", colour.index() as u64);
                s.push_str(&format!(",\"mode\":\"{mode}\""));
            }
            EventKind::LockInherit {
                from,
                to,
                object,
                colour,
            } => {
                num(&mut s, "from", from.as_raw());
                num(&mut s, "to", to.as_raw());
                num(&mut s, "object", object.as_raw());
                num(&mut s, "colour", colour.index() as u64);
            }
            EventKind::LockRelease {
                action,
                object,
                colour,
            }
            | EventKind::UndoRecord {
                action,
                object,
                colour,
            } => {
                num(&mut s, "action", action.as_raw());
                num(&mut s, "object", object.as_raw());
                num(&mut s, "colour", colour.index() as u64);
            }
            EventKind::WalAppend { records } => num(&mut s, "records", records),
            EventKind::WalFlush { objects } => num(&mut s, "objects", objects),
            EventKind::TpcPrepare { node, txn } => {
                num(&mut s, "node", u64::from(node.as_raw()));
                num(&mut s, "txn", txn);
            }
            EventKind::TpcVote { node, txn, yes } => {
                num(&mut s, "node", u64::from(node.as_raw()));
                num(&mut s, "txn", txn);
                s.push_str(&format!(",\"yes\":{yes}"));
            }
            EventKind::TpcDecide {
                node,
                txn,
                commit,
                participants,
            } => {
                num(&mut s, "node", u64::from(node.as_raw()));
                num(&mut s, "txn", txn);
                s.push_str(&format!(",\"commit\":{commit}"));
                num(&mut s, "participants", participants);
            }
            EventKind::TpcResolve { node, txn, commit } => {
                num(&mut s, "node", u64::from(node.as_raw()));
                num(&mut s, "txn", txn);
                s.push_str(&format!(",\"commit\":{commit}"));
            }
            EventKind::NodeCrash { node } | EventKind::NodeRecover { node } => {
                num(&mut s, "node", u64::from(node.as_raw()));
            }
            EventKind::MsgSend { from, to, kind }
            | EventKind::MsgDrop { from, to, kind }
            | EventKind::MsgDup { from, to, kind }
            | EventKind::MsgDeliver { from, to, kind } => {
                num(&mut s, "from", u64::from(from.as_raw()));
                num(&mut s, "to", u64::from(to.as_raw()));
                s.push_str(&format!(",\"kind\":\"{kind}\""));
            }
            EventKind::DiskAppend { records, bytes } => {
                num(&mut s, "records", records);
                num(&mut s, "bytes", bytes);
            }
            EventKind::DiskCheckpoint { objects } => num(&mut s, "objects", objects),
            EventKind::DiskReplay { batches, objects } => {
                num(&mut s, "batches", batches);
                num(&mut s, "objects", objects);
            }
            EventKind::DiskGroupCommit {
                batches,
                records,
                bytes,
            } => {
                num(&mut s, "batches", batches);
                num(&mut s, "records", records);
                num(&mut s, "bytes", bytes);
            }
            EventKind::ReplicaWrite {
                object,
                version,
                fanout,
            } => {
                num(&mut s, "object", object.as_raw());
                num(&mut s, "version", version);
                num(&mut s, "fanout", fanout);
            }
            EventKind::ReplicaInstall {
                node,
                object,
                version,
            } => {
                num(&mut s, "node", u64::from(node.as_raw()));
                num(&mut s, "object", object.as_raw());
                num(&mut s, "version", version);
            }
            EventKind::ReplicaRead {
                node,
                object,
                version,
                stale,
            } => {
                num(&mut s, "node", u64::from(node.as_raw()));
                num(&mut s, "object", object.as_raw());
                num(&mut s, "version", version);
                s.push_str(&format!(",\"stale\":{stale}"));
            }
            EventKind::CatchupBegin { node, object } => {
                num(&mut s, "node", u64::from(node.as_raw()));
                num(&mut s, "object", object.as_raw());
            }
            EventKind::CatchupEnd {
                node,
                object,
                version,
            } => {
                num(&mut s, "node", u64::from(node.as_raw()));
                num(&mut s, "object", object.as_raw());
                num(&mut s, "version", version);
            }
            EventKind::SnapshotOpen {
                action,
                colour,
                stamp,
            } => {
                num(&mut s, "action", action.as_raw());
                num(&mut s, "colour", colour.index() as u64);
                num(&mut s, "stamp", stamp);
            }
            EventKind::SnapshotRead {
                action,
                object,
                colour,
                stamp,
            } => {
                num(&mut s, "action", action.as_raw());
                num(&mut s, "object", object.as_raw());
                num(&mut s, "colour", colour.index() as u64);
                num(&mut s, "stamp", stamp);
            }
            EventKind::VersionPublish {
                object,
                colour,
                stamp,
            } => {
                num(&mut s, "object", object.as_raw());
                num(&mut s, "colour", colour.index() as u64);
                num(&mut s, "stamp", stamp);
            }
            EventKind::VersionGc {
                reclaimed,
                retained,
            } => {
                num(&mut s, "reclaimed", reclaimed);
                num(&mut s, "retained", retained);
            }
            EventKind::WatchdogViolation {
                rule,
                action,
                object,
                aux,
            } => {
                s.push_str(&format!(",\"rule\":\"{rule}\""));
                num(&mut s, "action", action.as_raw());
                num(&mut s, "object", object.as_raw());
                num(&mut s, "aux", aux);
            }
            EventKind::MetricsSnapshot {
                lock_entries,
                lock_waiters,
                group_queue,
                versions,
                gc_backlog,
                snapshots,
                live_actions,
                ckpt_backlog,
            } => {
                num(&mut s, "lock_entries", lock_entries);
                num(&mut s, "lock_waiters", lock_waiters);
                num(&mut s, "group_queue", group_queue);
                num(&mut s, "versions", versions);
                num(&mut s, "gc_backlog", gc_backlog);
                num(&mut s, "snapshots", snapshots);
                num(&mut s, "live_actions", live_actions);
                num(&mut s, "ckpt_backlog", ckpt_backlog);
            }
            EventKind::SegmentSeal {
                segment,
                batches,
                bytes,
            } => {
                num(&mut s, "segment", segment);
                num(&mut s, "batches", batches);
                num(&mut s, "bytes", bytes);
            }
            EventKind::CheckpointBegin { segments, batches } => {
                num(&mut s, "segments", segments);
                num(&mut s, "batches", batches);
            }
            EventKind::CheckpointEnd {
                upto,
                batches,
                objects,
            } => {
                num(&mut s, "upto", upto);
                num(&mut s, "batches", batches);
                num(&mut s, "objects", objects);
            }
            EventKind::SegmentGc { segment, bytes } => {
                num(&mut s, "segment", segment);
                num(&mut s, "bytes", bytes);
            }
        }
        if self.lc > 0 {
            num(&mut s, "lc", self.lc);
        }
        if let Some(corr) = self.corr {
            num(&mut s, "corr", corr);
        }
        // A kind with an intrinsic node already wrote it as payload;
        // writing it again would trip the duplicate-field check.
        if self.kind.intrinsic_node().is_none() {
            if let Some(node) = self.node {
                num(&mut s, "node", u64::from(node.as_raw()));
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSONL line back into an event.
    ///
    /// # Errors
    ///
    /// [`TraceParseError`] on any malformed input: bad JSON shape,
    /// unknown tag, missing or mistyped field, out-of-range colour.
    pub fn from_json_line(line: &str) -> Result<Event, TraceParseError> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| -> Result<&JsonValue, TraceParseError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| TraceParseError::new(format!("missing field `{key}`")))
        };
        let get_u64 = |key: &str| -> Result<u64, TraceParseError> {
            match get(key)? {
                JsonValue::Num(n) => Ok(*n),
                other => Err(TraceParseError::new(format!(
                    "field `{key}` should be a number, got {other:?}"
                ))),
            }
        };
        let get_bool = |key: &str| -> Result<bool, TraceParseError> {
            match get(key)? {
                JsonValue::Bool(b) => Ok(*b),
                other => Err(TraceParseError::new(format!(
                    "field `{key}` should be a bool, got {other:?}"
                ))),
            }
        };
        let get_str = |key: &str| -> Result<&str, TraceParseError> {
            match get(key)? {
                JsonValue::Str(s) => Ok(s.as_str()),
                other => Err(TraceParseError::new(format!(
                    "field `{key}` should be a string, got {other:?}"
                ))),
            }
        };
        let action = |key: &str| get_u64(key).map(ActionId::from_raw);
        let object = || get_u64("object").map(ObjectId::from_raw);
        let node = |key: &str| -> Result<NodeId, TraceParseError> {
            let raw = get_u64(key)?;
            u32::try_from(raw)
                .map(NodeId::from_raw)
                .map_err(|_| TraceParseError::new(format!("node id {raw} out of range")))
        };
        let colour = || -> Result<Colour, TraceParseError> {
            let idx = get_u64("colour")? as usize;
            if idx >= MAX_LIVE_COLOURS {
                return Err(TraceParseError::new(format!(
                    "colour index {idx} out of range"
                )));
            }
            Ok(Colour::from_index(idx))
        };
        let mode = || -> Result<LockMode, TraceParseError> {
            match get_str("mode")? {
                "read" => Ok(LockMode::Read),
                "exclusive-read" => Ok(LockMode::ExclusiveRead),
                "write" => Ok(LockMode::Write),
                other => Err(TraceParseError::new(format!("unknown lock mode `{other}`"))),
            }
        };
        let msg_kind = || -> Result<MsgKind, TraceParseError> {
            let tag = get_str("kind")?;
            MsgKind::parse(tag)
                .ok_or_else(|| TraceParseError::new(format!("unknown message kind `{tag}`")))
        };

        let at_us = get_u64("at_us")?;
        let ev = get_str("ev")?;
        let kind = match ev {
            "action_begin" => EventKind::ActionBegin {
                action: action("action")?,
                parent: match fields.iter().find(|(k, _)| k == "parent") {
                    Some((_, JsonValue::Num(n))) => Some(ActionId::from_raw(*n)),
                    Some((_, other)) => {
                        return Err(TraceParseError::new(format!(
                            "field `parent` should be a number, got {other:?}"
                        )))
                    }
                    None => None,
                },
                colours: get_u64("colours")?,
            },
            "action_commit" => EventKind::ActionCommit {
                action: action("action")?,
            },
            "action_abort" => EventKind::ActionAbort {
                action: action("action")?,
            },
            "lock_request" => EventKind::LockRequest {
                action: action("action")?,
                object: object()?,
                colour: colour()?,
                mode: mode()?,
            },
            "lock_grant" => EventKind::LockGrant {
                action: action("action")?,
                object: object()?,
                colour: colour()?,
                mode: mode()?,
            },
            "lock_conflict" => EventKind::LockConflict {
                action: action("action")?,
                object: object()?,
                colour: colour()?,
                mode: mode()?,
            },
            "lock_inherit" => EventKind::LockInherit {
                from: action("from")?,
                to: action("to")?,
                object: object()?,
                colour: colour()?,
            },
            "lock_release" => EventKind::LockRelease {
                action: action("action")?,
                object: object()?,
                colour: colour()?,
            },
            "undo_record" => EventKind::UndoRecord {
                action: action("action")?,
                object: object()?,
                colour: colour()?,
            },
            "wal_append" => EventKind::WalAppend {
                records: get_u64("records")?,
            },
            "wal_flush" => EventKind::WalFlush {
                objects: get_u64("objects")?,
            },
            "tpc_prepare" => EventKind::TpcPrepare {
                node: node("node")?,
                txn: get_u64("txn")?,
            },
            "tpc_vote" => EventKind::TpcVote {
                node: node("node")?,
                txn: get_u64("txn")?,
                yes: get_bool("yes")?,
            },
            "tpc_decide" => EventKind::TpcDecide {
                node: node("node")?,
                txn: get_u64("txn")?,
                commit: get_bool("commit")?,
                participants: get_u64("participants")?,
            },
            "tpc_resolve" => EventKind::TpcResolve {
                node: node("node")?,
                txn: get_u64("txn")?,
                commit: get_bool("commit")?,
            },
            "node_crash" => EventKind::NodeCrash {
                node: node("node")?,
            },
            "node_recover" => EventKind::NodeRecover {
                node: node("node")?,
            },
            "msg_send" => EventKind::MsgSend {
                from: node("from")?,
                to: node("to")?,
                kind: msg_kind()?,
            },
            "msg_drop" => EventKind::MsgDrop {
                from: node("from")?,
                to: node("to")?,
                kind: msg_kind()?,
            },
            "msg_dup" => EventKind::MsgDup {
                from: node("from")?,
                to: node("to")?,
                kind: msg_kind()?,
            },
            "msg_deliver" => EventKind::MsgDeliver {
                from: node("from")?,
                to: node("to")?,
                kind: msg_kind()?,
            },
            "disk_append" => EventKind::DiskAppend {
                records: get_u64("records")?,
                bytes: get_u64("bytes")?,
            },
            "disk_checkpoint" => EventKind::DiskCheckpoint {
                objects: get_u64("objects")?,
            },
            "disk_replay" => EventKind::DiskReplay {
                batches: get_u64("batches")?,
                objects: get_u64("objects")?,
            },
            "disk_group_commit" => EventKind::DiskGroupCommit {
                batches: get_u64("batches")?,
                records: get_u64("records")?,
                bytes: get_u64("bytes")?,
            },
            "replica_write" => EventKind::ReplicaWrite {
                object: object()?,
                version: get_u64("version")?,
                fanout: get_u64("fanout")?,
            },
            "replica_install" => EventKind::ReplicaInstall {
                node: node("node")?,
                object: object()?,
                version: get_u64("version")?,
            },
            "replica_read" => EventKind::ReplicaRead {
                node: node("node")?,
                object: object()?,
                version: get_u64("version")?,
                stale: get_bool("stale")?,
            },
            "catchup_begin" => EventKind::CatchupBegin {
                node: node("node")?,
                object: object()?,
            },
            "catchup_end" => EventKind::CatchupEnd {
                node: node("node")?,
                object: object()?,
                version: get_u64("version")?,
            },
            "snapshot_open" => EventKind::SnapshotOpen {
                action: action("action")?,
                colour: colour()?,
                stamp: get_u64("stamp")?,
            },
            "snapshot_read" => EventKind::SnapshotRead {
                action: action("action")?,
                object: object()?,
                colour: colour()?,
                stamp: get_u64("stamp")?,
            },
            "version_publish" => EventKind::VersionPublish {
                object: object()?,
                colour: colour()?,
                stamp: get_u64("stamp")?,
            },
            "version_gc" => EventKind::VersionGc {
                reclaimed: get_u64("reclaimed")?,
                retained: get_u64("retained")?,
            },
            "watchdog_violation" => EventKind::WatchdogViolation {
                rule: {
                    let tag = get_str("rule")?;
                    WatchdogRule::parse(tag).ok_or_else(|| {
                        TraceParseError::new(format!("unknown watchdog rule `{tag}`"))
                    })?
                },
                action: action("action")?,
                object: object()?,
                aux: get_u64("aux")?,
            },
            "metrics_snapshot" => EventKind::MetricsSnapshot {
                lock_entries: get_u64("lock_entries")?,
                lock_waiters: get_u64("lock_waiters")?,
                group_queue: get_u64("group_queue")?,
                versions: get_u64("versions")?,
                gc_backlog: get_u64("gc_backlog")?,
                snapshots: get_u64("snapshots")?,
                live_actions: get_u64("live_actions")?,
                // Traces from before segmented logs lack the gauge.
                ckpt_backlog: match fields.iter().find(|(k, _)| k == "ckpt_backlog") {
                    Some((_, JsonValue::Num(n))) => *n,
                    Some((_, other)) => {
                        return Err(TraceParseError::new(format!(
                            "field `ckpt_backlog` should be a number, got {other:?}"
                        )))
                    }
                    None => 0,
                },
            },
            "segment_seal" => EventKind::SegmentSeal {
                segment: get_u64("segment")?,
                batches: get_u64("batches")?,
                bytes: get_u64("bytes")?,
            },
            "checkpoint_begin" => EventKind::CheckpointBegin {
                segments: get_u64("segments")?,
                batches: get_u64("batches")?,
            },
            "checkpoint_end" => EventKind::CheckpointEnd {
                upto: get_u64("upto")?,
                batches: get_u64("batches")?,
                objects: get_u64("objects")?,
            },
            "segment_gc" => EventKind::SegmentGc {
                segment: get_u64("segment")?,
                bytes: get_u64("bytes")?,
            },
            other => {
                return Err(TraceParseError::new(format!("unknown event tag `{other}`")));
            }
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, TraceParseError> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, JsonValue::Num(n))) => Ok(Some(*n)),
                Some((_, other)) => Err(TraceParseError::new(format!(
                    "field `{key}` should be a number, got {other:?}"
                ))),
                None => Ok(None),
            }
        };
        let lc = opt_u64("lc")?.unwrap_or(0);
        let corr = opt_u64("corr")?;
        let node =
            match kind.intrinsic_node() {
                Some(n) => Some(n),
                None => match opt_u64("node")? {
                    Some(raw) => Some(u32::try_from(raw).map(NodeId::from_raw).map_err(|_| {
                        TraceParseError::new(format!("node id {raw} out of range"))
                    })?),
                    None => None,
                },
            };
        Ok(Event {
            at_us,
            node,
            lc,
            corr,
            kind,
        })
    }
}

/// A malformed trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number, when parsing a multi-line trace.
    pub line: Option<usize>,
    /// What was wrong.
    pub message: String,
}

impl TraceParseError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        TraceParseError {
            line: None,
            message: message.into(),
        }
    }

    /// Tags the error with a 1-based line number.
    #[must_use]
    pub fn at_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "trace line {n}: {}", self.message),
            None => write!(f, "trace: {}", self.message),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Escapes a string for embedding in a JSON string field: `\` and `"`
/// gain a backslash, matching exactly what the trace parser accepts.
/// Control characters never occur in the vocabulary and are passed
/// through untouched.
#[must_use]
pub fn escape_json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            _ => out.push(ch),
        }
    }
    out
}

#[derive(Debug)]
enum JsonValue {
    Num(u64),
    Bool(bool),
    Str(String),
}

/// Parses exactly one flat JSON object: string keys, and values that
/// are unsigned integers, booleans or escape-free strings. Anything
/// else — nesting, floats, escapes, trailing garbage — is an error,
/// which is what makes corrupted traces detectable.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, TraceParseError> {
    let bytes = line.trim().as_bytes();
    let mut pos = 0usize;
    let err = |msg: &str| TraceParseError::new(msg.to_owned());

    let expect = |bytes: &[u8], pos: &mut usize, ch: u8| -> Result<(), TraceParseError> {
        if bytes.get(*pos) == Some(&ch) {
            *pos += 1;
            Ok(())
        } else {
            Err(err(&format!(
                "expected `{}` at byte {}",
                char::from(ch),
                *pos
            )))
        }
    };
    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, TraceParseError> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(TraceParseError::new(format!(
                "expected string at byte {pos}"
            )));
        }
        *pos += 1;
        let start = *pos;
        // Unescaped strings (the overwhelmingly common case) borrow
        // straight from the line; the buffer only materialises on the
        // first escape.
        let mut unescaped: Option<Vec<u8>> = None;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'"' => {
                    let raw = match unescaped {
                        Some(buf) => buf,
                        None => bytes[start..*pos].to_vec(),
                    };
                    let s = String::from_utf8(raw)
                        .map_err(|_| TraceParseError::new("invalid utf-8 in string"))?;
                    *pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let buf = unescaped.get_or_insert_with(|| bytes[start..*pos].to_vec());
                    match bytes.get(*pos + 1) {
                        Some(&esc @ (b'\\' | b'"')) => {
                            buf.push(esc);
                            *pos += 2;
                        }
                        _ => {
                            return Err(TraceParseError::new(
                                "unsupported escape sequence (only \\\\ and \\\" are allowed)",
                            ))
                        }
                    }
                }
                _ => {
                    if let Some(buf) = unescaped.as_mut() {
                        buf.push(b);
                    }
                    *pos += 1;
                }
            }
        }
        Err(TraceParseError::new("unterminated string"))
    }
    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, TraceParseError> {
        match bytes.get(*pos) {
            Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
            Some(b'0'..=b'9') => {
                let start = *pos;
                while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                    *pos += 1;
                }
                let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are utf-8");
                text.parse::<u64>()
                    .map(JsonValue::Num)
                    .map_err(|_| TraceParseError::new(format!("number `{text}` out of range")))
            }
            _ if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(JsonValue::Bool(true))
            }
            _ if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(JsonValue::Bool(false))
            }
            _ => Err(TraceParseError::new(format!(
                "expected a value at byte {pos}"
            ))),
        }
    }

    if bytes.is_empty() {
        return Err(err("empty line"));
    }
    expect(bytes, &mut pos, b'{')?;
    let mut fields = Vec::new();
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            let key = parse_string(bytes, &mut pos)?;
            expect(bytes, &mut pos, b':')?;
            let value = parse_value(bytes, &mut pos)?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(err(&format!("duplicate field `{key}`")));
            }
            fields.push((key, value));
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err(err(&format!("expected `,` or `}}` at byte {pos}"))),
            }
        }
    }
    if pos != bytes.len() {
        return Err(err(&format!("trailing garbage at byte {pos}")));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> Colour {
        Colour::from_index(i)
    }

    fn sample_events() -> Vec<Event> {
        let a1 = ActionId::from_raw(1);
        let a2 = ActionId::from_raw(2);
        let o = ObjectId::from_raw(7);
        let n1 = NodeId::from_raw(1);
        let n2 = NodeId::from_raw(2);
        let kinds = vec![
            EventKind::ActionBegin {
                action: a1,
                parent: None,
                colours: 0b11,
            },
            EventKind::ActionBegin {
                action: a2,
                parent: Some(a1),
                colours: 0b1,
            },
            EventKind::ActionCommit { action: a2 },
            EventKind::ActionAbort { action: a1 },
            EventKind::LockRequest {
                action: a1,
                object: o,
                colour: c(0),
                mode: LockMode::Read,
            },
            EventKind::LockGrant {
                action: a1,
                object: o,
                colour: c(0),
                mode: LockMode::Write,
            },
            EventKind::LockConflict {
                action: a2,
                object: o,
                colour: c(1),
                mode: LockMode::ExclusiveRead,
            },
            EventKind::LockInherit {
                from: a2,
                to: a1,
                object: o,
                colour: c(0),
            },
            EventKind::LockRelease {
                action: a1,
                object: o,
                colour: c(1),
            },
            EventKind::UndoRecord {
                action: a1,
                object: o,
                colour: c(0),
            },
            EventKind::WalAppend { records: 3 },
            EventKind::WalFlush { objects: 2 },
            EventKind::TpcPrepare { node: n2, txn: 9 },
            EventKind::TpcVote {
                node: n2,
                txn: 9,
                yes: true,
            },
            EventKind::TpcDecide {
                node: n1,
                txn: 9,
                commit: true,
                participants: 2,
            },
            EventKind::TpcResolve {
                node: n2,
                txn: 9,
                commit: true,
            },
            EventKind::NodeCrash { node: n2 },
            EventKind::NodeRecover { node: n2 },
            EventKind::MsgSend {
                from: n1,
                to: n2,
                kind: MsgKind::Prepare,
            },
            EventKind::MsgDrop {
                from: n1,
                to: n2,
                kind: MsgKind::Decision,
            },
            EventKind::MsgDup {
                from: n2,
                to: n1,
                kind: MsgKind::VoteYes,
            },
            EventKind::MsgDeliver {
                from: n2,
                to: n1,
                kind: MsgKind::Ack,
            },
            EventKind::DiskAppend {
                records: 4,
                bytes: 128,
            },
            EventKind::DiskCheckpoint { objects: 3 },
            EventKind::DiskReplay {
                batches: 2,
                objects: 5,
            },
            EventKind::DiskGroupCommit {
                batches: 3,
                records: 9,
                bytes: 256,
            },
            EventKind::ReplicaWrite {
                object: o,
                version: 4,
                fanout: 3,
            },
            EventKind::ReplicaInstall {
                node: n2,
                object: o,
                version: 4,
            },
            EventKind::ReplicaRead {
                node: n1,
                object: o,
                version: 4,
                stale: false,
            },
            EventKind::CatchupBegin {
                node: n2,
                object: o,
            },
            EventKind::CatchupEnd {
                node: n2,
                object: o,
                version: 4,
            },
            EventKind::SnapshotOpen {
                action: a1,
                colour: c(0),
                stamp: 5,
            },
            EventKind::SnapshotRead {
                action: a1,
                object: o,
                colour: c(1),
                stamp: 5,
            },
            EventKind::VersionPublish {
                object: o,
                colour: c(0),
                stamp: 6,
            },
            EventKind::VersionGc {
                reclaimed: 2,
                retained: 5,
            },
            EventKind::WatchdogViolation {
                rule: WatchdogRule::WriteWithoutWriteLock,
                action: a1,
                object: o,
                aux: 0,
            },
            EventKind::MetricsSnapshot {
                lock_entries: 12,
                lock_waiters: 1,
                group_queue: 3,
                versions: 40,
                gc_backlog: 7,
                snapshots: 2,
                live_actions: 5,
                ckpt_backlog: 4,
            },
            EventKind::SegmentSeal {
                segment: 3,
                batches: 12,
                bytes: 4096,
            },
            EventKind::CheckpointBegin {
                segments: 2,
                batches: 20,
            },
            EventKind::CheckpointEnd {
                upto: 3,
                batches: 20,
                objects: 6,
            },
            EventKind::SegmentGc {
                segment: 3,
                bytes: 4096,
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event::at(i as u64 * 10, kind))
            .collect()
    }

    #[test]
    fn every_variant_round_trips_through_jsonl() {
        for event in sample_events() {
            let line = event.to_json_line();
            let back = Event::from_json_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "round-trip of {line}");
        }
    }

    #[test]
    fn sample_events_cover_every_kind() {
        // Adding an `EventKind` without adding it to `sample_events`
        // (and therefore to the round-trip tests above) must fail here.
        let mut covered = [false; KIND_COUNT];
        for event in sample_events() {
            covered[event.kind.index()] = true;
        }
        for (i, seen) in covered.iter().enumerate() {
            assert!(
                seen,
                "kind `{}` (index {i}) has no round-trip sample event",
                KIND_NAMES[i]
            );
        }
    }

    #[test]
    fn causal_context_round_trips() {
        for mut event in sample_events() {
            event.lc = 42;
            if matches!(
                event.kind,
                EventKind::MsgSend { .. }
                    | EventKind::MsgDrop { .. }
                    | EventKind::MsgDup { .. }
                    | EventKind::MsgDeliver { .. }
            ) {
                event.corr = Some(7);
            }
            if event.node.is_none() {
                event.node = Some(NodeId::from_raw(3));
            }
            let line = event.to_json_line();
            let back = Event::from_json_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "round-trip of {line}");
        }
    }

    #[test]
    fn pre_causality_lines_still_parse() {
        // Traces written before node/lc/corr existed must load with
        // the neutral defaults.
        let line = "{\"at_us\":5,\"ev\":\"wal_append\",\"records\":3}";
        let event = Event::from_json_line(line).unwrap();
        assert_eq!(event.node, None);
        assert_eq!(event.lc, 0);
        assert_eq!(event.corr, None);
    }

    #[test]
    fn intrinsic_node_wins_over_handle_binding() {
        // A kind whose payload names a node never writes a separate
        // top-level `node` field (it would be a duplicate), and the
        // parser recovers the context from the payload.
        let event = Event::at(
            1,
            EventKind::TpcPrepare {
                node: NodeId::from_raw(4),
                txn: 9,
            },
        );
        let line = event.to_json_line();
        assert_eq!(line.matches("\"node\"").count(), 1, "{line}");
        let back = Event::from_json_line(&line).unwrap();
        assert_eq!(back.node, Some(NodeId::from_raw(4)));
    }

    #[test]
    fn string_escapes_round_trip() {
        // `\\` and `\"` must survive a string field; anything else is
        // still a hard error.
        let line = "{\"at_us\":1,\"ev\":\"lock_grant\",\"action\":1,\"object\":1,\"colour\":0,\"mode\":\"a\\\\b\\\"c\"}";
        let err = Event::from_json_line(line).unwrap_err();
        assert!(
            err.message.contains("unknown lock mode `a\\b\"c`"),
            "escapes should decode before field validation: {err}"
        );
        let bad = "{\"at_us\":1,\"ev\":\"wal_append\",\"records\":1,\"x\":\"a\\nb\"}";
        let err = Event::from_json_line(bad).unwrap_err();
        assert!(err.message.contains("unsupported escape"), "{err}");
    }

    #[test]
    fn escape_json_str_matches_parser() {
        assert_eq!(escape_json_str("plain"), "plain");
        assert_eq!(escape_json_str("a\\b\"c"), "a\\\\b\\\"c");
    }

    #[test]
    fn kind_names_are_distinct_and_indexed() {
        for (i, event) in sample_events().iter().enumerate() {
            // sample_events covers index 0..KIND_COUNT minus the
            // duplicate ActionBegin at position 1.
            let _ = i;
            assert_eq!(event.kind.name(), KIND_NAMES[event.kind.index()]);
        }
        let mut names = KIND_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KIND_COUNT, "kind tags must be unique");
    }

    #[test]
    fn corrupt_lines_are_rejected() {
        for bad in [
            "",
            "not json",
            "{\"at_us\":1,\"ev\":\"no_such_event\"}",
            "{\"at_us\":1,\"ev\":\"action_commit\"}", // missing action
            "{\"at_us\":1,\"ev\":\"action_commit\",\"action\":true}", // wrong type
            "{\"at_us\":1,\"ev\":\"action_commit\",\"action\":1}garbage",
            "{\"at_us\":1,\"ev\":\"action_commit\",\"action\":1",
            "{\"at_us\":1,\"at_us\":2,\"ev\":\"wal_append\",\"records\":1}",
            "{\"at_us\":1,\"ev\":\"lock_release\",\"action\":1,\"object\":1,\"colour\":9999}",
            "{\"at_us\":1,\"ev\":\"lock_grant\",\"action\":1,\"object\":1,\"colour\":0,\"mode\":\"steal\"}",
            "{\"at_us\":1,\"ev\":\"msg_send\",\"from\":1,\"to\":2,\"kind\":\"pigeon\"}",
            "{\"at_us\":1,\"ev\":\"tpc_prepare\",\"node\":99999999999,\"txn\":1}",
            "{\"at_us\":1,\"ev\":\"disk_append\",\"records\":1}", // missing bytes
            "{\"at_us\":1,\"ev\":\"replica_read\",\"node\":1,\"object\":1,\"version\":1}", // missing stale
            "{\"at_us\":1,\"ev\":\"replica_install\",\"node\":1,\"object\":1,\"version\":true}", // wrong type
            "{\"at_us\":1,\"ev\":\"catchup_end\",\"node\":1,\"object\":1}", // missing version
            "{\"at_us\":1,\"ev\":\"snapshot_open\",\"action\":1,\"colour\":0}", // missing stamp
            "{\"at_us\":1,\"ev\":\"snapshot_read\",\"action\":1,\"object\":1,\"stamp\":2}", // missing colour
            "{\"at_us\":1,\"ev\":\"version_publish\",\"object\":1,\"colour\":9999,\"stamp\":2}", // colour range
            "{\"at_us\":1,\"ev\":\"version_gc\",\"reclaimed\":1}", // missing retained
            "{\"at_us\":1,\"ev\":\"watchdog_violation\",\"rule\":\"made_up\",\"action\":1,\"object\":1,\"aux\":0}", // unknown rule
            "{\"at_us\":1,\"ev\":\"watchdog_violation\",\"action\":1,\"object\":1,\"aux\":0}", // missing rule
            "{\"at_us\":1,\"ev\":\"metrics_snapshot\",\"lock_entries\":1}", // missing gauges
            "{\"at_us\":1,\"ev\":\"segment_seal\",\"segment\":1,\"batches\":2}", // missing bytes
            "{\"at_us\":1,\"ev\":\"checkpoint_begin\",\"segments\":1}", // missing batches
            "{\"at_us\":1,\"ev\":\"checkpoint_end\",\"upto\":1,\"batches\":2}", // missing objects
            "{\"at_us\":1,\"ev\":\"segment_gc\",\"segment\":true,\"bytes\":1}", // wrong type
        ] {
            assert!(
                Event::from_json_line(bad).is_err(),
                "should reject: {bad:?}"
            );
        }
    }

    #[test]
    fn pre_segment_metrics_snapshot_still_parses() {
        // Traces from before the segmented log lack `ckpt_backlog`;
        // they must load with the gauge defaulted to 0.
        let line = "{\"at_us\":5,\"ev\":\"metrics_snapshot\",\"lock_entries\":1,\
                    \"lock_waiters\":0,\"group_queue\":0,\"versions\":2,\
                    \"gc_backlog\":0,\"snapshots\":1,\"live_actions\":3}";
        let event = Event::from_json_line(line).unwrap();
        assert!(matches!(
            event.kind,
            EventKind::MetricsSnapshot {
                ckpt_backlog: 0,
                ..
            }
        ));
    }

    #[test]
    fn parse_error_displays_line_number() {
        let e = TraceParseError::new("boom").at_line(7);
        assert_eq!(e.to_string(), "trace line 7: boom");
    }

    #[test]
    fn msg_kind_tags_round_trip() {
        for kind in MsgKind::ALL {
            assert_eq!(MsgKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(MsgKind::parse("nope"), None);
    }

    #[test]
    fn watchdog_rule_tags_round_trip() {
        for rule in WatchdogRule::ALL {
            assert_eq!(WatchdogRule::parse(rule.name()), Some(rule));
        }
        assert_eq!(WatchdogRule::parse("nope"), None);
        let mut names: Vec<_> = WatchdogRule::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WatchdogRule::ALL.len());
    }
}
