//! Structured tracing, metrics and invariant auditing for chroma.
//!
//! The paper argues fault tolerance by construction: actions obey
//! strict two-phase locking, nested commits pass locks to ancestors by
//! the Moss rules, and distributed commitment never diverges. This
//! crate makes those claims *checkable* on real executions instead of
//! trusted:
//!
//! * [`Event`] is a typed record of one step of the action lifecycle —
//!   begins/commits/aborts, lock traffic, undo logging, WAL activity,
//!   two-phase commit, crashes and network behaviour;
//! * [`EventBus`] collects events from every subsystem, counts them,
//!   feeds latency [`Histogram`]s and fans out to pluggable sinks
//!   ([`MemorySink`] for tests, [`JsonlSink`] for offline analysis);
//! * [`TraceAuditor`] replays a captured event stream and checks the
//!   paper's invariants after the fact: strict 2PL, commit-time lock
//!   inheritance by the closest ancestor holding the colour, no write
//!   without a write lock, 2PC safety, replication monotonicity and —
//!   via per-node Lamport clocks and send/receive correlation ids —
//!   the absence of happens-before inversions (R8);
//! * [`SpanForest`] folds a trace back into action/transaction span
//!   trees, pairs RPC sends with deliveries as [`Flow`]s, and its
//!   critical-path profiler attributes end-to-end commit latency to
//!   lock-wait / fsync / network / 2PC phases per colour;
//! * [`chrome_trace`] exports a trace as Chrome trace-event JSON
//!   (one track per node, flow arrows for RPC pairs) for Perfetto;
//!   the `chroma-trace` binary wraps audit, export and profiling as
//!   a CLI over JSONL trace files;
//! * [`Watchdog`] runs the online half of the auditor: installed on a
//!   bus it re-checks the windowed rule subset (R1–R4, R9, R10)
//!   in-line with bounded memory and raises `watchdog_violation`
//!   events plus a non-fatal callback while the system is running;
//! * [`FlightRecorder`] is an always-on, lock-sharded ring of recent
//!   events that dumps an offline-analyzable JSONL post-mortem on
//!   crash, violation, or demand.
//!
//! Instrumented code holds an [`Obs`] handle — a cheap clone that is a
//! no-op until a bus is installed, so the hot paths pay one branch when
//! tracing is off.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use chroma_base::ActionId;
//! use chroma_obs::{EventBus, EventKind, MemorySink, Obs, TraceAuditor};
//!
//! let bus = Arc::new(EventBus::new());
//! let sink = Arc::new(MemorySink::new(1024));
//! bus.add_sink(sink.clone());
//!
//! let obs = Obs::new(bus.clone());
//! let a = ActionId::from_raw(1);
//! obs.emit(EventKind::ActionBegin { action: a, parent: None, colours: 0b1 });
//! obs.emit(EventKind::ActionCommit { action: a });
//!
//! assert_eq!(bus.counter("action_begin"), 1);
//! let report = TraceAuditor::audit_events(&sink.events());
//! assert!(report.is_clean(), "{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod bus;
mod event;
mod export;
mod merge;
mod metrics;
mod recorder;
mod span;
mod watchdog;

pub use audit::{AuditReport, TraceAuditor, Violation};
pub use bus::{
    AppendJsonlSink, EventBus, EventSink, JsonlSink, MemorySink, Obs, ObsCell, Observable,
};
pub use event::{escape_json_str, Event, EventKind, MsgKind, TraceParseError, WatchdogRule};
pub use export::{chrome_trace, chrome_trace_from};
pub use merge::{merge_events, merge_trace_files, MergeOutcome};
pub use metrics::{Histogram, Snapshot, Summary};
pub use recorder::FlightRecorder;
pub use span::{
    ColourBreakdown, CriticalPathReport, Flow, Outcome, Phase, Span, SpanForest, SpanKind,
    TxnBreakdown,
};
pub use watchdog::{Watchdog, WatchdogConfig};
