//! Structured tracing, metrics and invariant auditing for chroma.
//!
//! The paper argues fault tolerance by construction: actions obey
//! strict two-phase locking, nested commits pass locks to ancestors by
//! the Moss rules, and distributed commitment never diverges. This
//! crate makes those claims *checkable* on real executions instead of
//! trusted:
//!
//! * [`Event`] is a typed record of one step of the action lifecycle —
//!   begins/commits/aborts, lock traffic, undo logging, WAL activity,
//!   two-phase commit, crashes and network behaviour;
//! * [`EventBus`] collects events from every subsystem, counts them,
//!   feeds latency [`Histogram`]s and fans out to pluggable sinks
//!   ([`MemorySink`] for tests, [`JsonlSink`] for offline analysis);
//! * [`TraceAuditor`] replays a captured event stream and checks the
//!   paper's invariants after the fact: strict 2PL, commit-time lock
//!   inheritance by the closest ancestor holding the colour, no write
//!   without a write lock, and 2PC safety.
//!
//! Instrumented code holds an [`Obs`] handle — a cheap clone that is a
//! no-op until a bus is installed, so the hot paths pay one branch when
//! tracing is off.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use chroma_base::ActionId;
//! use chroma_obs::{EventBus, EventKind, MemorySink, Obs, TraceAuditor};
//!
//! let bus = Arc::new(EventBus::new());
//! let sink = Arc::new(MemorySink::new(1024));
//! bus.add_sink(sink.clone());
//!
//! let obs = Obs::new(bus.clone());
//! let a = ActionId::from_raw(1);
//! obs.emit(EventKind::ActionBegin { action: a, parent: None, colours: 0b1 });
//! obs.emit(EventKind::ActionCommit { action: a });
//!
//! assert_eq!(bus.counter("action_begin"), 1);
//! let report = TraceAuditor::audit_events(&sink.events());
//! assert!(report.is_clean(), "{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod bus;
mod event;
mod metrics;

pub use audit::{AuditReport, TraceAuditor, Violation};
pub use bus::{EventBus, EventSink, JsonlSink, MemorySink, Obs, ObsCell};
pub use event::{Event, EventKind, MsgKind, TraceParseError};
pub use metrics::{Histogram, Snapshot, Summary};
