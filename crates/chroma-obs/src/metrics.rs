//! Counters, latency histograms and renderable snapshots.

use std::time::Duration;

/// Summary statistics over a set of duration samples, in microseconds.
///
/// Produced either exactly from raw samples
/// ([`Summary::from_durations`]) or approximately from a log-bucketed
/// [`Histogram`] ([`Histogram::summary`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Mean, in microseconds.
    pub mean_us: f64,
    /// Median, in microseconds.
    pub p50_us: f64,
    /// 95th percentile, in microseconds.
    pub p95_us: f64,
    /// 99th percentile, in microseconds — the tail the load-harness
    /// SLO gates on.
    pub p99_us: f64,
    /// Maximum, in microseconds.
    pub max_us: f64,
}

impl Summary {
    /// Computes summary statistics from duration samples.
    #[must_use]
    pub fn from_durations(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut us: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e6).collect();
        us.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let count = us.len();
        let mean_us = us.iter().sum::<f64>() / count as f64;
        let pick = |q: f64| us[(((count - 1) as f64) * q).round() as usize];
        Summary {
            count,
            mean_us,
            p50_us: pick(0.5),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            max_us: us[count - 1],
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1}µs p50={:.1}µs p95={:.1}µs p99={:.1}µs max={:.1}µs",
            self.count, self.mean_us, self.p50_us, self.p95_us, self.p99_us, self.max_us
        )
    }
}

const BUCKETS: usize = 64;

/// A fixed-footprint latency histogram with power-of-two buckets.
///
/// Bucket 0 holds exact zeros; bucket *i* ≥ 1 holds values in
/// `[2^(i-1), 2^i)` microseconds. The mean is exact (a running sum);
/// percentiles are bucket upper bounds, clamped to the observed
/// maximum — at most a 2× overestimate, which is plenty for the
/// order-of-magnitude comparisons the experiment harness makes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of a bucket, used for percentiles.
    fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Records a [`Duration`] sample.
    pub fn observe_duration(&mut self, d: Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact maximum recorded sample, in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The quantile `q` in `[0, 1]`, as the upper bound of the bucket
    /// holding that rank, clamped to the observed maximum.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                return Self::bucket_upper(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Summarises the histogram (mean exact, percentiles bucketed).
    #[must_use]
    pub fn summary(&self) -> Summary {
        if self.count == 0 {
            return Summary::default();
        }
        Summary {
            count: usize::try_from(self.count).unwrap_or(usize::MAX),
            mean_us: self.sum_us as f64 / self.count as f64,
            p50_us: self.quantile_us(0.5) as f64,
            p95_us: self.quantile_us(0.95) as f64,
            p99_us: self.quantile_us(0.99) as f64,
            max_us: self.max_us as f64,
        }
    }
}

/// A point-in-time copy of a bus's counters, gauges and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Per-event-kind counts, in kind order (zero counts included).
    pub counters: Vec<(&'static str, u64)>,
    /// Named instantaneous values (current occupancies, queue depths),
    /// alphabetical. Unlike counters these move in both directions.
    pub gauges: Vec<(String, u64)>,
    /// Named latency summaries, alphabetical.
    pub histograms: Vec<(String, Summary)>,
}

impl Snapshot {
    /// The count for a named event kind (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The current value of a named gauge, if one was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The summary for a named histogram, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Summary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }

    /// Renders a plain-text report: non-zero counters, then gauges,
    /// then latency summaries.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("counters:\n");
        let mut any = false;
        for (name, value) in &self.counters {
            if *value > 0 {
                out.push_str(&format!("  {name:<14} {value}\n"));
                any = true;
            }
        }
        if !any {
            out.push_str("  (none)\n");
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<16} {value}\n"));
            }
        }
        out.push_str("latency:\n");
        if self.histograms.is_empty() {
            out.push_str("  (none)\n");
        }
        for (name, summary) in &self.histograms {
            out.push_str(&format!("  {name:<16} {summary}\n"));
        }
        out
    }
}

impl std::fmt::Display for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zeroes() {
        assert_eq!(Summary::from_durations(&[]).count, 0);
    }

    #[test]
    fn summary_statistics_from_durations() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = Summary::from_durations(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean_us - 50.5).abs() < 0.01);
        assert!((s.p50_us - 50.0).abs() <= 1.0);
        assert!((s.p95_us - 95.0).abs() <= 1.0);
        assert!((s.p99_us - 99.0).abs() <= 1.0);
        assert!((s.max_us - 100.0).abs() < 0.01);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        // every boundary value lands in the bucket whose upper bound
        // contains it
        for i in 1..BUCKETS - 1 {
            let upper = Histogram::bucket_upper(i);
            assert_eq!(Histogram::bucket_of(upper), i, "upper of bucket {i}");
            assert_eq!(Histogram::bucket_of(upper + 1), i + 1);
        }
    }

    #[test]
    fn histogram_mean_is_exact_and_percentiles_bounded() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.observe(us);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!((s.mean_us - 500.5).abs() < 0.01, "mean {}", s.mean_us);
        // p50's true value is 500; the bucketed answer may overshoot by
        // at most 2x
        assert!(s.p50_us >= 500.0 && s.p50_us <= 1000.0, "p50 {}", s.p50_us);
        assert!(s.p95_us >= 950.0, "p95 {}", s.p95_us);
        assert_eq!(s.max_us, 1000.0);
    }

    #[test]
    fn p99_at_bucket_boundaries() {
        // 98 fast samples in the [8, 16) bucket, two slow outliers: the
        // p99 rank (98 of 0..=99) lands on the first outlier, whose
        // bucket upper bound is clamped to the exact observed maximum.
        let mut h = Histogram::new();
        for _ in 0..98 {
            h.observe(10);
        }
        h.observe(1000);
        h.observe(1000);
        let s = h.summary();
        assert_eq!(s.p50_us, 15.0, "upper bound of the [8, 16) bucket");
        assert_eq!(s.p99_us, 1000.0, "outlier bucket clamped to max");
        assert_eq!(s.max_us, 1000.0);

        // One outlier among 100 is *below* the p99 rank: the tail
        // percentile stays in the fast bucket while max records it.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(10);
        }
        h.observe(1000);
        let s = h.summary();
        assert_eq!(s.p99_us, 15.0);
        assert_eq!(s.max_us, 1000.0);

        // With the outliers at an exact power of two the clamp still
        // returns the observed value, not the bucket's 2x upper bound.
        let mut h = Histogram::new();
        for _ in 0..98 {
            h.observe(10);
        }
        h.observe(1024);
        h.observe(1024);
        assert_eq!(h.summary().p99_us, 1024.0);

        // 100 identical samples on a bucket boundary: every percentile
        // is that sample.
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.observe(1024);
        }
        let s = h.summary();
        assert_eq!(s.p50_us, 1024.0);
        assert_eq!(s.p99_us, 1024.0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        for us in [1u64, 3, 7, 100, 5_000, 80_000, 1_000_000] {
            for _ in 0..10 {
                h.observe(us);
            }
        }
        let s = h.summary();
        assert!(s.p50_us <= s.p95_us);
        assert!(s.p95_us <= s.p99_us);
        assert!(s.p99_us <= s.max_us);
        let text = format!("{s}");
        assert!(text.contains("p99="), "Display carries p99: {text}");
    }

    #[test]
    fn histogram_quantiles_clamp_to_max() {
        let mut h = Histogram::new();
        h.observe(5);
        // single sample: every quantile is the sample itself
        assert_eq!(h.quantile_us(0.0), 5);
        assert_eq!(h.quantile_us(0.5), 5);
        assert_eq!(h.quantile_us(1.0), 5);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 0, "q={q} on empty histogram");
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_us(), 0);
        assert_eq!(h.summary(), Summary::default());
    }

    #[test]
    fn out_of_range_quantiles_clamp_to_endpoints() {
        let mut h = Histogram::new();
        for us in [1u64, 10, 100, 1000] {
            h.observe(us);
        }
        // q outside [0, 1] clamps to the endpoints rather than
        // indexing out of range.
        assert_eq!(h.quantile_us(-1.0), h.quantile_us(0.0));
        assert_eq!(h.quantile_us(2.0), h.quantile_us(1.0));
        assert_eq!(h.quantile_us(1.0), 1000, "q=1 is the exact max");
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for us in [1u64, 10, 100] {
            a.observe(us);
        }
        for us in [1000u64, 10_000] {
            b.observe(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max_us(), 10_000);
        assert_eq!(a.summary().count, 5);
    }

    #[test]
    fn histogram_merge_preserves_count_and_max_each_way() {
        // Merging an empty histogram changes nothing.
        let mut a = Histogram::new();
        for us in [7u64, 70, 700] {
            a.observe(us);
        }
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before, "merging empty is the identity");

        // Merging *into* an empty histogram reproduces the source's
        // count and max exactly.
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty.count(), before.count());
        assert_eq!(empty.max_us(), before.max_us());
        assert_eq!(empty, before);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.summary().mean_us, 0.0);
    }

    #[test]
    fn snapshot_lookup_and_render() {
        let mut h = Histogram::new();
        h.observe(100);
        let snap = Snapshot {
            counters: vec![("action_begin", 2), ("action_commit", 0)],
            gauges: vec![("locks.entries".to_owned(), 12)],
            histograms: vec![("core.commit_us".to_owned(), h.summary())],
        };
        assert_eq!(snap.counter("action_begin"), 2);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("locks.entries"), Some(12));
        assert_eq!(snap.gauge("missing"), None);
        assert!(snap.histogram("core.commit_us").is_some());
        assert!(snap.histogram("missing").is_none());
        let text = snap.render();
        assert!(text.contains("action_begin"));
        assert!(!text.contains("action_commit"), "zero counters elided");
        assert!(text.contains("gauges:"));
        assert!(text.contains("locks.entries"));
        assert!(text.contains("core.commit_us"));
    }

    #[test]
    fn snapshot_without_gauges_elides_the_section() {
        let snap = Snapshot::default();
        assert!(!snap.render().contains("gauges:"));
    }
}
