//! The always-on flight recorder: a fixed-size, lock-sharded ring of
//! recent events that turns any live incident into a post-mortem
//! trace.
//!
//! Unlike [`JsonlSink`](crate::JsonlSink), which streams the whole run
//! to disk, the recorder keeps only the newest
//! [`FlightRecorder::capacity`] events in memory at a bounded cost per
//! event (one shard mutex, no allocation beyond the ring slots) — cheap
//! enough to leave attached in production. On a crash, a
//! `watchdog_violation`, or an explicit [`FlightRecorder::dump_to`]
//! call, the ring is merged back into emission order and written as the
//! same JSONL the offline [`TraceAuditor`](crate::TraceAuditor) and
//! [`SpanForest`](crate::SpanForest) tooling already consume.
//!
//! Sharding trades strict ordering at record time for lower contention:
//! each event gets a global sequence number from one atomic, then lands
//! in shard `seq % shards`; the dump re-sorts by sequence number, so
//! the written trace is in true emission order (with a window of the
//! oldest `shards − 1` entries possibly trimmed unevenly across
//! shards).

use std::collections::VecDeque;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write as IoWrite};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::bus::EventSink;
use crate::event::{Event, EventKind};

const DEFAULT_SHARDS: usize = 8;

/// A fixed-size, lock-sharded ring buffer of recent events, usable as
/// an [`EventSink`]. See the [module docs](self) for the design.
pub struct FlightRecorder {
    shards: Vec<Mutex<VecDeque<(u64, Event)>>>,
    per_shard: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    auto_dump: RwLock<Option<PathBuf>>,
    auto_dumps: AtomicU64,
    dump_errors: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining roughly `capacity` events across
    /// [`DEFAULT_SHARDS`](self) shards.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A recorder retaining roughly `capacity` events across `shards`
    /// independently locked rings (both clamped to ≥ 1).
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        FlightRecorder {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            per_shard,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            auto_dump: RwLock::new(None),
            auto_dumps: AtomicU64::new(0),
            dump_errors: AtomicU64::new(0),
        }
    }

    /// Convenience: builds a recorder, registers it as a sink on `bus`
    /// and returns the handle.
    pub fn attach(bus: &crate::EventBus, capacity: usize) -> Arc<FlightRecorder> {
        let recorder = Arc::new(FlightRecorder::new(capacity));
        bus.add_sink(recorder.clone());
        recorder
    }

    /// Arms automatic dumping: whenever the recorder observes a
    /// `watchdog_violation` or `node_crash` event it rewrites `path`
    /// with the current ring contents (each trigger overwrites the
    /// previous dump, so the file always holds the view closest to the
    /// latest incident). Pass `None` to disarm. Dump failures are
    /// swallowed — the recorder never takes the traced system down —
    /// and counted in [`FlightRecorder::dump_errors`].
    pub fn set_auto_dump(&self, path: Option<PathBuf>) {
        *self.auto_dump.write() = path;
    }

    /// How many auto-dumps have been triggered so far.
    #[must_use]
    pub fn auto_dumps(&self) -> u64 {
        self.auto_dumps.load(Ordering::Relaxed)
    }

    /// How many dump attempts (auto or explicit) failed on I/O.
    #[must_use]
    pub fn dump_errors(&self) -> u64 {
        self.dump_errors.load(Ordering::Relaxed)
    }

    /// Maximum events the ring retains (per-shard cap × shard count).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// Events currently held in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// `true` when the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Events evicted from the ring so far (total seen minus retained).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retained events merged back into emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let mut stamped: Vec<(u64, Event)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            stamped.extend(shard.lock().iter().cloned());
        }
        stamped.sort_by_key(|&(seq, _)| seq);
        stamped.into_iter().map(|(_, event)| event).collect()
    }

    /// The retained events as JSONL lines (no trailing newline), in
    /// emission order — the exact format
    /// [`Event::from_json_line`] and the offline tooling parse.
    #[must_use]
    pub fn dump_lines(&self) -> Vec<String> {
        self.events().iter().map(Event::to_json_line).collect()
    }

    /// Writes the retained events as JSONL to `path`, creating parent
    /// directories and replacing any previous file.
    ///
    /// # Errors
    ///
    /// Propagates any I/O failure (also counted in
    /// [`FlightRecorder::dump_errors`]).
    pub fn dump_to(&self, path: &Path) -> io::Result<()> {
        let result = self.try_dump(path);
        if result.is_err() {
            self.dump_errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn try_dump(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut out = BufWriter::new(File::create(path)?);
        for line in self.dump_lines() {
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        out.flush()
    }
}

impl EventSink for FlightRecorder {
    fn record(&self, event: &Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        {
            let shard = &self.shards[(seq % self.shards.len() as u64) as usize];
            let mut ring = shard.lock();
            ring.push_back((seq, *event));
            if ring.len() > self.per_shard {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        if matches!(
            event.kind,
            EventKind::WatchdogViolation { .. } | EventKind::NodeCrash { .. }
        ) {
            let path = self.auto_dump.read().clone();
            if let Some(path) = path {
                self.auto_dumps.fetch_add(1, Ordering::Relaxed);
                if self.try_dump(&path).is_err() {
                    self.dump_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::TraceAuditor;
    use crate::bus::EventBus;
    use crate::event::WatchdogRule;
    use chroma_base::{ActionId, NodeId, ObjectId};

    static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

    fn dump_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "chroma-recorder-{tag}-{}-{}.jsonl",
            std::process::id(),
            DUMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn aid(n: u64) -> ActionId {
        ActionId::from_raw(n)
    }

    #[test]
    fn ring_keeps_only_the_newest_events_in_order() {
        let bus = Arc::new(EventBus::new());
        let recorder = FlightRecorder::attach(&bus, 16);
        for n in 0..100u64 {
            bus.emit(EventKind::ActionBegin {
                action: aid(n),
                parent: None,
                colours: 0b1,
            });
        }
        assert_eq!(recorder.capacity(), 16);
        assert_eq!(recorder.len(), 16);
        assert_eq!(recorder.dropped(), 84);
        let events = recorder.events();
        let ids: Vec<u64> = events
            .iter()
            .map(|e| match e.kind {
                EventKind::ActionBegin { action, .. } => action.as_raw(),
                ref other => panic!("unexpected kind {other:?}"),
            })
            .collect();
        assert_eq!(ids, (84..100).collect::<Vec<u64>>(), "newest, in order");
    }

    #[test]
    fn dump_parses_back_and_audits_clean() {
        let bus = Arc::new(EventBus::new());
        let recorder = FlightRecorder::attach(&bus, 64);
        bus.emit(EventKind::ActionBegin {
            action: aid(1),
            parent: None,
            colours: 0b1,
        });
        bus.emit(EventKind::LockGrant {
            action: aid(1),
            object: ObjectId::from_raw(7),
            colour: chroma_base::Colour::from_index(0),
            mode: chroma_base::LockMode::Write,
        });
        bus.emit(EventKind::UndoRecord {
            action: aid(1),
            object: ObjectId::from_raw(7),
            colour: chroma_base::Colour::from_index(0),
        });
        bus.emit(EventKind::ActionCommit { action: aid(1) });
        let path = dump_path("roundtrip");
        recorder.dump_to(&path).expect("dump");
        let text = fs::read_to_string(&path).expect("read dump");
        let parsed: Vec<Event> = text
            .lines()
            .map(|l| Event::from_json_line(l).expect("parse dump line"))
            .collect();
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed, recorder.events(), "dump is lossless");
        let report = TraceAuditor::audit_events(&parsed);
        assert!(report.is_clean(), "{report}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_dump_fires_on_violation_and_on_crash() {
        let bus = Arc::new(EventBus::new());
        let recorder = FlightRecorder::attach(&bus, 64);
        let path = dump_path("auto");
        recorder.set_auto_dump(Some(path.clone()));
        bus.emit(EventKind::ActionBegin {
            action: aid(1),
            parent: None,
            colours: 0b1,
        });
        assert_eq!(recorder.auto_dumps(), 0, "ordinary events do not dump");
        bus.emit(EventKind::WatchdogViolation {
            rule: WatchdogRule::WriteWithoutWriteLock,
            action: aid(1),
            object: ObjectId::from_raw(7),
            aux: 0,
        });
        assert_eq!(recorder.auto_dumps(), 1);
        let text = fs::read_to_string(&path).expect("auto dump written");
        assert!(
            text.contains("watchdog_violation"),
            "dump holds the incident"
        );
        bus.emit(EventKind::NodeCrash {
            node: NodeId::from_raw(2),
        });
        assert_eq!(recorder.auto_dumps(), 2, "crash re-dumps");
        let text = fs::read_to_string(&path).expect("crash dump written");
        assert!(text.contains("node_crash"));
        assert_eq!(recorder.dump_errors(), 0);
        recorder.set_auto_dump(None);
        bus.emit(EventKind::NodeCrash {
            node: NodeId::from_raw(2),
        });
        assert_eq!(recorder.auto_dumps(), 2, "disarmed recorder stays quiet");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_recorder_dumps_an_empty_file() {
        let recorder = FlightRecorder::new(8);
        assert!(recorder.is_empty());
        assert!(recorder.dump_lines().is_empty());
        let path = dump_path("empty");
        recorder.dump_to(&path).expect("dump");
        assert_eq!(fs::read_to_string(&path).expect("read"), "");
        fs::remove_file(&path).ok();
    }
}
