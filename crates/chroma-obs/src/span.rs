//! Offline span-tree reconstruction and critical-path profiling.
//!
//! A trace is a flat stream of events; this module folds it back into
//! the shapes the paper reasons about — nested action spans, 2PC
//! transaction spans, lock waits, replica catch-up windows — and
//! pairs cross-node sends with the deliveries they caused via the
//! correlation ids stamped by the transport.
//!
//! On top of the tree sits a **critical-path profiler**: every
//! committed top-level action's wall time is partitioned exactly
//! (gap by gap, attributed to the event that terminates the gap) into
//! lock wait, fsync, network, 2PC and compute phases, aggregated per
//! colour. The partition is exact by construction, so the phase sum
//! of a colour always equals the measured end-to-end commit latency.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use chroma_base::{ActionId, NodeId, ObjectId};

use crate::event::{Event, EventKind, MsgKind};

/// Why a span closed (or that it never did).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Closed by a commit (or a 2PC commit decision).
    Committed,
    /// Closed by an abort (or a 2PC abort decision).
    Aborted,
    /// Still open when the trace ended.
    Open,
}

/// What a reconstructed span covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// One action, begin to termination.
    Action {
        /// The action.
        action: ActionId,
        /// Its colour bitmask (bit *i* = colour index *i*).
        colours: u64,
        /// How it ended.
        outcome: Outcome,
    },
    /// The window between a lock request and its grant.
    LockWait {
        /// The requesting action.
        action: ActionId,
        /// The contended object.
        object: ObjectId,
    },
    /// One distributed transaction, first 2PC event to last.
    Txn {
        /// The transaction id.
        txn: u64,
        /// The decision, once one was traced.
        decision: Option<bool>,
    },
    /// A recovering replica's catch-up window.
    Catchup {
        /// The recovering member.
        node: NodeId,
        /// The object being caught up.
        object: ObjectId,
    },
    /// A read-only action's snapshot scope: from its first frontier
    /// capture (`snapshot_open`) to the action's termination, with the
    /// snapshot reads attributed inside.
    Snapshot {
        /// The reading action.
        action: ActionId,
    },
}

/// One reconstructed span.
#[derive(Clone, Debug)]
pub struct Span {
    /// What the span covers.
    pub kind: SpanKind,
    /// The node it ran on, when the trace says.
    pub node: Option<NodeId>,
    /// Opening timestamp (µs).
    pub begin_us: u64,
    /// Closing timestamp (µs); equals the last attributed event for
    /// spans still open at end of trace.
    pub end_us: u64,
    /// Index of the enclosing span in [`SpanForest::spans`].
    pub parent: Option<usize>,
    /// Indices of enclosed spans.
    pub children: Vec<usize>,
    /// Indices (into the audited event slice) of the events
    /// attributed to this span.
    pub events: Vec<usize>,
}

impl Span {
    /// Closed-minus-open, saturating.
    #[must_use]
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.begin_us)
    }

    /// A short human label (also used as the exported slice name).
    #[must_use]
    pub fn label(&self) -> String {
        match self.kind {
            SpanKind::Action {
                action, outcome, ..
            } => match outcome {
                Outcome::Committed => format!("{action}"),
                Outcome::Aborted => format!("{action} (aborted)"),
                Outcome::Open => format!("{action} (open)"),
            },
            SpanKind::LockWait { object, .. } => format!("wait {object}"),
            SpanKind::Txn { txn, decision } => match decision {
                Some(true) => format!("T{txn} commit"),
                Some(false) => format!("T{txn} abort"),
                None => format!("T{txn} undecided"),
            },
            SpanKind::Catchup { object, .. } => format!("catchup {object}"),
            SpanKind::Snapshot { action } => format!("snapshot {action}"),
        }
    }
}

/// One send paired with the delivery it caused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flow {
    /// The correlation id the transport stamped on both halves.
    pub corr: u64,
    /// The message class.
    pub kind: MsgKind,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Index of the `msg_send` event.
    pub send_idx: usize,
    /// Index of the `msg_deliver` event.
    pub recv_idx: usize,
    /// Send timestamp (µs).
    pub send_us: u64,
    /// Delivery timestamp (µs).
    pub recv_us: u64,
}

/// The reconstructed shape of one trace.
#[derive(Clone, Debug, Default)]
pub struct SpanForest {
    /// Every span, in opening order.
    pub spans: Vec<Span>,
    /// Indices of spans with no parent.
    pub roots: Vec<usize>,
    /// Every send/delivery pair, in delivery order. A duplicated
    /// message yields one flow per delivery, all sharing the send.
    pub flows: Vec<Flow>,
    /// Correlation ids of sends that never produced a delivery
    /// (dropped, or still in flight) — legal under loss.
    pub unpaired_sends: Vec<u64>,
    /// Correlation ids of deliveries with no matching send — these
    /// are causality breaches (R8 flags them too).
    pub unpaired_receives: Vec<u64>,
}

impl SpanForest {
    /// Folds a trace back into spans and flows.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn build(events: &[Event]) -> SpanForest {
        let mut forest = SpanForest::default();
        // open-span bookkeeping, keyed by what closes them
        let mut action_spans: HashMap<ActionId, usize> = HashMap::new();
        let mut lock_waits: HashMap<(ActionId, u64), usize> = HashMap::new();
        let mut txn_spans: HashMap<u64, usize> = HashMap::new();
        let mut catchups: HashMap<(u32, u64), usize> = HashMap::new();
        let mut snapshot_spans: HashMap<ActionId, usize> = HashMap::new();
        // begin-order stack of actions still open, for attributing
        // node-less store/WAL events to the innermost enclosing action
        let mut open_actions: Vec<ActionId> = Vec::new();
        let mut sends: HashMap<u64, usize> = HashMap::new();
        let mut paired: HashMap<u64, bool> = HashMap::new();

        let push_span = |forest: &mut SpanForest, span: Span| -> usize {
            let idx = forest.spans.len();
            if let Some(p) = span.parent {
                forest.spans[p].children.push(idx);
            } else {
                forest.roots.push(idx);
            }
            forest.spans.push(span);
            idx
        };
        let attribute = |forest: &mut SpanForest, span: usize, i: usize, at_us: u64| {
            forest.spans[span].events.push(i);
            let s = &mut forest.spans[span];
            s.end_us = s.end_us.max(at_us);
        };

        for (i, event) in events.iter().enumerate() {
            let at = event.at_us;
            match event.kind {
                EventKind::ActionBegin {
                    action,
                    parent,
                    colours,
                } => {
                    let parent_span = parent.and_then(|p| action_spans.get(&p).copied());
                    let idx = push_span(
                        &mut forest,
                        Span {
                            kind: SpanKind::Action {
                                action,
                                colours,
                                outcome: Outcome::Open,
                            },
                            node: event.node,
                            begin_us: at,
                            end_us: at,
                            parent: parent_span,
                            children: Vec::new(),
                            events: vec![i],
                        },
                    );
                    action_spans.insert(action, idx);
                    open_actions.push(action);
                }
                EventKind::ActionCommit { action } | EventKind::ActionAbort { action } => {
                    let committed = matches!(event.kind, EventKind::ActionCommit { .. });
                    if let Some(&idx) = action_spans.get(&action) {
                        attribute(&mut forest, idx, i, at);
                        if let SpanKind::Action { outcome, .. } = &mut forest.spans[idx].kind {
                            *outcome = if committed {
                                Outcome::Committed
                            } else {
                                Outcome::Aborted
                            };
                        }
                        // close any lock wait the action never won
                        lock_waits.retain(|&(a, _), &mut widx| {
                            if a == action {
                                forest.spans[widx].end_us = forest.spans[widx].end_us.max(at);
                                false
                            } else {
                                true
                            }
                        });
                        // a snapshot scope ends with its action
                        if let Some(sidx) = snapshot_spans.remove(&action) {
                            forest.spans[sidx].end_us = forest.spans[sidx].end_us.max(at);
                        }
                    }
                    open_actions.retain(|a| *a != action);
                }
                EventKind::LockRequest { action, object, .. } => {
                    if let Some(&aidx) = action_spans.get(&action) {
                        attribute(&mut forest, aidx, i, at);
                        let widx = push_span(
                            &mut forest,
                            Span {
                                kind: SpanKind::LockWait { action, object },
                                node: event.node,
                                begin_us: at,
                                end_us: at,
                                parent: Some(aidx),
                                children: Vec::new(),
                                events: Vec::new(),
                            },
                        );
                        lock_waits.insert((action, object.as_raw()), widx);
                    }
                }
                EventKind::LockGrant { action, object, .. } => {
                    if let Some(widx) = lock_waits.remove(&(action, object.as_raw())) {
                        forest.spans[widx].end_us = forest.spans[widx].end_us.max(at);
                    }
                    if let Some(&aidx) = action_spans.get(&action) {
                        attribute(&mut forest, aidx, i, at);
                    }
                }
                EventKind::LockConflict { action, .. }
                | EventKind::LockRelease { action, .. }
                | EventKind::UndoRecord { action, .. } => {
                    if let Some(&aidx) = action_spans.get(&action) {
                        attribute(&mut forest, aidx, i, at);
                    }
                }
                EventKind::SnapshotOpen { action, .. } => {
                    // first frontier capture opens the snapshot scope
                    // as a child of the action span
                    if let Some(&aidx) = action_spans.get(&action) {
                        let sidx = match snapshot_spans.get(&action) {
                            Some(&idx) => idx,
                            None => {
                                let idx = push_span(
                                    &mut forest,
                                    Span {
                                        kind: SpanKind::Snapshot { action },
                                        node: event.node,
                                        begin_us: at,
                                        end_us: at,
                                        parent: Some(aidx),
                                        children: Vec::new(),
                                        events: Vec::new(),
                                    },
                                );
                                snapshot_spans.insert(action, idx);
                                idx
                            }
                        };
                        attribute(&mut forest, sidx, i, at);
                    }
                }
                EventKind::SnapshotRead { action, .. } => match snapshot_spans.get(&action) {
                    Some(&sidx) => attribute(&mut forest, sidx, i, at),
                    // a read with no traced open still belongs to the
                    // action span
                    None => {
                        if let Some(&aidx) = action_spans.get(&action) {
                            attribute(&mut forest, aidx, i, at);
                        }
                    }
                },
                EventKind::LockInherit { from, .. } => {
                    if let Some(&aidx) = action_spans.get(&from) {
                        attribute(&mut forest, aidx, i, at);
                    }
                }
                EventKind::WalAppend { .. }
                | EventKind::WalFlush { .. }
                | EventKind::DiskAppend { .. }
                | EventKind::DiskCheckpoint { .. }
                | EventKind::DiskReplay { .. }
                | EventKind::DiskGroupCommit { .. }
                | EventKind::SegmentSeal { .. } => {
                    // store traffic carries no action id: charge the
                    // innermost action open on the same node (or any
                    // innermost one, for node-less local traces)
                    let owner = open_actions
                        .iter()
                        .rev()
                        .find(|a| {
                            let span = &forest.spans[action_spans[*a]];
                            span.node.is_none() || event.node.is_none() || span.node == event.node
                        })
                        .copied();
                    if let Some(action) = owner {
                        let aidx = action_spans[&action];
                        attribute(&mut forest, aidx, i, at);
                    }
                }
                EventKind::TpcPrepare { txn, .. }
                | EventKind::TpcVote { txn, .. }
                | EventKind::TpcDecide { txn, .. }
                | EventKind::TpcResolve { txn, .. } => {
                    let idx = match txn_spans.get(&txn) {
                        Some(&idx) => idx,
                        None => {
                            let idx = push_span(
                                &mut forest,
                                Span {
                                    kind: SpanKind::Txn {
                                        txn,
                                        decision: None,
                                    },
                                    node: event.node,
                                    begin_us: at,
                                    end_us: at,
                                    parent: None,
                                    children: Vec::new(),
                                    events: Vec::new(),
                                },
                            );
                            txn_spans.insert(txn, idx);
                            idx
                        }
                    };
                    attribute(&mut forest, idx, i, at);
                    if let EventKind::TpcDecide { commit, .. } = event.kind {
                        if let SpanKind::Txn { decision, .. } = &mut forest.spans[idx].kind {
                            decision.get_or_insert(commit);
                        }
                    }
                }
                EventKind::CatchupBegin { node, object } => {
                    let idx = push_span(
                        &mut forest,
                        Span {
                            kind: SpanKind::Catchup { node, object },
                            node: Some(node),
                            begin_us: at,
                            end_us: at,
                            parent: None,
                            children: Vec::new(),
                            events: vec![i],
                        },
                    );
                    catchups.insert((node.as_raw(), object.as_raw()), idx);
                }
                EventKind::CatchupEnd { node, object, .. } => {
                    if let Some(idx) = catchups.remove(&(node.as_raw(), object.as_raw())) {
                        attribute(&mut forest, idx, i, at);
                    }
                }
                EventKind::MsgSend { .. } => {
                    if let Some(corr) = event.corr {
                        sends.entry(corr).or_insert(i);
                        paired.entry(corr).or_insert(false);
                    }
                }
                EventKind::MsgDeliver { from, to, kind } => {
                    if let Some(corr) = event.corr {
                        match sends.get(&corr) {
                            Some(&send_idx) => {
                                paired.insert(corr, true);
                                forest.flows.push(Flow {
                                    corr,
                                    kind,
                                    from,
                                    to,
                                    send_idx,
                                    recv_idx: i,
                                    send_us: events[send_idx].at_us,
                                    recv_us: at,
                                });
                            }
                            None => forest.unpaired_receives.push(corr),
                        }
                    }
                }
                EventKind::MsgDrop { .. }
                | EventKind::MsgDup { .. }
                | EventKind::NodeCrash { .. }
                | EventKind::NodeRecover { .. }
                | EventKind::ReplicaWrite { .. }
                | EventKind::ReplicaInstall { .. }
                | EventKind::ReplicaRead { .. }
                | EventKind::VersionPublish { .. }
                | EventKind::VersionGc { .. }
                | EventKind::WatchdogViolation { .. }
                | EventKind::MetricsSnapshot { .. }
                // checkpointer traffic is background work: it belongs
                // to no action and must not be charged to one
                | EventKind::CheckpointBegin { .. }
                | EventKind::CheckpointEnd { .. }
                | EventKind::SegmentGc { .. } => {}
            }
        }
        forest.unpaired_sends = paired
            .iter()
            .filter(|(_, &p)| !p)
            .map(|(&corr, _)| corr)
            .collect();
        forest.unpaired_sends.sort_unstable();
        forest.unpaired_receives.sort_unstable();
        forest
    }

    /// Walks every committed top-level action span and attributes its
    /// end-to-end latency to phases; aggregates 2PC transaction spans
    /// alongside. `events` must be the slice the forest was built
    /// from.
    #[must_use]
    pub fn critical_path(&self, events: &[Event]) -> CriticalPathReport {
        let mut report = CriticalPathReport::default();
        for &root in &self.roots {
            match self.spans[root].kind {
                SpanKind::Action {
                    colours,
                    outcome: Outcome::Committed,
                    ..
                } => {
                    let span = &self.spans[root];
                    // every attributed event in the subtree, as
                    // (timestamp, phase) partition points
                    let mut points: Vec<(u64, Phase)> = Vec::new();
                    let mut stack = vec![root];
                    while let Some(idx) = stack.pop() {
                        for &i in &self.spans[idx].events {
                            let at = events[i].at_us.clamp(span.begin_us, span.end_us);
                            points.push((at, classify(&events[i].kind)));
                        }
                        stack.extend(self.spans[idx].children.iter().copied());
                    }
                    points.sort_unstable_by_key(|(at, _)| *at);
                    let mut phases = [0u64; Phase::COUNT];
                    let mut prev = span.begin_us;
                    for (at, phase) in points {
                        phases[phase as usize] += at - prev;
                        prev = at;
                    }
                    phases[Phase::Compute as usize] += span.end_us - prev;
                    for colour in colour_indices(colours) {
                        let row = report.colours.entry(colour).or_default();
                        row.actions += 1;
                        row.total_us += span.duration_us();
                        for (p, us) in phases.iter().enumerate() {
                            row.phases[p] += us;
                        }
                    }
                }
                SpanKind::Txn { decision, .. } => {
                    let span = &self.spans[root];
                    report.txns.count += 1;
                    report.txns.total_us += span.duration_us();
                    if decision.is_some() {
                        // the decide event splits vote collection
                        // from decision propagation
                        let decide_at = span
                            .events
                            .iter()
                            .find(|&&i| matches!(events[i].kind, EventKind::TpcDecide { .. }))
                            .map_or(span.end_us, |&i| events[i].at_us);
                        report.txns.vote_collection_us += decide_at - span.begin_us;
                        report.txns.resolution_us += span.end_us - decide_at;
                    }
                }
                _ => {}
            }
        }
        report
    }
}

/// The phases one committed action's latency is attributed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Phase {
    /// Waiting for (or being refused) a lock.
    LockWait = 0,
    /// Durable store work: WAL appends/flushes, disk checkpoints.
    Fsync = 1,
    /// Message transit.
    Network = 2,
    /// Two-phase-commit protocol steps and replica traffic.
    TwoPc = 3,
    /// Everything else (application work between traced steps).
    Compute = 4,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 5;
    /// Column labels, indexed by discriminant.
    pub const NAMES: [&'static str; Phase::COUNT] =
        ["lock_wait", "fsync", "network", "2pc", "compute"];
}

fn classify(kind: &EventKind) -> Phase {
    match kind {
        EventKind::LockGrant { .. } | EventKind::LockConflict { .. } => Phase::LockWait,
        EventKind::WalAppend { .. }
        | EventKind::WalFlush { .. }
        | EventKind::DiskAppend { .. }
        | EventKind::DiskCheckpoint { .. }
        | EventKind::DiskReplay { .. }
        | EventKind::DiskGroupCommit { .. }
        | EventKind::SegmentSeal { .. } => Phase::Fsync,
        EventKind::MsgSend { .. }
        | EventKind::MsgDeliver { .. }
        | EventKind::MsgDrop { .. }
        | EventKind::MsgDup { .. } => Phase::Network,
        EventKind::TpcPrepare { .. }
        | EventKind::TpcVote { .. }
        | EventKind::TpcDecide { .. }
        | EventKind::TpcResolve { .. }
        | EventKind::ReplicaWrite { .. }
        | EventKind::ReplicaInstall { .. }
        | EventKind::ReplicaRead { .. }
        | EventKind::CatchupBegin { .. }
        | EventKind::CatchupEnd { .. } => Phase::TwoPc,
        _ => Phase::Compute,
    }
}

fn colour_indices(colours: u64) -> impl Iterator<Item = u32> {
    (0..64u32).filter(move |i| colours & (1 << i) != 0)
}

/// Per-colour latency attribution of committed top-level actions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColourBreakdown {
    /// How many committed top-level actions carried the colour.
    pub actions: u64,
    /// Sum of their end-to-end latencies (µs).
    pub total_us: u64,
    /// Attribution by [`Phase`] discriminant; sums exactly to
    /// `total_us`.
    pub phases: [u64; Phase::COUNT],
}

/// Aggregate 2PC transaction timing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxnBreakdown {
    /// Transactions traced.
    pub count: u64,
    /// Sum of first-to-last 2PC event windows (µs).
    pub total_us: u64,
    /// First 2PC event to the coordinator's decision.
    pub vote_collection_us: u64,
    /// Decision to the last resolution.
    pub resolution_us: u64,
}

/// What [`SpanForest::critical_path`] found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPathReport {
    /// Per-colour breakdown (key = colour index). A multi-coloured
    /// action contributes to each of its colours' rows.
    pub colours: BTreeMap<u32, ColourBreakdown>,
    /// Aggregate 2PC timing.
    pub txns: TxnBreakdown,
}

impl fmt::Display for CriticalPathReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "critical path — committed top-level actions by colour:")?;
        write!(f, "{:<8} {:>8} {:>10}", "colour", "actions", "total_us")?;
        for name in Phase::NAMES {
            write!(f, " {name:>10}")?;
        }
        writeln!(f)?;
        if self.colours.is_empty() {
            writeln!(f, "  (no committed top-level actions in trace)")?;
        }
        for (colour, row) in &self.colours {
            write!(f, "c{colour:<7} {:>8} {:>10}", row.actions, row.total_us)?;
            for us in row.phases {
                write!(f, " {us:>10}")?;
            }
            writeln!(f)?;
        }
        if self.txns.count > 0 {
            writeln!(
                f,
                "2pc — {} transaction(s), {} µs total: vote collection {} µs, decision propagation {} µs",
                self.txns.count,
                self.txns.total_us,
                self.txns.vote_collection_us,
                self.txns.resolution_us
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chroma_base::{Colour, LockMode};

    fn ev(at_us: u64, kind: EventKind) -> Event {
        Event::at(at_us, kind)
    }

    #[test]
    fn nested_actions_fold_into_a_tree() {
        let a = ActionId::from_raw(1);
        let b = ActionId::from_raw(2);
        let o = ObjectId::from_raw(5);
        let c = Colour::from_index(0);
        let events = vec![
            ev(
                0,
                EventKind::ActionBegin {
                    action: a,
                    parent: None,
                    colours: 1,
                },
            ),
            ev(
                10,
                EventKind::ActionBegin {
                    action: b,
                    parent: Some(a),
                    colours: 1,
                },
            ),
            ev(
                20,
                EventKind::LockRequest {
                    action: b,
                    object: o,
                    colour: c,
                    mode: LockMode::Write,
                },
            ),
            ev(
                35,
                EventKind::LockGrant {
                    action: b,
                    object: o,
                    colour: c,
                    mode: LockMode::Write,
                },
            ),
            ev(50, EventKind::ActionCommit { action: b }),
            ev(80, EventKind::ActionCommit { action: a }),
        ];
        let forest = SpanForest::build(&events);
        assert_eq!(forest.roots.len(), 1);
        let root = &forest.spans[forest.roots[0]];
        assert_eq!(root.begin_us, 0);
        assert_eq!(root.end_us, 80);
        assert!(
            matches!(
                root.kind,
                SpanKind::Action {
                    outcome: Outcome::Committed,
                    ..
                }
            ),
            "{:?}",
            root.kind
        );
        assert_eq!(root.children.len(), 1);
        let child = &forest.spans[root.children[0]];
        assert_eq!((child.begin_us, child.end_us), (10, 50));
        // the child's lock wait is a grandchild span of 15 µs
        assert_eq!(child.children.len(), 1);
        let wait = &forest.spans[child.children[0]];
        assert!(matches!(wait.kind, SpanKind::LockWait { .. }));
        assert_eq!(wait.duration_us(), 15);
    }

    #[test]
    fn critical_path_partitions_latency_exactly() {
        let a = ActionId::from_raw(1);
        let o = ObjectId::from_raw(5);
        let c = Colour::from_index(2);
        let events = vec![
            ev(
                0,
                EventKind::ActionBegin {
                    action: a,
                    parent: None,
                    colours: 0b100,
                },
            ),
            ev(
                5,
                EventKind::LockRequest {
                    action: a,
                    object: o,
                    colour: c,
                    mode: LockMode::Write,
                },
            ),
            // 25 µs of lock wait (30 - 5)
            ev(
                30,
                EventKind::LockGrant {
                    action: a,
                    object: o,
                    colour: c,
                    mode: LockMode::Write,
                },
            ),
            ev(
                40,
                EventKind::UndoRecord {
                    action: a,
                    object: o,
                    colour: c,
                },
            ),
            // 50 µs of fsync (90 - 40)
            ev(90, EventKind::WalFlush { objects: 1 }),
            ev(100, EventKind::ActionCommit { action: a }),
        ];
        let forest = SpanForest::build(&events);
        let report = forest.critical_path(&events);
        let row = report.colours.get(&2).expect("colour 2 committed");
        assert_eq!(row.actions, 1);
        assert_eq!(row.total_us, 100);
        assert_eq!(row.phases[Phase::LockWait as usize], 25);
        assert_eq!(row.phases[Phase::Fsync as usize], 50);
        // the partition is exact: phases sum to the measured latency
        assert_eq!(row.phases.iter().sum::<u64>(), row.total_us);
        let text = report.to_string();
        assert!(text.contains("lock_wait"), "{text}");
        assert!(text.contains("c2"), "{text}");
    }

    #[test]
    fn flows_pair_sends_with_deliveries_under_dup_and_loss() {
        let n1 = NodeId::from_raw(1);
        let n2 = NodeId::from_raw(2);
        let msg = |kind| EventKind::MsgSend {
            from: n1,
            to: n2,
            kind,
        };
        let deliver = |kind| EventKind::MsgDeliver {
            from: n1,
            to: n2,
            kind,
        };
        let with_corr = |mut e: Event, corr: u64| {
            e.corr = Some(corr);
            e
        };
        let events = vec![
            with_corr(ev(0, msg(MsgKind::Prepare)), 1),
            // corr 1 is duplicated: two deliveries, one send
            with_corr(ev(5, deliver(MsgKind::Prepare)), 1),
            with_corr(ev(9, deliver(MsgKind::Prepare)), 1),
            // corr 2 is lost: send, no delivery
            with_corr(ev(12, msg(MsgKind::Decision)), 2),
            // corr 3 arrives from nowhere
            with_corr(ev(20, deliver(MsgKind::Ack)), 3),
        ];
        let forest = SpanForest::build(&events);
        assert_eq!(forest.flows.len(), 2, "one flow per delivery of corr 1");
        assert!(forest.flows.iter().all(|f| f.corr == 1 && f.send_idx == 0));
        assert_eq!(forest.unpaired_sends, vec![2]);
        assert_eq!(forest.unpaired_receives, vec![3]);
    }

    #[test]
    fn snapshot_scope_folds_into_a_child_span() {
        let a = ActionId::from_raw(9);
        let o = ObjectId::from_raw(5);
        let c = Colour::from_index(0);
        let events = vec![
            ev(
                0,
                EventKind::ActionBegin {
                    action: a,
                    parent: None,
                    colours: 0,
                },
            ),
            // two frontier captures, one scope
            ev(
                5,
                EventKind::SnapshotOpen {
                    action: a,
                    colour: c,
                    stamp: 3,
                },
            ),
            ev(
                6,
                EventKind::SnapshotOpen {
                    action: a,
                    colour: Colour::from_index(1),
                    stamp: 1,
                },
            ),
            ev(
                20,
                EventKind::SnapshotRead {
                    action: a,
                    object: o,
                    colour: c,
                    stamp: 3,
                },
            ),
            // GC sweeps belong to no span
            ev(
                25,
                EventKind::VersionGc {
                    reclaimed: 2,
                    retained: 1,
                },
            ),
            ev(30, EventKind::ActionCommit { action: a }),
        ];
        let forest = SpanForest::build(&events);
        assert_eq!(forest.roots.len(), 1);
        let root = &forest.spans[forest.roots[0]];
        assert_eq!(root.children.len(), 1, "one snapshot scope");
        let snap = &forest.spans[root.children[0]];
        assert_eq!(snap.kind, SpanKind::Snapshot { action: a });
        assert_eq!((snap.begin_us, snap.end_us), (5, 30), "open to commit");
        assert_eq!(snap.events, vec![1, 2, 3], "opens and reads attributed");
        assert_eq!(snap.label(), format!("snapshot {a}"));
        // the critical-path partition stays exact with the new span
        let report = forest.critical_path(&events);
        assert!(report.colours.is_empty(), "colour-less snapshot action");
    }

    #[test]
    fn txn_spans_split_at_the_decision() {
        let n1 = NodeId::from_raw(1);
        let n2 = NodeId::from_raw(2);
        let events = vec![
            ev(10, EventKind::TpcPrepare { node: n2, txn: 4 }),
            ev(
                20,
                EventKind::TpcVote {
                    node: n2,
                    txn: 4,
                    yes: true,
                },
            ),
            ev(
                50,
                EventKind::TpcDecide {
                    node: n1,
                    txn: 4,
                    commit: true,
                    participants: 1,
                },
            ),
            ev(
                70,
                EventKind::TpcResolve {
                    node: n2,
                    txn: 4,
                    commit: true,
                },
            ),
        ];
        let forest = SpanForest::build(&events);
        let report = forest.critical_path(&events);
        assert_eq!(report.txns.count, 1);
        assert_eq!(report.txns.total_us, 60);
        assert_eq!(report.txns.vote_collection_us, 40);
        assert_eq!(report.txns.resolution_us, 20);
    }
}
