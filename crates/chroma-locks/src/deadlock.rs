//! Deadlock detection over a wait-for graph.
//!
//! The graph records which action is waiting for which others. Edges come
//! from two sources:
//!
//! * **lock waits** — registered automatically by the
//!   [`LockTable`](crate::LockTable) while a blocking acquire is parked;
//! * **external waits** — registered by higher layers, e.g. a parent
//!   action blocked on the outcome of a synchronously invoked top-level
//!   independent action (the fig. 13 caveat: if the invoked action needs
//!   conflicting access to the invoker's objects, the pair deadlocks; the
//!   coloured implementation detects the cycle instead of hanging).
//!
//! Detection is run whenever a new edge is added; the victim is the
//! youngest (highest-numbered) *interruptible* waiter on the cycle, on
//! the usual grounds that it has done the least work.

use std::collections::{HashMap, HashSet};

use chroma_base::ActionId;

/// Outcome of a cycle search: the cycle found and the victim chosen.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockReport {
    /// The actions on the cycle, in wait order starting from the victim.
    pub cycle: Vec<ActionId>,
    /// The waiter chosen to be aborted.
    pub victim: ActionId,
}

#[derive(Clone, Debug, Default)]
struct EdgeSet {
    /// Actions this waiter is waiting for, with a count per target so
    /// that duplicate registrations (several blocking holders, an
    /// external wait plus a lock wait) are tracked correctly.
    targets: HashMap<ActionId, usize>,
}

/// A wait-for graph with cycle detection and victim selection.
///
/// # Examples
///
/// ```
/// use chroma_base::ActionId;
/// use chroma_locks::WaitForGraph;
///
/// let mut g = WaitForGraph::new();
/// let (a, b) = (ActionId::from_raw(1), ActionId::from_raw(2));
/// g.add_wait(a, b, true);
/// let report = g.add_wait(b, a, true).expect("cycle");
/// assert_eq!(report.victim, b); // youngest interruptible waiter
/// ```
#[derive(Clone, Debug, Default)]
pub struct WaitForGraph {
    edges: HashMap<ActionId, EdgeSet>,
    /// Waiters that can be told to give up (lock-table waiters); external
    /// waiters (threads blocked in a join) cannot be interrupted by the
    /// table and are never chosen as victims.
    interruptible: HashSet<ActionId>,
}

impl WaitForGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        WaitForGraph::default()
    }

    /// Records that `waiter` now waits for `target`, and checks for a
    /// cycle through the new edge.
    ///
    /// `interruptible` states whether this waiter can be chosen as a
    /// deadlock victim (lock waits can; external joins cannot).
    ///
    /// Returns a report if the edge closes a cycle. The caller is
    /// responsible for acting on the report and for eventually removing
    /// the edge again.
    pub fn add_wait(
        &mut self,
        waiter: ActionId,
        target: ActionId,
        interruptible: bool,
    ) -> Option<DeadlockReport> {
        *self
            .edges
            .entry(waiter)
            .or_default()
            .targets
            .entry(target)
            .or_insert(0) += 1;
        if interruptible {
            self.interruptible.insert(waiter);
        }
        self.find_cycle_through(waiter)
    }

    /// Removes one `waiter -> target` edge previously added with
    /// [`add_wait`](WaitForGraph::add_wait).
    pub fn remove_wait(&mut self, waiter: ActionId, target: ActionId) {
        let mut drop_waiter = false;
        if let Some(set) = self.edges.get_mut(&waiter) {
            if let Some(count) = set.targets.get_mut(&target) {
                *count -= 1;
                if *count == 0 {
                    set.targets.remove(&target);
                }
            }
            drop_waiter = set.targets.is_empty();
        }
        if drop_waiter {
            self.edges.remove(&waiter);
            self.interruptible.remove(&waiter);
        }
    }

    /// Removes every edge from or to `action` (it terminated).
    pub fn remove_action(&mut self, action: ActionId) {
        self.edges.remove(&action);
        self.interruptible.remove(&action);
        for set in self.edges.values_mut() {
            set.targets.remove(&action);
        }
        self.edges.retain(|_, set| !set.targets.is_empty());
    }

    /// Returns `true` if `action` currently waits for anything.
    #[must_use]
    pub fn is_waiting(&self, action: ActionId) -> bool {
        self.edges.contains_key(&action)
    }

    /// Searches for a cycle reachable from `start` and selects a victim.
    ///
    /// The victim is the youngest interruptible waiter on the cycle;
    /// returns `None` if there is no cycle. If a cycle exists but has no
    /// interruptible member, it is reported with `start` as the victim so
    /// the caller can at least surface the situation.
    fn find_cycle_through(&self, start: ActionId) -> Option<DeadlockReport> {
        // Iterative DFS tracking the path, since cycles are tiny but the
        // graph can momentarily be large under heavy contention.
        let mut path: Vec<ActionId> = vec![start];
        let mut iters: Vec<std::collections::hash_map::Keys<'_, ActionId, usize>> =
            vec![self.edges.get(&start)?.targets.keys()];
        let mut on_path: HashSet<ActionId> = HashSet::from([start]);
        let mut visited: HashSet<ActionId> = HashSet::from([start]);

        while let Some(iter) = iters.last_mut() {
            match iter.next() {
                Some(&next) => {
                    if on_path.contains(&next) {
                        // Found a cycle: the suffix of `path` from `next`.
                        let pos = path.iter().position(|&a| a == next).expect("on path");
                        let cycle: Vec<ActionId> = path[pos..].to_vec();
                        let victim = cycle
                            .iter()
                            .copied()
                            .filter(|a| self.interruptible.contains(a))
                            .max()
                            .unwrap_or(start);
                        // Rotate so the victim leads the reported cycle.
                        let vpos = cycle.iter().position(|&a| a == victim).unwrap_or(0);
                        let mut rotated = cycle[vpos..].to_vec();
                        rotated.extend_from_slice(&cycle[..vpos]);
                        return Some(DeadlockReport {
                            cycle: rotated,
                            victim,
                        });
                    }
                    if visited.insert(next) {
                        if let Some(set) = self.edges.get(&next) {
                            path.push(next);
                            on_path.insert(next);
                            iters.push(set.targets.keys());
                        }
                    }
                }
                None => {
                    iters.pop();
                    if let Some(done) = path.pop() {
                        on_path.remove(&done);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> ActionId {
        ActionId::from_raw(n)
    }

    #[test]
    fn no_cycle_no_report() {
        let mut g = WaitForGraph::new();
        assert!(g.add_wait(a(1), a(2), true).is_none());
        assert!(g.add_wait(a(2), a(3), true).is_none());
    }

    #[test]
    fn two_cycle_detected_with_youngest_victim() {
        let mut g = WaitForGraph::new();
        g.add_wait(a(1), a(2), true);
        let report = g.add_wait(a(2), a(1), true).expect("cycle");
        assert_eq!(report.victim, a(2));
        assert_eq!(report.cycle.len(), 2);
        assert_eq!(report.cycle[0], a(2));
    }

    #[test]
    fn three_cycle_detected() {
        let mut g = WaitForGraph::new();
        g.add_wait(a(3), a(1), true);
        g.add_wait(a(1), a(2), true);
        let report = g.add_wait(a(2), a(3), true).expect("cycle");
        assert_eq!(report.victim, a(3));
        assert_eq!(report.cycle.len(), 3);
    }

    #[test]
    fn external_waiters_are_not_victims() {
        let mut g = WaitForGraph::new();
        // Parent 9 waits on child 1 externally (not interruptible).
        g.add_wait(a(9), a(1), false);
        // Child 1 waits on a lock held by 9 -> cycle; victim must be 1
        // even though 9 is younger than... (9 > 1) — 9 is excluded.
        let report = g.add_wait(a(1), a(9), true).expect("cycle");
        assert_eq!(report.victim, a(1));
    }

    #[test]
    fn duplicate_edges_need_matching_removals() {
        let mut g = WaitForGraph::new();
        g.add_wait(a(1), a(2), true);
        g.add_wait(a(1), a(2), true);
        g.remove_wait(a(1), a(2));
        assert!(g.is_waiting(a(1)));
        g.remove_wait(a(1), a(2));
        assert!(!g.is_waiting(a(1)));
    }

    #[test]
    fn remove_action_clears_incident_edges() {
        let mut g = WaitForGraph::new();
        g.add_wait(a(1), a(2), true);
        g.add_wait(a(3), a(1), true);
        g.remove_action(a(1));
        assert!(!g.is_waiting(a(1)));
        assert!(!g.is_waiting(a(3)));
        // No stale cycle possible.
        assert!(g.add_wait(a(2), a(3), true).is_none());
    }

    #[test]
    fn self_wait_is_a_cycle() {
        let mut g = WaitForGraph::new();
        let report = g.add_wait(a(5), a(5), true).expect("self cycle");
        assert_eq!(report.victim, a(5));
        assert_eq!(report.cycle, vec![a(5)]);
    }

    #[test]
    fn diamond_without_cycle_is_clean() {
        let mut g = WaitForGraph::new();
        g.add_wait(a(1), a(2), true);
        g.add_wait(a(1), a(3), true);
        g.add_wait(a(2), a(4), true);
        assert!(g.add_wait(a(3), a(4), true).is_none());
    }
}
