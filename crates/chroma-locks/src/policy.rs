//! The two lock rule-sets of §5.2.

use chroma_base::{ActionId, Colour, LockDenied, LockMode};

use crate::ancestry::Ancestry;
use crate::entry::LockEntry;

/// A lock granting rule-set.
///
/// Implementations decide, given the current holders of an object and an
/// ancestry oracle, whether a request may be granted *now*. They do not
/// concern themselves with waiting, inheritance or recovery — that is the
/// [`LockTable`](crate::LockTable)'s job and is common to both rule-sets.
///
/// This trait is sealed in spirit: chroma ships exactly the two policies
/// the paper compares, but the trait is public so the table can be
/// instantiated with either and so experiment code can wrap policies to
/// count decisions.
pub trait LockPolicy {
    /// Decides whether `requester` may acquire a lock in `mode`/`colour`
    /// given the object's current `holders`.
    ///
    /// Entries belonging to the requester itself are included in
    /// `holders`; policies treat the requester as its own ancestor
    /// (enabling conversion), subject to the rest of the rules.
    ///
    /// # Errors
    ///
    /// Returns the [`LockDenied`] reason when the request must wait.
    fn permits(
        &self,
        ancestry: &dyn DynAncestry,
        holders: &[LockEntry],
        requester: ActionId,
        colour: Colour,
        mode: LockMode,
    ) -> Result<(), LockDenied>;
}

/// Object-safe adapter over [`Ancestry`], letting policies take a trait
/// object while tables stay generic.
pub trait DynAncestry {
    /// See [`Ancestry::is_ancestor_or_self`].
    fn is_ancestor_or_self(&self, candidate: ActionId, of: ActionId) -> bool;
}

impl<T: Ancestry + ?Sized> DynAncestry for T {
    fn is_ancestor_or_self(&self, candidate: ActionId, of: ActionId) -> bool {
        Ancestry::is_ancestor_or_self(self, candidate, of)
    }
}

/// The conventional nested atomic action rules (Moss 1981), as restated
/// in §5.2 of the paper:
///
/// * **read**: granted if every holder has a read lock, or every holder
///   of a write or exclusive-read lock is an ancestor of the requester;
/// * **write / exclusive-read**: granted if every holder is an ancestor
///   of the requester.
///
/// Colour fields on entries are ignored — a classic system is a
/// single-colour system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassicPolicy;

impl LockPolicy for ClassicPolicy {
    fn permits(
        &self,
        ancestry: &dyn DynAncestry,
        holders: &[LockEntry],
        requester: ActionId,
        _colour: Colour,
        mode: LockMode,
    ) -> Result<(), LockDenied> {
        for holder in holders {
            let blocking = match mode {
                // Readers only conflict with exclusive holders.
                LockMode::Read => holder.mode.is_exclusive(),
                // Exclusive requests conflict with every holder.
                LockMode::Write | LockMode::ExclusiveRead => true,
            };
            if blocking && !ancestry.is_ancestor_or_self(holder.action, requester) {
                return Err(LockDenied::ConflictingHolder {
                    holder: holder.action,
                    mode: holder.mode,
                });
            }
        }
        Ok(())
    }
}

/// The multi-coloured action rules (§5.2). Identical to
/// [`ClassicPolicy`] except for the write-colour constraint:
///
/// * **write in colour a**: every holder (any colour, any mode) must be
///   an ancestor of the requester, **and** every write lock on the object
///   must itself be coloured `a` — "if an ancestor of a coloured action
///   has a write lock of colour a on an object, then the coloured action
///   may only acquire a write lock on that object using colour a";
/// * **read in colour a**: every holder has a read lock, or every
///   write/exclusive-read holder is an ancestor (no colour constraint —
///   this is what lets fig. 11's action C read, in blue, objects the
///   serializing wrapper retains in red);
/// * **exclusive-read in colour a**: every holder is an ancestor (no
///   write-colour constraint — this is what lets fig. 12's action A
///   exclusive-read-lock in red the hand-over set it itself
///   write-locked in blue).
///
/// The requirement that an action only *requests* colours it possesses is
/// enforced by the [`LockTable`](crate::LockTable) before the policy is
/// consulted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ColouredPolicy;

impl LockPolicy for ColouredPolicy {
    fn permits(
        &self,
        ancestry: &dyn DynAncestry,
        holders: &[LockEntry],
        requester: ActionId,
        colour: Colour,
        mode: LockMode,
    ) -> Result<(), LockDenied> {
        for holder in holders {
            let blocking = match mode {
                LockMode::Read => holder.mode.is_exclusive(),
                LockMode::Write | LockMode::ExclusiveRead => true,
            };
            if blocking && !ancestry.is_ancestor_or_self(holder.action, requester) {
                return Err(LockDenied::ConflictingHolder {
                    holder: holder.action,
                    mode: holder.mode,
                });
            }
            if mode == LockMode::Write && holder.mode == LockMode::Write && holder.colour != colour
            {
                return Err(LockDenied::WrongWriteColour {
                    existing: holder.colour,
                    requested: colour,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatAncestry;

    fn red() -> Colour {
        Colour::from_index(0)
    }

    fn blue() -> Colour {
        Colour::from_index(1)
    }

    fn a(n: u64) -> ActionId {
        ActionId::from_raw(n)
    }

    #[test]
    fn classic_read_shares_with_readers() {
        let tree = FlatAncestry::new();
        let holders = [LockEntry::new(a(1), red(), LockMode::Read)];
        assert!(ClassicPolicy
            .permits(&tree, &holders, a(2), red(), LockMode::Read)
            .is_ok());
    }

    #[test]
    fn classic_read_blocked_by_stranger_writer() {
        let tree = FlatAncestry::new();
        let holders = [LockEntry::new(a(1), red(), LockMode::Write)];
        assert!(ClassicPolicy
            .permits(&tree, &holders, a(2), red(), LockMode::Read)
            .is_err());
    }

    #[test]
    fn classic_read_allowed_under_ancestor_writer() {
        let tree = FlatAncestry::new();
        tree.set_parent(a(2), a(1));
        let holders = [LockEntry::new(a(1), red(), LockMode::Write)];
        assert!(ClassicPolicy
            .permits(&tree, &holders, a(2), red(), LockMode::Read)
            .is_ok());
    }

    #[test]
    fn classic_write_requires_all_holders_ancestors() {
        let tree = FlatAncestry::new();
        tree.set_parent(a(3), a(1));
        // Reader a(2) is a stranger: write denied even though reads are "weak".
        let holders = [
            LockEntry::new(a(1), red(), LockMode::Read),
            LockEntry::new(a(2), red(), LockMode::Read),
        ];
        assert!(ClassicPolicy
            .permits(&tree, &holders, a(3), red(), LockMode::Write)
            .is_err());
        // Only the ancestor reader: granted.
        let holders = [LockEntry::new(a(1), red(), LockMode::Read)];
        assert!(ClassicPolicy
            .permits(&tree, &holders, a(3), red(), LockMode::Write)
            .is_ok());
    }

    #[test]
    fn classic_xread_behaves_like_write_for_granting() {
        let tree = FlatAncestry::new();
        let holders = [LockEntry::new(a(1), red(), LockMode::Read)];
        assert!(ClassicPolicy
            .permits(&tree, &holders, a(2), red(), LockMode::ExclusiveRead)
            .is_err());
    }

    #[test]
    fn coloured_write_requires_matching_write_colour() {
        let tree = FlatAncestry::new();
        tree.set_parent(a(2), a(1));
        // Ancestor holds a RED write; BLUE write must be denied...
        let holders = [LockEntry::new(a(1), red(), LockMode::Write)];
        let denied = ColouredPolicy
            .permits(&tree, &holders, a(2), blue(), LockMode::Write)
            .unwrap_err();
        assert!(matches!(denied, LockDenied::WrongWriteColour { .. }));
        // ...while a RED write is granted.
        assert!(ColouredPolicy
            .permits(&tree, &holders, a(2), red(), LockMode::Write)
            .is_ok());
    }

    #[test]
    fn coloured_write_over_ancestor_xread_of_other_colour_is_granted() {
        // Fig. 11/12 mechanism: the control action retains an
        // exclusive-read in red; a nested blue action may still write.
        let tree = FlatAncestry::new();
        tree.set_parent(a(2), a(1));
        let holders = [LockEntry::new(a(1), red(), LockMode::ExclusiveRead)];
        assert!(ColouredPolicy
            .permits(&tree, &holders, a(2), blue(), LockMode::Write)
            .is_ok());
    }

    #[test]
    fn coloured_xread_over_own_write_of_other_colour_is_granted() {
        // Fig. 12 mechanism: A write-locks P in blue then
        // exclusive-read-locks P in red; self counts as ancestor and no
        // colour constraint applies to exclusive-read.
        let tree = FlatAncestry::new();
        let holders = [LockEntry::new(a(1), blue(), LockMode::Write)];
        assert!(ColouredPolicy
            .permits(&tree, &holders, a(1), red(), LockMode::ExclusiveRead)
            .is_ok());
    }

    #[test]
    fn coloured_read_has_no_colour_constraint() {
        let tree = FlatAncestry::new();
        tree.set_parent(a(2), a(1));
        let holders = [LockEntry::new(a(1), red(), LockMode::Write)];
        assert!(ColouredPolicy
            .permits(&tree, &holders, a(2), blue(), LockMode::Read)
            .is_ok());
    }

    #[test]
    fn coloured_stranger_writer_blocks_everything() {
        let tree = FlatAncestry::new();
        let holders = [LockEntry::new(a(1), red(), LockMode::Write)];
        for mode in [LockMode::Read, LockMode::Write, LockMode::ExclusiveRead] {
            assert!(
                ColouredPolicy
                    .permits(&tree, &holders, a(2), red(), mode)
                    .is_err(),
                "{mode} should be denied"
            );
        }
    }

    #[test]
    fn single_colour_policies_agree_on_basic_matrix() {
        let tree = FlatAncestry::new();
        tree.set_parent(a(2), a(1));
        for holder_mode in [LockMode::Read, LockMode::Write, LockMode::ExclusiveRead] {
            for req_mode in [LockMode::Read, LockMode::Write, LockMode::ExclusiveRead] {
                for (holder, requester) in [(a(1), a(2)), (a(9), a(2))] {
                    let holders = [LockEntry::new(holder, red(), holder_mode)];
                    let classic = ClassicPolicy
                        .permits(&tree, &holders, requester, red(), req_mode)
                        .is_ok();
                    let coloured = ColouredPolicy
                        .permits(&tree, &holders, requester, red(), req_mode)
                        .is_ok();
                    assert_eq!(
                        classic, coloured,
                        "disagreement: holder {holder_mode} by {holder}, request {req_mode}"
                    );
                }
            }
        }
    }
}
