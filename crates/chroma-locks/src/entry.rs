//! Lock entries and snapshots.

use chroma_base::{ActionId, Colour, LockMode, ObjectId};

/// One granted lock: an action holding an object in a mode, in a colour.
///
/// Under the classic rules the colour is still carried (the table is
/// shared machinery) but the policy ignores it; conventional systems are
/// exactly single-colour systems.
///
/// An action holds at most one entry per `(object, colour)`; conversions
/// strengthen the mode of the existing entry in place.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LockEntry {
    /// The action holding the lock.
    pub action: ActionId,
    /// The colour the lock was acquired in.
    pub colour: Colour,
    /// The mode the lock is held in.
    pub mode: LockMode,
}

impl LockEntry {
    /// Creates a lock entry.
    #[must_use]
    pub const fn new(action: ActionId, colour: Colour, mode: LockMode) -> Self {
        LockEntry {
            action,
            colour,
            mode,
        }
    }
}

/// A lock held by an action, as reported by
/// [`LockTable::locks_of`](crate::LockTable::locks_of).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LockSnapshot {
    /// The object the lock is held on.
    pub object: ObjectId,
    /// The colour the lock is held in.
    pub colour: Colour,
    /// The mode the lock is held in.
    pub mode: LockMode,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_construction() {
        let e = LockEntry::new(
            ActionId::from_raw(1),
            Colour::from_index(2),
            LockMode::Write,
        );
        assert_eq!(e.action, ActionId::from_raw(1));
        assert_eq!(e.colour, Colour::from_index(2));
        assert_eq!(e.mode, LockMode::Write);
    }
}
