//! The ancestry oracle the lock rules consult.

use std::collections::HashMap;
use std::sync::Arc;

use chroma_base::ActionId;
use parking_lot::RwLock;

/// Oracle answering ancestry queries over the action tree.
///
/// Both rule-sets of §5.2 grant exclusive locks only when every existing
/// holder is an *ancestor* of the requester. Like Moss, chroma treats an
/// action as an ancestor of itself, which is what permits lock conversion
/// (upgrading a held read lock to a write lock) and re-acquisition.
///
/// The core runtime implements this trait over its live action tree; the
/// standalone [`FlatAncestry`] implementation is useful for tests and for
/// non-nested workloads.
pub trait Ancestry {
    /// Returns `true` if `candidate` is `of` itself or a (transitive)
    /// parent of `of` in the action tree.
    fn is_ancestor_or_self(&self, candidate: ActionId, of: ActionId) -> bool;
}

impl<T: Ancestry + ?Sized> Ancestry for &T {
    fn is_ancestor_or_self(&self, candidate: ActionId, of: ActionId) -> bool {
        (**self).is_ancestor_or_self(candidate, of)
    }
}

impl<T: Ancestry + ?Sized> Ancestry for Arc<T> {
    fn is_ancestor_or_self(&self, candidate: ActionId, of: ActionId) -> bool {
        (**self).is_ancestor_or_self(candidate, of)
    }
}

/// An explicit parent map usable as an [`Ancestry`] oracle.
///
/// Actions without a registered parent are top-level; with no
/// registrations at all, every action is top-level and the only ancestor
/// of an action is itself (hence "flat").
///
/// # Examples
///
/// ```
/// use chroma_base::ActionId;
/// use chroma_locks::{Ancestry, FlatAncestry};
///
/// let (parent, child) = (ActionId::from_raw(1), ActionId::from_raw(2));
/// let tree = FlatAncestry::new();
/// tree.set_parent(child, parent);
/// assert!(tree.is_ancestor_or_self(parent, child));
/// assert!(tree.is_ancestor_or_self(child, child));
/// assert!(!tree.is_ancestor_or_self(child, parent));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FlatAncestry {
    parents: Arc<RwLock<HashMap<ActionId, ActionId>>>,
}

impl FlatAncestry {
    /// Creates an oracle with no parent links.
    #[must_use]
    pub fn new() -> Self {
        FlatAncestry::default()
    }

    /// Registers `parent` as the parent of `child`.
    pub fn set_parent(&self, child: ActionId, parent: ActionId) {
        self.parents.write().insert(child, parent);
    }

    /// Removes the parent link of `child`, making it top-level.
    pub fn clear_parent(&self, child: ActionId) {
        self.parents.write().remove(&child);
    }
}

impl Ancestry for FlatAncestry {
    fn is_ancestor_or_self(&self, candidate: ActionId, of: ActionId) -> bool {
        if candidate == of {
            return true;
        }
        let parents = self.parents.read();
        let mut cursor = of;
        while let Some(&parent) = parents.get(&cursor) {
            if parent == candidate {
                return true;
            }
            cursor = parent;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_is_ancestor() {
        let tree = FlatAncestry::new();
        let a = ActionId::from_raw(1);
        assert!(tree.is_ancestor_or_self(a, a));
    }

    #[test]
    fn transitive_ancestry() {
        let tree = FlatAncestry::new();
        let (a, b, c) = (
            ActionId::from_raw(1),
            ActionId::from_raw(2),
            ActionId::from_raw(3),
        );
        tree.set_parent(b, a);
        tree.set_parent(c, b);
        assert!(tree.is_ancestor_or_self(a, c));
        assert!(tree.is_ancestor_or_self(b, c));
        assert!(!tree.is_ancestor_or_self(c, a));
        assert!(!tree.is_ancestor_or_self(c, b));
    }

    #[test]
    fn siblings_are_unrelated() {
        let tree = FlatAncestry::new();
        let (p, x, y) = (
            ActionId::from_raw(1),
            ActionId::from_raw(2),
            ActionId::from_raw(3),
        );
        tree.set_parent(x, p);
        tree.set_parent(y, p);
        assert!(!tree.is_ancestor_or_self(x, y));
        assert!(!tree.is_ancestor_or_self(y, x));
    }

    #[test]
    fn clear_parent_detaches() {
        let tree = FlatAncestry::new();
        let (p, c) = (ActionId::from_raw(1), ActionId::from_raw(2));
        tree.set_parent(c, p);
        tree.clear_parent(c);
        assert!(!tree.is_ancestor_or_self(p, c));
    }
}
