//! The lock table: granted locks, blocked waiters, inheritance.
//!
//! # Sharding
//!
//! The table is partitioned into a power-of-two number of **shards**
//! keyed by [`ObjectId`] hash. Each shard owns its slice of the granted
//! lock entries behind its own mutex and condvar, so acquisitions on
//! disjoint objects never contend on a shared lock — the grant fast
//! path touches exactly one shard.
//!
//! Cross-object state is kept out of the fast path:
//!
//! * the **waits-for graph** (deadlock detection, external wait edges)
//!   lives in a single registry that is only locked once a request has
//!   already conflicted and is about to park — a path that is orders of
//!   magnitude colder than a grant;
//! * a **striped per-action index** remembers, as a bitmask, which
//!   shards an action may hold locks in. Multi-object operations
//!   ([`release_colour`](LockTable::release_colour),
//!   [`inherit_colour`](LockTable::inherit_colour),
//!   [`discard_action`](LockTable::discard_action),
//!   [`locks_of`](LockTable::locks_of)) walk only those shards, in
//!   ascending index order, taking one shard lock at a time. The mask
//!   is maintained as a superset (bits are set *before* an entry can
//!   appear, and only dropped when the action terminates), so a walk
//!   can at worst visit a shard and find nothing.
//!
//! Interrupt delivery (deadlock victims, cancelled waiters) is stored
//! in the shard the victim is parked on, under the same mutex as its
//! condvar, so a wake-up can never be lost. Lock ordering is strictly
//! `shard → registry`, never the reverse, and no two shard locks are
//! ever held at once.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use chroma_base::{ActionId, Colour, LockError, LockMode, ObjectId};
use chroma_obs::{EventKind, Obs, Observable};
use parking_lot::{Condvar, Mutex};

use crate::deadlock::WaitForGraph;
use crate::entry::{LockEntry, LockSnapshot};
use crate::policy::{DynAncestry, LockPolicy};

/// Default shard count of a [`LockTable`]; see
/// [`LockTable::with_shards`] to choose another.
pub const DEFAULT_LOCK_SHARDS: usize = 16;

/// Upper bound on the shard count (the per-action index is a 64-bit
/// shard bitmask).
pub const MAX_LOCK_SHARDS: usize = 64;

/// Multiplier for Fibonacci hashing of ids onto shards/stripes.
const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// How an acquisition request concluded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcquireOutcome {
    /// A new lock entry was created for the requester.
    Granted,
    /// The requester already held the lock in a covering mode; nothing
    /// changed.
    AlreadyHeld,
    /// The requester held the lock in a weaker mode and it was
    /// strengthened in place (for example read → write conversion).
    Upgraded,
}

#[derive(Default)]
struct ShardState {
    objects: HashMap<ObjectId, Vec<LockEntry>>,
    /// Waiters parked on this shard that must give up with the recorded
    /// error next time they observe the state (deadlock victims,
    /// externally cancelled actions). Guarded by the same mutex as the
    /// shard's condvar so an interrupt can never race a park.
    interrupts: HashMap<ActionId, Interrupt>,
    /// Actions currently inside a blocking [`LockTable::acquire`] on an
    /// object of this shard. [`LockTable::cancel_waiter`] only
    /// interrupts these: an interrupt posted for an action that never
    /// waits again would leak forever and poison a later reuse of the
    /// same `ActionId`.
    waiting: HashSet<ActionId>,
    /// The shard's copy of the observability handle (kept inside the
    /// state so the hot path pays no extra synchronisation to read it).
    obs: Obs,
}

struct Shard {
    state: Mutex<ShardState>,
    changed: Condvar,
    waits_started: AtomicU64,
    wait_micros: AtomicU64,
}

impl Default for Shard {
    fn default() -> Self {
        Shard {
            state: Mutex::new(ShardState::default()),
            changed: Condvar::new(),
            waits_started: AtomicU64::new(0),
            wait_micros: AtomicU64::new(0),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Interrupt {
    DeadlockVictim,
    Cancelled,
}

impl Interrupt {
    fn into_error(self, action: ActionId, object: ObjectId) -> LockError {
        match self {
            Interrupt::DeadlockVictim => LockError::DeadlockVictim { object },
            Interrupt::Cancelled => LockError::ActionNotActive { action },
        }
    }
}

/// A table of object locks shared by every action of one runtime (or one
/// node, in the distributed setting).
///
/// The table is parametric in its [`LockPolicy`]: instantiate it with
/// [`ColouredPolicy`](crate::ColouredPolicy) for a multi-coloured system
/// or [`ClassicPolicy`](crate::ClassicPolicy) for the conventional
/// nested-action baseline. Everything else — waiting, wake-ups, deadlock
/// detection, per-colour inheritance and release — is rule-set
/// independent, mirroring the paper's observation that colours require
/// only "minor modifications to the conventional rules".
///
/// Internally the table is sharded by object hash (see the module docs);
/// acquisitions on disjoint objects proceed fully in parallel.
///
/// Blocking acquisition parks the calling thread until the request can be
/// granted, the optional timeout expires, the waiter is chosen as a
/// deadlock victim, or the action is cancelled from another thread.
///
/// # Examples
///
/// ```
/// use chroma_base::{ActionId, Colour, LockMode, ObjectId};
/// use chroma_locks::{AcquireOutcome, ColouredPolicy, FlatAncestry, LockTable};
///
/// let table = LockTable::new(ColouredPolicy);
/// let ctx = FlatAncestry::new();
/// let (red, a, o) = (
///     Colour::from_index(0),
///     ActionId::from_raw(1),
///     ObjectId::from_raw(1),
/// );
/// assert_eq!(
///     table.try_acquire(&ctx, a, o, red, LockMode::Read)?,
///     AcquireOutcome::Granted
/// );
/// assert_eq!(
///     table.try_acquire(&ctx, a, o, red, LockMode::Write)?,
///     AcquireOutcome::Upgraded
/// );
/// # Ok::<(), chroma_base::LockError>(())
/// ```
pub struct LockTable<P> {
    policy: P,
    shards: Box<[Shard]>,
    /// `shards.len() == 1 << shard_bits`.
    shard_bits: u32,
    /// Waits-for graph for deadlock detection; only locked on the
    /// conflict path and for external wait edges. Lock order: a shard
    /// lock may be held while taking this, never the reverse.
    graph: Mutex<WaitForGraph>,
    /// Striped `action → shard bitmask` index: which shards an action
    /// may hold locks in (a superset; see module docs).
    action_index: Box<[Mutex<HashMap<ActionId, u64>>]>,
    /// Outstanding planted interrupts across all shards, so the common
    /// no-interrupt case of [`clear_interrupt`](LockTable::clear_interrupt)
    /// and [`retire_action`](LockTable::retire_action) is one atomic load.
    interrupts_outstanding: AtomicU64,
    /// Actions currently registered as blocking waiters, so
    /// [`cancel_waiter`](LockTable::cancel_waiter) can skip the shard
    /// walk when nothing waits.
    waiters_registered: AtomicU64,
    waits_started: AtomicU64,
    wait_micros: AtomicU64,
    /// Actions declared read-only (snapshot readers). Debug builds
    /// panic if one of these ever reaches [`LockTable::acquire`] or
    /// [`LockTable::try_acquire`] — snapshot reads must bypass the
    /// lock table entirely.
    lockless: Mutex<HashSet<ActionId>>,
}

/// Aggregate waiting statistics of a [`LockTable`], from
/// [`LockTable::wait_stats`] (whole table) or
/// [`LockTable::shard_wait_stats`] (per shard).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Blocking acquisitions that had to park at least once.
    pub waits: u64,
    /// Total parked time across all waits, in microseconds.
    pub total_wait_micros: u64,
}

impl WaitStats {
    /// Mean parked time per wait, in microseconds (0 if no waits).
    #[must_use]
    pub fn mean_wait_micros(&self) -> f64 {
        if self.waits == 0 {
            0.0
        } else {
            self.total_wait_micros as f64 / self.waits as f64
        }
    }
}

impl<P> LockTable<P> {
    /// Creates an empty table using `policy` for grant decisions, with
    /// [`DEFAULT_LOCK_SHARDS`] shards.
    #[must_use]
    pub fn new(policy: P) -> Self {
        LockTable::with_shards(policy, DEFAULT_LOCK_SHARDS)
    }

    /// Creates an empty table with (roughly) `shards` shards: the count
    /// is clamped to `1..=`[`MAX_LOCK_SHARDS`] and rounded up to a
    /// power of two.
    #[must_use]
    pub fn with_shards(policy: P, shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_LOCK_SHARDS).next_power_of_two();
        LockTable {
            policy,
            shards: (0..shards).map(|_| Shard::default()).collect(),
            shard_bits: shards.trailing_zeros(),
            graph: Mutex::new(WaitForGraph::new()),
            action_index: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            interrupts_outstanding: AtomicU64::new(0),
            waiters_registered: AtomicU64::new(0),
            waits_started: AtomicU64::new(0),
            wait_micros: AtomicU64::new(0),
            lockless: Mutex::new(HashSet::new()),
        }
    }

    /// The number of shards the table was built with (a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index an object's locks live in. Exposed so tests and
    /// benchmarks can construct cross-shard or same-shard workloads
    /// deterministically.
    #[must_use]
    pub fn shard_of(&self, object: ObjectId) -> usize {
        if self.shard_bits == 0 {
            return 0;
        }
        (object.as_raw().wrapping_mul(HASH_MULT) >> (64 - self.shard_bits)) as usize
    }

    fn stripe_of(&self, action: ActionId) -> usize {
        if self.shard_bits == 0 {
            return 0;
        }
        (action.as_raw().wrapping_mul(HASH_MULT) >> (64 - self.shard_bits)) as usize
    }

    /// Marks `shard` as possibly holding locks of `action` (called
    /// *before* any entry becomes visible, keeping the mask a superset).
    fn note_holding(&self, action: ActionId, shard: usize) {
        let mut stripe = self.action_index[self.stripe_of(action)].lock();
        *stripe.entry(action).or_insert(0) |= 1u64 << shard;
    }

    fn or_mask(&self, action: ActionId, bits: u64) {
        if bits != 0 {
            let mut stripe = self.action_index[self.stripe_of(action)].lock();
            *stripe.entry(action).or_insert(0) |= bits;
        }
    }

    fn mask_of(&self, action: ActionId) -> u64 {
        self.action_index[self.stripe_of(action)]
            .lock()
            .get(&action)
            .copied()
            .unwrap_or(0)
    }

    fn take_mask(&self, action: ActionId) -> u64 {
        self.action_index[self.stripe_of(action)]
            .lock()
            .remove(&action)
            .unwrap_or(0)
    }

    /// Iterates the shard indices set in `mask`, in ascending order —
    /// the fixed walk order of every multi-shard operation.
    fn mask_shards(mask: u64) -> impl Iterator<Item = usize> {
        (0..64usize).filter(move |i| mask & (1u64 << i) != 0)
    }

    /// Declares `action` a read-only snapshot action. In debug builds
    /// any lock acquisition it subsequently attempts panics: snapshot
    /// reads are served from version chains and must never touch the
    /// lock table (that bypass is what makes them wait-free).
    pub fn mark_lockless(&self, action: ActionId) {
        self.lockless.lock().insert(action);
    }

    /// Removes the read-only marking of `action` (its snapshot scope
    /// ended, or died with a crash).
    pub fn unmark_lockless(&self, action: ActionId) {
        self.lockless.lock().remove(&action);
    }

    /// Whether `action` is currently marked as a read-only snapshot
    /// action.
    #[must_use]
    pub fn is_lockless(&self, action: ActionId) -> bool {
        self.lockless.lock().contains(&action)
    }

    #[cfg(debug_assertions)]
    fn assert_not_lockless(&self, action: ActionId, object: ObjectId) {
        assert!(
            !self.is_lockless(action),
            "read-only snapshot action {action:?} attempted to lock {object:?}; \
             snapshot reads must bypass the lock table"
        );
    }

    #[cfg(not(debug_assertions))]
    fn assert_not_lockless(&self, _action: ActionId, _object: ObjectId) {}

    /// Number of planted-but-unconsumed interrupts (deadlock victims and
    /// cancellations still awaiting delivery). Exposed for metrics and
    /// for the interrupt-leak regression tests.
    #[must_use]
    pub fn interrupts_outstanding(&self) -> u64 {
        self.interrupts_outstanding.load(Ordering::Relaxed)
    }

    /// Returns aggregate waiting statistics (how often and how long
    /// blocking acquisitions parked) — the raw data behind the lock
    /// availability experiments.
    #[must_use]
    pub fn wait_stats(&self) -> WaitStats {
        WaitStats {
            waits: self.waits_started.load(Ordering::Relaxed),
            total_wait_micros: self.wait_micros.load(Ordering::Relaxed),
        }
    }

    /// Per-shard waiting statistics, indexed by shard. A heavily skewed
    /// distribution means a hot object (or an unlucky hash) is
    /// concentrating contention on one shard.
    #[must_use]
    pub fn shard_wait_stats(&self) -> Vec<WaitStats> {
        self.shards
            .iter()
            .map(|s| WaitStats {
                waits: s.waits_started.load(Ordering::Relaxed),
                total_wait_micros: s.wait_micros.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Plants `interrupt` for `victim` in whichever shard it is parked
    /// on and wakes it. A no-op if the victim is not currently waiting
    /// (it may have been granted or given up since the cycle was
    /// observed), so interrupts can never leak onto reused ids.
    ///
    /// Must be called with no shard lock held.
    fn plant_interrupt(&self, victim: ActionId, interrupt: Interrupt) {
        for shard in self.shards.iter() {
            let mut state = shard.state.lock();
            if state.waiting.contains(&victim) {
                if state.interrupts.insert(victim, interrupt).is_none() {
                    self.interrupts_outstanding.fetch_add(1, Ordering::Relaxed);
                }
                shard.changed.notify_all();
                return;
            }
        }
    }

    fn consume_interrupt(&self, state: &mut ShardState, action: ActionId) -> Option<Interrupt> {
        let interrupt = state.interrupts.remove(&action)?;
        self.interrupts_outstanding.fetch_sub(1, Ordering::Relaxed);
        Some(interrupt)
    }
}

impl<P> Observable for LockTable<P> {
    /// Installs an observability handle; subsequent lock traffic emits
    /// `LockRequest`/`LockGrant`/`LockConflict`/`LockInherit`/
    /// `LockRelease` events and feeds the `locks.wait_us`,
    /// `locks.wait_us.shard<k>` and `locks.shard_contention`
    /// histograms.
    fn install_obs(&self, obs: Obs) {
        for shard in self.shards.iter() {
            shard.state.lock().obs = obs.clone();
        }
    }
}

impl<P: LockPolicy> LockTable<P> {
    /// Attempts to acquire a lock without waiting.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Denied`] with the blocking reason if the
    /// request cannot be granted immediately.
    pub fn try_acquire(
        &self,
        ancestry: &dyn DynAncestry,
        action: ActionId,
        object: ObjectId,
        colour: Colour,
        mode: LockMode,
    ) -> Result<AcquireOutcome, LockError> {
        self.assert_not_lockless(action, object);
        let shard_idx = self.shard_of(object);
        // Superset invariant: the mask bit is set before the entry can
        // exist (a spurious bit on a denied request is harmless).
        self.note_holding(action, shard_idx);
        let mut state = self.shards[shard_idx].state.lock();
        let obs = state.obs.clone();
        if obs.enabled() {
            obs.emit(EventKind::LockRequest {
                action,
                object,
                colour,
                mode,
            });
        }
        let result = match self.check_and_apply(&mut state, ancestry, action, object, colour, mode)
        {
            Ok(outcome) => Ok(outcome),
            Err(reason) => Err(LockError::Denied { object, reason }),
        };
        drop(state);
        if obs.enabled() {
            obs.emit(match result {
                Ok(_) => EventKind::LockGrant {
                    action,
                    object,
                    colour,
                    mode,
                },
                Err(_) => EventKind::LockConflict {
                    action,
                    object,
                    colour,
                    mode,
                },
            });
        }
        result
    }

    /// Acquires a lock, waiting if necessary.
    ///
    /// `timeout` bounds the total wait; `None` waits indefinitely (the
    /// deadlock detector still guarantees progress among waiters it can
    /// see).
    ///
    /// # Errors
    ///
    /// * [`LockError::DeadlockVictim`] — the waiter was selected to break
    ///   a wait-for cycle and should abort its action;
    /// * [`LockError::Timeout`] — the deadline passed;
    /// * [`LockError::ActionNotActive`] — the action was cancelled via
    ///   [`LockTable::cancel_waiter`] while waiting.
    pub fn acquire(
        &self,
        ancestry: &dyn DynAncestry,
        action: ActionId,
        object: ObjectId,
        colour: Colour,
        mode: LockMode,
        timeout: Option<Duration>,
    ) -> Result<AcquireOutcome, LockError> {
        self.assert_not_lockless(action, object);
        let deadline = timeout.map(|t| Instant::now() + t);
        let shard_idx = self.shard_of(object);
        let shard = &self.shards[shard_idx];
        self.note_holding(action, shard_idx);
        let mut state = shard.state.lock();
        let obs = state.obs.clone();
        if obs.enabled() {
            obs.emit(EventKind::LockRequest {
                action,
                object,
                colour,
                mode,
            });
        }
        let mut registered: Vec<ActionId> = Vec::new();
        // Victims this waiter already flagged, so re-observing the same
        // (still unwinding) cycle after a wake-up does not replant.
        let mut victimised: HashSet<ActionId> = HashSet::new();
        let mut parked_since: Option<Instant> = None;
        let mut conflict_emitted = false;
        let result = loop {
            if let Some(interrupt) = self.consume_interrupt(&mut state, action) {
                break Err(interrupt.into_error(action, object));
            }
            match self.check_and_apply(&mut state, ancestry, action, object, colour, mode) {
                Ok(outcome) => break Ok(outcome),
                Err(_reason) => {
                    // Join the shard's wait set only once a conflict is
                    // real: an immediately granted acquire never takes
                    // the shared-counter hit, while every action that
                    // is about to publish wait-for edges is registered
                    // first, so a concurrent victim selection can
                    // always plant its interrupt.
                    if state.waiting.insert(action) {
                        self.waiters_registered.fetch_add(1, Ordering::Relaxed);
                    }
                    if obs.enabled() && !conflict_emitted {
                        conflict_emitted = true;
                        obs.emit(EventKind::LockConflict {
                            action,
                            object,
                            colour,
                            mode,
                        });
                    }
                    // Refresh the wait-for edges to the current
                    // blockers; detection runs in the shared graph
                    // (shard → graph lock order).
                    let blockers = Self::blockers(&state, ancestry, action, object, colour, mode);
                    let mut victim_is_self = false;
                    let mut remote_victims: Vec<ActionId> = Vec::new();
                    {
                        let mut graph = self.graph.lock();
                        for &old in &registered {
                            graph.remove_wait(action, old);
                        }
                        registered.clear();
                        for blocker in blockers {
                            registered.push(blocker);
                            if let Some(report) = graph.add_wait(action, blocker, true) {
                                if report.victim == action {
                                    victim_is_self = true;
                                } else if victimised.insert(report.victim) {
                                    remote_victims.push(report.victim);
                                }
                            }
                        }
                    }
                    if victim_is_self {
                        break Err(LockError::DeadlockVictim { object });
                    }
                    if !remote_victims.is_empty() {
                        // The victims may be parked on other shards;
                        // planting locks those shards, so release ours
                        // first (never two shard locks at once) and
                        // re-evaluate from the top afterwards.
                        drop(state);
                        for victim in remote_victims {
                            self.plant_interrupt(victim, Interrupt::DeadlockVictim);
                        }
                        state = shard.state.lock();
                        continue;
                    }
                    if parked_since.is_none() {
                        parked_since = Some(Instant::now());
                        self.waits_started.fetch_add(1, Ordering::Relaxed);
                        shard.waits_started.fetch_add(1, Ordering::Relaxed);
                    }
                    let timed_out = match deadline {
                        Some(deadline) => {
                            let now = Instant::now();
                            if now >= deadline {
                                true
                            } else {
                                shard
                                    .changed
                                    .wait_for(&mut state, deadline - now)
                                    .timed_out()
                            }
                        }
                        None => {
                            shard.changed.wait(&mut state);
                            false
                        }
                    };
                    if timed_out {
                        // One final check before giving up: a grant or
                        // interrupt that raced the deadline (the lock
                        // was released, or we were victimised, just as
                        // the wait expired) must not be dropped on the
                        // floor.
                        if let Some(interrupt) = self.consume_interrupt(&mut state, action) {
                            break Err(interrupt.into_error(action, object));
                        }
                        if let Ok(outcome) =
                            self.check_and_apply(&mut state, ancestry, action, object, colour, mode)
                        {
                            break Ok(outcome);
                        }
                        break Err(LockError::Timeout { object });
                    }
                }
            }
        };
        if state.waiting.remove(&action) {
            self.waiters_registered.fetch_sub(1, Ordering::Relaxed);
        }
        if !registered.is_empty() {
            let mut graph = self.graph.lock();
            for &old in &registered {
                graph.remove_wait(action, old);
            }
        }
        drop(state);
        if let Some(since) = parked_since {
            let waited = u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.wait_micros.fetch_add(waited, Ordering::Relaxed);
            shard.wait_micros.fetch_add(waited, Ordering::Relaxed);
            if obs.enabled() {
                obs.observe("locks.wait_us", waited);
                obs.observe(&format!("locks.wait_us.shard{shard_idx}"), waited);
                obs.observe("locks.shard_contention", shard_idx as u64);
            }
        }
        if obs.enabled() && result.is_ok() {
            obs.emit(EventKind::LockGrant {
                action,
                object,
                colour,
                mode,
            });
        }
        result
    }

    /// Registers an *external* wait edge (e.g. a parent joined on a
    /// synchronously invoked independent action) and reports whether it
    /// closes a cycle.
    ///
    /// External waiters are never chosen as deadlock victims; if the
    /// cycle has an interruptible lock-waiter, that waiter is flagged and
    /// woken. The caller must pair this with
    /// [`LockTable::remove_external_wait`].
    pub fn add_external_wait(
        &self,
        waiter: ActionId,
        target: ActionId,
    ) -> Option<crate::DeadlockReport> {
        let report = self.graph.lock().add_wait(waiter, target, false);
        if let Some(report) = &report {
            if report.victim != waiter {
                self.plant_interrupt(report.victim, Interrupt::DeadlockVictim);
            }
        }
        report
    }

    /// Removes an external wait edge added with
    /// [`LockTable::add_external_wait`].
    pub fn remove_external_wait(&self, waiter: ActionId, target: ActionId) {
        self.graph.lock().remove_wait(waiter, target);
    }

    /// Makes an in-progress wait by `action` fail with
    /// [`LockError::ActionNotActive`]. Used when an action is aborted
    /// from another thread.
    ///
    /// If the action is not currently blocked in
    /// [`LockTable::acquire`] this is a no-op: nothing would ever
    /// consume the interrupt, so posting one would leak it and poison
    /// a later reuse of the same `ActionId`.
    pub fn cancel_waiter(&self, action: ActionId) {
        if self.waiters_registered.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.plant_interrupt(action, Interrupt::Cancelled);
    }

    /// Discards a pending interrupt for `action`, if any (the action
    /// finished its work without needing another lock).
    pub fn clear_interrupt(&self, action: ActionId) {
        if self.interrupts_outstanding.load(Ordering::Relaxed) == 0 {
            return;
        }
        for shard in self.shards.iter() {
            let mut state = shard.state.lock();
            if self.consume_interrupt(&mut state, action).is_some() {
                return;
            }
        }
    }

    /// Drops the table's per-action bookkeeping for a *terminated*
    /// action: its shard-index entry and any pending interrupt. The
    /// runtime calls this when an action commits (an aborting action
    /// goes through [`LockTable::discard_action`], which does the same
    /// and more). Bounds the index in long-running systems.
    pub fn retire_action(&self, action: ActionId) {
        self.take_mask(action);
        self.clear_interrupt(action);
    }

    /// Releases every lock `action` holds in `colour` (the action is
    /// outermost for that colour and committed). Returns the objects
    /// whose lock sets changed.
    ///
    /// Walks only the shards the action may hold locks in, in ascending
    /// shard order; each shard's release is atomic under its own lock.
    pub fn release_colour(&self, action: ActionId, colour: Colour) -> Vec<ObjectId> {
        let mask = self.mask_of(action);
        let mut touched = Vec::new();
        let mut obs = Obs::none();
        for idx in Self::mask_shards(mask) {
            let shard = &self.shards[idx];
            let mut state = shard.state.lock();
            if !obs.enabled() {
                obs = state.obs.clone();
            }
            let before = touched.len();
            state.objects.retain(|&object, holders| {
                let held = holders.len();
                holders.retain(|e| !(e.action == action && e.colour == colour));
                if holders.len() != held {
                    touched.push(object);
                }
                !holders.is_empty()
            });
            if touched.len() != before {
                shard.changed.notify_all();
            }
        }
        if obs.enabled() {
            for &object in &touched {
                obs.emit(EventKind::LockRelease {
                    action,
                    object,
                    colour,
                });
            }
        }
        touched
    }

    /// Transfers every lock `from` holds in `colour` to `to` (the
    /// committing action's closest ancestor possessing `colour`).
    ///
    /// If the ancestor already holds a lock on the same object in the
    /// same colour, the two merge into the strongest mode — the paper's
    /// "the parent will hold each of the locks in the same mode as the
    /// child held them". Returns the objects affected.
    pub fn inherit_colour(&self, from: ActionId, colour: Colour, to: ActionId) -> Vec<ObjectId> {
        let mask = self.mask_of(from);
        // The ancestor may now hold locks wherever the child did; set
        // its mask bits before the entries move (superset invariant).
        self.or_mask(to, mask);
        let mut touched = Vec::new();
        let mut obs = Obs::none();
        for idx in Self::mask_shards(mask) {
            let shard = &self.shards[idx];
            let mut state = shard.state.lock();
            if !obs.enabled() {
                obs = state.obs.clone();
            }
            let before = touched.len();
            for (&object, holders) in state.objects.iter_mut() {
                let Some(pos) = holders
                    .iter()
                    .position(|e| e.action == from && e.colour == colour)
                else {
                    continue;
                };
                let child_mode = holders[pos].mode;
                holders.remove(pos);
                match holders
                    .iter_mut()
                    .find(|e| e.action == to && e.colour == colour)
                {
                    Some(parent_entry) => {
                        parent_entry.mode = parent_entry.mode.strongest(child_mode);
                    }
                    None => holders.push(LockEntry::new(to, colour, child_mode)),
                }
                touched.push(object);
            }
            if touched.len() != before {
                shard.changed.notify_all();
            }
        }
        if obs.enabled() {
            for &object in &touched {
                obs.emit(EventKind::LockInherit {
                    from,
                    to,
                    object,
                    colour,
                });
            }
        }
        touched
    }

    /// Discards every lock `action` holds, in every colour and mode (the
    /// action aborted). Ancestors holding the same locks keep them.
    /// Returns the objects whose lock sets changed.
    pub fn discard_action(&self, action: ActionId) -> Vec<ObjectId> {
        let mask = self.take_mask(action);
        let mut touched = Vec::new();
        let mut dropped: Vec<(ObjectId, Colour)> = Vec::new();
        let mut obs = Obs::none();
        for idx in Self::mask_shards(mask) {
            let shard = &self.shards[idx];
            let mut state = shard.state.lock();
            if !obs.enabled() {
                obs = state.obs.clone();
            }
            state.objects.retain(|&object, holders| {
                let before = holders.len();
                holders.retain(|e| {
                    if e.action == action {
                        dropped.push((object, e.colour));
                        false
                    } else {
                        true
                    }
                });
                if holders.len() != before {
                    touched.push(object);
                }
                !holders.is_empty()
            });
            shard.changed.notify_all();
        }
        self.graph.lock().remove_action(action);
        self.clear_interrupt(action);
        if obs.enabled() {
            for &(object, colour) in &dropped {
                obs.emit(EventKind::LockRelease {
                    action,
                    object,
                    colour,
                });
            }
        }
        touched
    }

    /// Returns the current holders of `object`.
    #[must_use]
    pub fn holders(&self, object: ObjectId) -> Vec<LockEntry> {
        self.shards[self.shard_of(object)]
            .state
            .lock()
            .objects
            .get(&object)
            .cloned()
            .unwrap_or_default()
    }

    /// Returns every lock held by `action`, across all objects and
    /// colours.
    #[must_use]
    pub fn locks_of(&self, action: ActionId) -> Vec<LockSnapshot> {
        let mask = self.mask_of(action);
        let mut snapshots: Vec<LockSnapshot> = Vec::new();
        for idx in Self::mask_shards(mask) {
            let state = self.shards[idx].state.lock();
            snapshots.extend(state.objects.iter().flat_map(|(&object, holders)| {
                holders
                    .iter()
                    .filter(|e| e.action == action)
                    .map(move |e| LockSnapshot {
                        object,
                        colour: e.colour,
                        mode: e.mode,
                    })
            }));
        }
        snapshots.sort_by_key(|s| (s.object, s.colour));
        snapshots
    }

    /// Returns the objects `action` holds in `colour`, with the held
    /// mode. Drives per-colour commit in the runtime.
    #[must_use]
    pub fn locks_of_colour(&self, action: ActionId, colour: Colour) -> Vec<(ObjectId, LockMode)> {
        let mask = self.mask_of(action);
        let mut locks: Vec<(ObjectId, LockMode)> = Vec::new();
        for idx in Self::mask_shards(mask) {
            let state = self.shards[idx].state.lock();
            locks.extend(state.objects.iter().flat_map(|(&object, holders)| {
                holders
                    .iter()
                    .filter(|e| e.action == action && e.colour == colour)
                    .map(move |e| (object, e.mode))
            }));
        }
        locks.sort_by_key(|&(object, _)| object);
        locks
    }

    /// Returns the total number of granted lock entries (for tests and
    /// metrics).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().objects.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Number of actions currently parked waiting for a lock, summed
    /// across shards — the instantaneous wait-queue depth behind the
    /// cumulative [`wait_stats`](LockTable::wait_stats).
    #[must_use]
    pub fn waiting_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().waiting.len())
            .sum()
    }

    fn check_and_apply(
        &self,
        state: &mut ShardState,
        ancestry: &dyn DynAncestry,
        action: ActionId,
        object: ObjectId,
        colour: Colour,
        mode: LockMode,
    ) -> Result<AcquireOutcome, chroma_base::LockDenied> {
        let holders = state.objects.entry(object).or_default();
        if let Some(own) = holders
            .iter()
            .find(|e| e.action == action && e.colour == colour)
        {
            if own.mode >= mode {
                return Ok(AcquireOutcome::AlreadyHeld);
            }
        }
        self.policy
            .permits(ancestry, holders, action, colour, mode)?;
        match holders
            .iter_mut()
            .find(|e| e.action == action && e.colour == colour)
        {
            Some(own) => {
                own.mode = own.mode.strongest(mode);
                Ok(AcquireOutcome::Upgraded)
            }
            None => {
                holders.push(LockEntry::new(action, colour, mode));
                Ok(AcquireOutcome::Granted)
            }
        }
    }

    /// Identifies the holders that currently block `action`'s request
    /// (for wait-for edges). Mirrors the policy's conflict structure
    /// conservatively: any non-ancestor exclusive holder, every
    /// non-ancestor holder for exclusive requests, and any differently
    /// coloured write holder for write requests.
    fn blockers(
        state: &ShardState,
        ancestry: &dyn DynAncestry,
        action: ActionId,
        object: ObjectId,
        colour: Colour,
        mode: LockMode,
    ) -> Vec<ActionId> {
        let Some(holders) = state.objects.get(&object) else {
            return Vec::new();
        };
        let mut blockers: HashSet<ActionId> = HashSet::new();
        for holder in holders {
            if holder.action == action {
                continue;
            }
            let ancestor = ancestry.is_ancestor_or_self(holder.action, action);
            let conflicting = match mode {
                LockMode::Read => holder.mode.is_exclusive() && !ancestor,
                LockMode::ExclusiveRead => !ancestor,
                LockMode::Write => {
                    !ancestor || (holder.mode == LockMode::Write && holder.colour != colour)
                }
            };
            if conflicting {
                blockers.insert(holder.action);
            }
        }
        let mut blockers: Vec<ActionId> = blockers.into_iter().collect();
        blockers.sort();
        blockers
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for LockTable<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (mut objects, mut entries) = (0usize, 0usize);
        for shard in self.shards.iter() {
            let state = shard.state.lock();
            objects += state.objects.len();
            entries += state.objects.values().map(Vec::len).sum::<usize>();
        }
        f.debug_struct("LockTable")
            .field("policy", &self.policy)
            .field("shards", &self.shards.len())
            .field("objects", &objects)
            .field("entries", &entries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassicPolicy, ColouredPolicy, FlatAncestry};
    use std::sync::Arc;

    fn a(n: u64) -> ActionId {
        ActionId::from_raw(n)
    }
    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }
    fn red() -> Colour {
        Colour::from_index(0)
    }
    fn blue() -> Colour {
        Colour::from_index(1)
    }

    #[test]
    fn grant_upgrade_already_held() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        assert_eq!(
            table
                .try_acquire(&ctx, a(1), o(1), red(), LockMode::Read)
                .unwrap(),
            AcquireOutcome::Granted
        );
        assert_eq!(
            table
                .try_acquire(&ctx, a(1), o(1), red(), LockMode::Read)
                .unwrap(),
            AcquireOutcome::AlreadyHeld
        );
        assert_eq!(
            table
                .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
                .unwrap(),
            AcquireOutcome::Upgraded
        );
        assert_eq!(
            table
                .try_acquire(&ctx, a(1), o(1), red(), LockMode::Read)
                .unwrap(),
            AcquireOutcome::AlreadyHeld
        );
    }

    #[test]
    fn xread_then_write_same_colour_upgrades() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::ExclusiveRead)
            .unwrap();
        assert_eq!(
            table
                .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
                .unwrap(),
            AcquireOutcome::Upgraded
        );
    }

    #[test]
    fn conflicting_try_acquire_is_denied() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        let err = table
            .try_acquire(&ctx, a(2), o(1), red(), LockMode::Read)
            .unwrap_err();
        assert!(matches!(err, LockError::Denied { .. }));
    }

    #[test]
    fn release_colour_frees_only_that_colour() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        table
            .try_acquire(&ctx, a(1), o(2), blue(), LockMode::Write)
            .unwrap();
        let touched = table.release_colour(a(1), red());
        assert_eq!(touched, vec![o(1)]);
        assert!(table.holders(o(1)).is_empty());
        assert_eq!(table.holders(o(2)).len(), 1);
    }

    #[test]
    fn inherit_moves_locks_to_parent_with_merge() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        ctx.set_parent(a(2), a(1));
        // Parent already read-holds o1 in red; child write-holds o1 and o2.
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Read)
            .unwrap();
        table
            .try_acquire(&ctx, a(2), o(1), red(), LockMode::Write)
            .unwrap();
        table
            .try_acquire(&ctx, a(2), o(2), red(), LockMode::Write)
            .unwrap();
        let mut touched = table.inherit_colour(a(2), red(), a(1));
        touched.sort();
        assert_eq!(touched, vec![o(1), o(2)]);
        let holders = table.holders(o(1));
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].action, a(1));
        assert_eq!(holders[0].mode, LockMode::Write); // merged to strongest
        assert_eq!(table.holders(o(2))[0].action, a(1));
    }

    #[test]
    fn discard_keeps_ancestor_locks() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        ctx.set_parent(a(2), a(1));
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        table
            .try_acquire(&ctx, a(2), o(1), red(), LockMode::Write)
            .unwrap();
        table.discard_action(a(2));
        let holders = table.holders(o(1));
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].action, a(1));
    }

    #[test]
    fn blocking_acquire_wakes_on_release() {
        let table = Arc::new(LockTable::new(ColouredPolicy));
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        let t2 = Arc::clone(&table);
        let ctx2 = ctx.clone();
        let handle = std::thread::spawn(move || {
            t2.acquire(
                &ctx2,
                a(2),
                o(1),
                red(),
                LockMode::Write,
                Some(Duration::from_secs(5)),
            )
        });
        std::thread::sleep(Duration::from_millis(50));
        table.release_colour(a(1), red());
        let outcome = handle.join().unwrap().unwrap();
        assert_eq!(outcome, AcquireOutcome::Granted);
    }

    #[test]
    fn blocking_acquire_times_out() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        let err = table
            .acquire(
                &ctx,
                a(2),
                o(1),
                red(),
                LockMode::Write,
                Some(Duration::from_millis(30)),
            )
            .unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }));
    }

    #[test]
    fn deadlock_is_broken_by_victim_selection() {
        let table = Arc::new(LockTable::new(ClassicPolicy));
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        table
            .try_acquire(&ctx, a(2), o(2), red(), LockMode::Write)
            .unwrap();
        // a(1) waits for o2 (held by a2); a(2) waits for o1 (held by a1).
        let t1 = Arc::clone(&table);
        let c1 = ctx.clone();
        let h1 = std::thread::spawn(move || {
            t1.acquire(
                &c1,
                a(1),
                o(2),
                red(),
                LockMode::Write,
                Some(Duration::from_secs(5)),
            )
        });
        std::thread::sleep(Duration::from_millis(50));
        let r2 = table.acquire(
            &ctx,
            a(2),
            o(1),
            red(),
            LockMode::Write,
            Some(Duration::from_secs(5)),
        );
        // a(2) is the youngest waiter on the cycle: it is the victim.
        assert!(matches!(r2, Err(LockError::DeadlockVictim { .. })));
        // Release a(2)'s locks as its abort would; a(1) then proceeds.
        table.discard_action(a(2));
        assert!(h1.join().unwrap().is_ok());
    }

    #[test]
    fn cancelled_waiter_returns_not_active() {
        let table = Arc::new(LockTable::new(ColouredPolicy));
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        let t2 = Arc::clone(&table);
        let ctx2 = ctx.clone();
        let handle =
            std::thread::spawn(move || t2.acquire(&ctx2, a(2), o(1), red(), LockMode::Write, None));
        std::thread::sleep(Duration::from_millis(50));
        table.cancel_waiter(a(2));
        let err = handle.join().unwrap().unwrap_err();
        assert!(matches!(err, LockError::ActionNotActive { .. }));
    }

    #[test]
    fn grant_racing_the_deadline_is_not_dropped() {
        let table = Arc::new(LockTable::new(ColouredPolicy));
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        let t2 = Arc::clone(&table);
        let ctx2 = ctx.clone();
        let waiter = std::thread::spawn(move || {
            t2.acquire(
                &ctx2,
                a(2),
                o(1),
                red(),
                LockMode::Write,
                Some(Duration::from_millis(40)),
            )
        });
        std::thread::sleep(Duration::from_millis(10));
        // Schedule the release exactly at the deadline: hold the shard
        // mutex across the waiter's deadline, free the lock, then let
        // go. The waiter's wait has timed out by the time it
        // reacquires the mutex, but the lock is free — the grant must
        // not be dropped for a Timeout error.
        {
            let shard = &table.shards[table.shard_of(o(1))];
            let mut state = shard.state.lock();
            std::thread::sleep(Duration::from_millis(80));
            state.objects.remove(&o(1));
            shard.changed.notify_all();
        }
        let outcome = waiter.join().unwrap();
        assert_eq!(outcome.unwrap(), AcquireOutcome::Granted);
    }

    #[test]
    fn cancelled_then_finished_action_id_is_reusable() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        // The runtime's abort ordering: discard locks, then cancel any
        // in-progress wait — but this action is not waiting.
        table.discard_action(a(1));
        table.cancel_waiter(a(1));
        // No interrupt may leak from cancelling a non-waiter...
        assert_eq!(table.interrupts_outstanding(), 0);
        // ...so a later reuse of the id acquires normally.
        assert_eq!(
            table
                .acquire(
                    &ctx,
                    a(1),
                    o(2),
                    red(),
                    LockMode::Write,
                    Some(Duration::from_millis(100)),
                )
                .unwrap(),
            AcquireOutcome::Granted
        );
    }

    #[test]
    fn locks_of_reports_all_colours() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), blue(), LockMode::Write)
            .unwrap();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::ExclusiveRead)
            .unwrap();
        let locks = table.locks_of(a(1));
        assert_eq!(locks.len(), 2);
        assert_eq!(table.locks_of_colour(a(1), red()).len(), 1);
        assert_eq!(table.locks_of_colour(a(1), blue()).len(), 1);
        assert_eq!(table.entry_count(), 2);
    }

    #[test]
    fn nested_child_gets_ancestor_held_lock() {
        let table = LockTable::new(ClassicPolicy);
        let ctx = FlatAncestry::new();
        ctx.set_parent(a(2), a(1));
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        assert!(table
            .try_acquire(&ctx, a(2), o(1), red(), LockMode::Write)
            .is_ok());
        // A stranger still cannot.
        assert!(table
            .try_acquire(&ctx, a(3), o(1), red(), LockMode::Write)
            .is_err());
    }

    #[test]
    fn shard_count_is_clamped_to_a_power_of_two() {
        assert_eq!(LockTable::with_shards(ColouredPolicy, 0).shard_count(), 1);
        assert_eq!(LockTable::with_shards(ColouredPolicy, 3).shard_count(), 4);
        assert_eq!(LockTable::with_shards(ColouredPolicy, 16).shard_count(), 16);
        assert_eq!(
            LockTable::with_shards(ColouredPolicy, 1000).shard_count(),
            MAX_LOCK_SHARDS
        );
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let table = LockTable::with_shards(ColouredPolicy, 8);
        for raw in 0..1000 {
            let s = table.shard_of(o(raw));
            assert!(s < 8);
            assert_eq!(s, table.shard_of(o(raw)));
        }
        // A single-shard table maps everything to shard 0.
        let single = LockTable::with_shards(ColouredPolicy, 1);
        for raw in 0..100 {
            assert_eq!(single.shard_of(o(raw)), 0);
        }
    }

    #[test]
    fn retire_action_drops_index_entries() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        table.release_colour(a(1), red());
        assert_ne!(table.mask_of(a(1)), 0, "mask persists until retirement");
        table.retire_action(a(1));
        assert_eq!(table.mask_of(a(1)), 0);
        assert!(table.locks_of(a(1)).is_empty());
    }

    #[test]
    fn multi_shard_release_returns_every_object() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        // Lock enough objects that several shards are certainly hit.
        let objects: Vec<ObjectId> = (1..=64).map(o).collect();
        for &obj in &objects {
            table
                .try_acquire(&ctx, a(1), obj, red(), LockMode::Write)
                .unwrap();
        }
        let shards_hit: HashSet<usize> = objects.iter().map(|&ob| table.shard_of(ob)).collect();
        assert!(shards_hit.len() > 1, "expected objects on several shards");
        assert_eq!(table.locks_of(a(1)).len(), 64);
        let mut touched = table.release_colour(a(1), red());
        touched.sort();
        assert_eq!(touched, objects);
        assert_eq!(table.entry_count(), 0);
    }
}
