//! The lock table: granted locks, blocked waiters, inheritance.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use chroma_base::{ActionId, Colour, LockError, LockMode, ObjectId};
use chroma_obs::{EventKind, Obs};
use parking_lot::{Condvar, Mutex};

use crate::deadlock::WaitForGraph;
use crate::entry::{LockEntry, LockSnapshot};
use crate::policy::{DynAncestry, LockPolicy};

/// How an acquisition request concluded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcquireOutcome {
    /// A new lock entry was created for the requester.
    Granted,
    /// The requester already held the lock in a covering mode; nothing
    /// changed.
    AlreadyHeld,
    /// The requester held the lock in a weaker mode and it was
    /// strengthened in place (for example read → write conversion).
    Upgraded,
}

#[derive(Default)]
struct TableState {
    objects: HashMap<ObjectId, Vec<LockEntry>>,
    graph: WaitForGraph,
    /// Waiters that must give up with the recorded error next time they
    /// observe the state (deadlock victims, externally cancelled actions).
    interrupts: HashMap<ActionId, Interrupt>,
    /// Actions currently inside a blocking [`LockTable::acquire`].
    /// [`LockTable::cancel_waiter`] only interrupts these: an interrupt
    /// posted for an action that never waits again would leak forever
    /// and poison a later reuse of the same `ActionId`.
    waiting: HashSet<ActionId>,
}

#[derive(Clone, Copy, Debug)]
enum Interrupt {
    DeadlockVictim,
    Cancelled,
}

/// A table of object locks shared by every action of one runtime (or one
/// node, in the distributed setting).
///
/// The table is parametric in its [`LockPolicy`]: instantiate it with
/// [`ColouredPolicy`](crate::ColouredPolicy) for a multi-coloured system
/// or [`ClassicPolicy`](crate::ClassicPolicy) for the conventional
/// nested-action baseline. Everything else — waiting, wake-ups, deadlock
/// detection, per-colour inheritance and release — is rule-set
/// independent, mirroring the paper's observation that colours require
/// only "minor modifications to the conventional rules".
///
/// Blocking acquisition parks the calling thread until the request can be
/// granted, the optional timeout expires, the waiter is chosen as a
/// deadlock victim, or the action is cancelled from another thread.
///
/// # Examples
///
/// ```
/// use chroma_base::{ActionId, Colour, LockMode, ObjectId};
/// use chroma_locks::{AcquireOutcome, ColouredPolicy, FlatAncestry, LockTable};
///
/// let table = LockTable::new(ColouredPolicy);
/// let ctx = FlatAncestry::new();
/// let (red, a, o) = (
///     Colour::from_index(0),
///     ActionId::from_raw(1),
///     ObjectId::from_raw(1),
/// );
/// assert_eq!(
///     table.try_acquire(&ctx, a, o, red, LockMode::Read)?,
///     AcquireOutcome::Granted
/// );
/// assert_eq!(
///     table.try_acquire(&ctx, a, o, red, LockMode::Write)?,
///     AcquireOutcome::Upgraded
/// );
/// # Ok::<(), chroma_base::LockError>(())
/// ```
pub struct LockTable<P> {
    policy: P,
    state: Mutex<TableState>,
    changed: Condvar,
    waits_started: AtomicU64,
    wait_micros: AtomicU64,
    obs: Mutex<Obs>,
}

/// Aggregate waiting statistics of a [`LockTable`], from
/// [`LockTable::wait_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Blocking acquisitions that had to park at least once.
    pub waits: u64,
    /// Total parked time across all waits, in microseconds.
    pub total_wait_micros: u64,
}

impl WaitStats {
    /// Mean parked time per wait, in microseconds (0 if no waits).
    #[must_use]
    pub fn mean_wait_micros(&self) -> f64 {
        if self.waits == 0 {
            0.0
        } else {
            self.total_wait_micros as f64 / self.waits as f64
        }
    }
}

impl<P: LockPolicy> LockTable<P> {
    /// Creates an empty table using `policy` for grant decisions.
    #[must_use]
    pub fn new(policy: P) -> Self {
        LockTable {
            policy,
            state: Mutex::new(TableState::default()),
            changed: Condvar::new(),
            waits_started: AtomicU64::new(0),
            wait_micros: AtomicU64::new(0),
            obs: Mutex::new(Obs::none()),
        }
    }

    /// Installs an observability handle; subsequent lock traffic emits
    /// `LockRequest`/`LockGrant`/`LockConflict`/`LockInherit`/
    /// `LockRelease` events and feeds the `locks.wait_us` histogram.
    pub fn set_obs(&self, obs: Obs) {
        *self.obs.lock() = obs;
    }

    fn obs(&self) -> Obs {
        self.obs.lock().clone()
    }

    /// Returns aggregate waiting statistics (how often and how long
    /// blocking acquisitions parked) — the raw data behind the lock
    /// availability experiments.
    #[must_use]
    pub fn wait_stats(&self) -> WaitStats {
        WaitStats {
            waits: self.waits_started.load(Ordering::Relaxed),
            total_wait_micros: self.wait_micros.load(Ordering::Relaxed),
        }
    }

    /// Attempts to acquire a lock without waiting.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Denied`] with the blocking reason if the
    /// request cannot be granted immediately.
    pub fn try_acquire(
        &self,
        ancestry: &dyn DynAncestry,
        action: ActionId,
        object: ObjectId,
        colour: Colour,
        mode: LockMode,
    ) -> Result<AcquireOutcome, LockError> {
        let obs = self.obs();
        if obs.enabled() {
            obs.emit(EventKind::LockRequest {
                action,
                object,
                colour,
                mode,
            });
        }
        let mut state = self.state.lock();
        let result = match self.check_and_apply(&mut state, ancestry, action, object, colour, mode)
        {
            Ok(outcome) => Ok(outcome),
            Err(reason) => Err(LockError::Denied { object, reason }),
        };
        drop(state);
        if obs.enabled() {
            obs.emit(match result {
                Ok(_) => EventKind::LockGrant {
                    action,
                    object,
                    colour,
                    mode,
                },
                Err(_) => EventKind::LockConflict {
                    action,
                    object,
                    colour,
                    mode,
                },
            });
        }
        result
    }

    /// Acquires a lock, waiting if necessary.
    ///
    /// `timeout` bounds the total wait; `None` waits indefinitely (the
    /// deadlock detector still guarantees progress among waiters it can
    /// see).
    ///
    /// # Errors
    ///
    /// * [`LockError::DeadlockVictim`] — the waiter was selected to break
    ///   a wait-for cycle and should abort its action;
    /// * [`LockError::Timeout`] — the deadline passed;
    /// * [`LockError::ActionNotActive`] — the action was cancelled via
    ///   [`LockTable::cancel_waiter`] while waiting.
    pub fn acquire(
        &self,
        ancestry: &dyn DynAncestry,
        action: ActionId,
        object: ObjectId,
        colour: Colour,
        mode: LockMode,
        timeout: Option<Duration>,
    ) -> Result<AcquireOutcome, LockError> {
        let obs = self.obs();
        if obs.enabled() {
            obs.emit(EventKind::LockRequest {
                action,
                object,
                colour,
                mode,
            });
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.state.lock();
        state.waiting.insert(action);
        let mut registered: Vec<ActionId> = Vec::new();
        let mut parked_since: Option<Instant> = None;
        let mut conflict_emitted = false;
        let result = loop {
            if let Some(interrupt) = state.interrupts.remove(&action) {
                break Err(match interrupt {
                    Interrupt::DeadlockVictim => LockError::DeadlockVictim { object },
                    Interrupt::Cancelled => LockError::ActionNotActive { action },
                });
            }
            match self.check_and_apply(&mut state, ancestry, action, object, colour, mode) {
                Ok(outcome) => break Ok(outcome),
                Err(_reason) => {
                    if obs.enabled() && !conflict_emitted {
                        conflict_emitted = true;
                        obs.emit(EventKind::LockConflict {
                            action,
                            object,
                            colour,
                            mode,
                        });
                    }
                    // Refresh the wait-for edges to the current blockers.
                    let blockers = Self::blockers(&state, ancestry, action, object, colour, mode);
                    for &old in &registered {
                        state.graph.remove_wait(action, old);
                    }
                    registered.clear();
                    let mut victim_is_self = false;
                    for blocker in blockers {
                        registered.push(blocker);
                        if let Some(report) = state.graph.add_wait(action, blocker, true) {
                            if report.victim == action {
                                victim_is_self = true;
                            } else {
                                state
                                    .interrupts
                                    .insert(report.victim, Interrupt::DeadlockVictim);
                                self.changed.notify_all();
                            }
                        }
                    }
                    if victim_is_self {
                        break Err(LockError::DeadlockVictim { object });
                    }
                    if parked_since.is_none() {
                        parked_since = Some(Instant::now());
                        self.waits_started.fetch_add(1, Ordering::Relaxed);
                    }
                    let timed_out = match deadline {
                        Some(deadline) => {
                            let now = Instant::now();
                            if now >= deadline {
                                true
                            } else {
                                self.changed
                                    .wait_for(&mut state, deadline - now)
                                    .timed_out()
                            }
                        }
                        None => {
                            self.changed.wait(&mut state);
                            false
                        }
                    };
                    if timed_out {
                        // One final check before giving up: a grant or
                        // interrupt that raced the deadline (the lock
                        // was released, or we were victimised, just as
                        // the wait expired) must not be dropped on the
                        // floor.
                        if let Some(interrupt) = state.interrupts.remove(&action) {
                            break Err(match interrupt {
                                Interrupt::DeadlockVictim => LockError::DeadlockVictim { object },
                                Interrupt::Cancelled => LockError::ActionNotActive { action },
                            });
                        }
                        if let Ok(outcome) =
                            self.check_and_apply(&mut state, ancestry, action, object, colour, mode)
                        {
                            break Ok(outcome);
                        }
                        break Err(LockError::Timeout { object });
                    }
                }
            }
        };
        state.waiting.remove(&action);
        for &old in &registered {
            state.graph.remove_wait(action, old);
        }
        drop(state);
        if let Some(since) = parked_since {
            let waited = u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.wait_micros.fetch_add(waited, Ordering::Relaxed);
            obs.observe("locks.wait_us", waited);
        }
        if obs.enabled() && result.is_ok() {
            obs.emit(EventKind::LockGrant {
                action,
                object,
                colour,
                mode,
            });
        }
        result
    }

    /// Registers an *external* wait edge (e.g. a parent joined on a
    /// synchronously invoked independent action) and reports whether it
    /// closes a cycle.
    ///
    /// External waiters are never chosen as deadlock victims; if the
    /// cycle has an interruptible lock-waiter, that waiter is flagged and
    /// woken. The caller must pair this with
    /// [`LockTable::remove_external_wait`].
    pub fn add_external_wait(
        &self,
        waiter: ActionId,
        target: ActionId,
    ) -> Option<crate::DeadlockReport> {
        let mut state = self.state.lock();
        let report = state.graph.add_wait(waiter, target, false);
        if let Some(report) = &report {
            if report.victim != waiter {
                state
                    .interrupts
                    .insert(report.victim, Interrupt::DeadlockVictim);
                self.changed.notify_all();
            }
        }
        report
    }

    /// Removes an external wait edge added with
    /// [`LockTable::add_external_wait`].
    pub fn remove_external_wait(&self, waiter: ActionId, target: ActionId) {
        self.state.lock().graph.remove_wait(waiter, target);
    }

    /// Makes an in-progress wait by `action` fail with
    /// [`LockError::ActionNotActive`]. Used when an action is aborted
    /// from another thread.
    ///
    /// If the action is not currently blocked in
    /// [`LockTable::acquire`] this is a no-op: nothing would ever
    /// consume the interrupt, so posting one would leak it and poison
    /// a later reuse of the same `ActionId`.
    pub fn cancel_waiter(&self, action: ActionId) {
        let mut state = self.state.lock();
        if state.waiting.contains(&action) {
            state.interrupts.insert(action, Interrupt::Cancelled);
            self.changed.notify_all();
        }
    }

    /// Discards a pending interrupt for `action`, if any (the action
    /// finished its work without needing another lock).
    pub fn clear_interrupt(&self, action: ActionId) {
        self.state.lock().interrupts.remove(&action);
    }

    /// Releases every lock `action` holds in `colour` (the action is
    /// outermost for that colour and committed). Returns the objects
    /// whose lock sets changed.
    pub fn release_colour(&self, action: ActionId, colour: Colour) -> Vec<ObjectId> {
        let mut state = self.state.lock();
        let mut touched = Vec::new();
        state.objects.retain(|&object, holders| {
            let before = holders.len();
            holders.retain(|e| !(e.action == action && e.colour == colour));
            if holders.len() != before {
                touched.push(object);
            }
            !holders.is_empty()
        });
        if !touched.is_empty() {
            self.changed.notify_all();
        }
        drop(state);
        let obs = self.obs();
        if obs.enabled() {
            for &object in &touched {
                obs.emit(EventKind::LockRelease {
                    action,
                    object,
                    colour,
                });
            }
        }
        touched
    }

    /// Transfers every lock `from` holds in `colour` to `to` (the
    /// committing action's closest ancestor possessing `colour`).
    ///
    /// If the ancestor already holds a lock on the same object in the
    /// same colour, the two merge into the strongest mode — the paper's
    /// "the parent will hold each of the locks in the same mode as the
    /// child held them". Returns the objects affected.
    pub fn inherit_colour(&self, from: ActionId, colour: Colour, to: ActionId) -> Vec<ObjectId> {
        let mut state = self.state.lock();
        let mut touched = Vec::new();
        for (&object, holders) in state.objects.iter_mut() {
            let Some(pos) = holders
                .iter()
                .position(|e| e.action == from && e.colour == colour)
            else {
                continue;
            };
            let child_mode = holders[pos].mode;
            holders.remove(pos);
            match holders
                .iter_mut()
                .find(|e| e.action == to && e.colour == colour)
            {
                Some(parent_entry) => {
                    parent_entry.mode = parent_entry.mode.strongest(child_mode);
                }
                None => holders.push(LockEntry::new(to, colour, child_mode)),
            }
            touched.push(object);
        }
        if !touched.is_empty() {
            self.changed.notify_all();
        }
        drop(state);
        let obs = self.obs();
        if obs.enabled() {
            for &object in &touched {
                obs.emit(EventKind::LockInherit {
                    from,
                    to,
                    object,
                    colour,
                });
            }
        }
        touched
    }

    /// Discards every lock `action` holds, in every colour and mode (the
    /// action aborted). Ancestors holding the same locks keep them.
    /// Returns the objects whose lock sets changed.
    pub fn discard_action(&self, action: ActionId) -> Vec<ObjectId> {
        let mut state = self.state.lock();
        let mut touched = Vec::new();
        let mut dropped: Vec<(ObjectId, Colour)> = Vec::new();
        state.objects.retain(|&object, holders| {
            let before = holders.len();
            holders.retain(|e| {
                if e.action == action {
                    dropped.push((object, e.colour));
                    false
                } else {
                    true
                }
            });
            if holders.len() != before {
                touched.push(object);
            }
            !holders.is_empty()
        });
        state.graph.remove_action(action);
        state.interrupts.remove(&action);
        self.changed.notify_all();
        drop(state);
        let obs = self.obs();
        if obs.enabled() {
            for &(object, colour) in &dropped {
                obs.emit(EventKind::LockRelease {
                    action,
                    object,
                    colour,
                });
            }
        }
        touched
    }

    /// Returns the current holders of `object`.
    #[must_use]
    pub fn holders(&self, object: ObjectId) -> Vec<LockEntry> {
        self.state
            .lock()
            .objects
            .get(&object)
            .cloned()
            .unwrap_or_default()
    }

    /// Returns every lock held by `action`, across all objects and
    /// colours.
    #[must_use]
    pub fn locks_of(&self, action: ActionId) -> Vec<LockSnapshot> {
        let state = self.state.lock();
        let mut snapshots: Vec<LockSnapshot> = state
            .objects
            .iter()
            .flat_map(|(&object, holders)| {
                holders
                    .iter()
                    .filter(|e| e.action == action)
                    .map(move |e| LockSnapshot {
                        object,
                        colour: e.colour,
                        mode: e.mode,
                    })
            })
            .collect();
        snapshots.sort_by_key(|s| (s.object, s.colour));
        snapshots
    }

    /// Returns the objects `action` holds in `colour`, with the held
    /// mode. Drives per-colour commit in the runtime.
    #[must_use]
    pub fn locks_of_colour(&self, action: ActionId, colour: Colour) -> Vec<(ObjectId, LockMode)> {
        let state = self.state.lock();
        let mut locks: Vec<(ObjectId, LockMode)> = state
            .objects
            .iter()
            .flat_map(|(&object, holders)| {
                holders
                    .iter()
                    .filter(|e| e.action == action && e.colour == colour)
                    .map(move |e| (object, e.mode))
            })
            .collect();
        locks.sort_by_key(|&(object, _)| object);
        locks
    }

    /// Returns the total number of granted lock entries (for tests and
    /// metrics).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.state.lock().objects.values().map(Vec::len).sum()
    }

    fn check_and_apply(
        &self,
        state: &mut TableState,
        ancestry: &dyn DynAncestry,
        action: ActionId,
        object: ObjectId,
        colour: Colour,
        mode: LockMode,
    ) -> Result<AcquireOutcome, chroma_base::LockDenied> {
        let holders = state.objects.entry(object).or_default();
        if let Some(own) = holders
            .iter()
            .find(|e| e.action == action && e.colour == colour)
        {
            if own.mode >= mode {
                if holders.is_empty() {
                    state.objects.remove(&object);
                }
                return Ok(AcquireOutcome::AlreadyHeld);
            }
        }
        self.policy
            .permits(ancestry, holders, action, colour, mode)?;
        match holders
            .iter_mut()
            .find(|e| e.action == action && e.colour == colour)
        {
            Some(own) => {
                own.mode = own.mode.strongest(mode);
                Ok(AcquireOutcome::Upgraded)
            }
            None => {
                holders.push(LockEntry::new(action, colour, mode));
                Ok(AcquireOutcome::Granted)
            }
        }
    }

    /// Identifies the holders that currently block `action`'s request
    /// (for wait-for edges). Mirrors the policy's conflict structure
    /// conservatively: any non-ancestor exclusive holder, every
    /// non-ancestor holder for exclusive requests, and any differently
    /// coloured write holder for write requests.
    fn blockers(
        state: &TableState,
        ancestry: &dyn DynAncestry,
        action: ActionId,
        object: ObjectId,
        colour: Colour,
        mode: LockMode,
    ) -> Vec<ActionId> {
        let Some(holders) = state.objects.get(&object) else {
            return Vec::new();
        };
        let mut blockers: HashSet<ActionId> = HashSet::new();
        for holder in holders {
            if holder.action == action {
                continue;
            }
            let ancestor = ancestry.is_ancestor_or_self(holder.action, action);
            let conflicting = match mode {
                LockMode::Read => holder.mode.is_exclusive() && !ancestor,
                LockMode::ExclusiveRead => !ancestor,
                LockMode::Write => {
                    !ancestor || (holder.mode == LockMode::Write && holder.colour != colour)
                }
            };
            if conflicting {
                blockers.insert(holder.action);
            }
        }
        let mut blockers: Vec<ActionId> = blockers.into_iter().collect();
        blockers.sort();
        blockers
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for LockTable<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("LockTable")
            .field("policy", &self.policy)
            .field("objects", &state.objects.len())
            .field(
                "entries",
                &state.objects.values().map(Vec::len).sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassicPolicy, ColouredPolicy, FlatAncestry};
    use std::sync::Arc;

    fn a(n: u64) -> ActionId {
        ActionId::from_raw(n)
    }
    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }
    fn red() -> Colour {
        Colour::from_index(0)
    }
    fn blue() -> Colour {
        Colour::from_index(1)
    }

    #[test]
    fn grant_upgrade_already_held() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        assert_eq!(
            table
                .try_acquire(&ctx, a(1), o(1), red(), LockMode::Read)
                .unwrap(),
            AcquireOutcome::Granted
        );
        assert_eq!(
            table
                .try_acquire(&ctx, a(1), o(1), red(), LockMode::Read)
                .unwrap(),
            AcquireOutcome::AlreadyHeld
        );
        assert_eq!(
            table
                .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
                .unwrap(),
            AcquireOutcome::Upgraded
        );
        assert_eq!(
            table
                .try_acquire(&ctx, a(1), o(1), red(), LockMode::Read)
                .unwrap(),
            AcquireOutcome::AlreadyHeld
        );
    }

    #[test]
    fn xread_then_write_same_colour_upgrades() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::ExclusiveRead)
            .unwrap();
        assert_eq!(
            table
                .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
                .unwrap(),
            AcquireOutcome::Upgraded
        );
    }

    #[test]
    fn conflicting_try_acquire_is_denied() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        let err = table
            .try_acquire(&ctx, a(2), o(1), red(), LockMode::Read)
            .unwrap_err();
        assert!(matches!(err, LockError::Denied { .. }));
    }

    #[test]
    fn release_colour_frees_only_that_colour() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        table
            .try_acquire(&ctx, a(1), o(2), blue(), LockMode::Write)
            .unwrap();
        let touched = table.release_colour(a(1), red());
        assert_eq!(touched, vec![o(1)]);
        assert!(table.holders(o(1)).is_empty());
        assert_eq!(table.holders(o(2)).len(), 1);
    }

    #[test]
    fn inherit_moves_locks_to_parent_with_merge() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        ctx.set_parent(a(2), a(1));
        // Parent already read-holds o1 in red; child write-holds o1 and o2.
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Read)
            .unwrap();
        table
            .try_acquire(&ctx, a(2), o(1), red(), LockMode::Write)
            .unwrap();
        table
            .try_acquire(&ctx, a(2), o(2), red(), LockMode::Write)
            .unwrap();
        let mut touched = table.inherit_colour(a(2), red(), a(1));
        touched.sort();
        assert_eq!(touched, vec![o(1), o(2)]);
        let holders = table.holders(o(1));
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].action, a(1));
        assert_eq!(holders[0].mode, LockMode::Write); // merged to strongest
        assert_eq!(table.holders(o(2))[0].action, a(1));
    }

    #[test]
    fn discard_keeps_ancestor_locks() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        ctx.set_parent(a(2), a(1));
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        table
            .try_acquire(&ctx, a(2), o(1), red(), LockMode::Write)
            .unwrap();
        table.discard_action(a(2));
        let holders = table.holders(o(1));
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].action, a(1));
    }

    #[test]
    fn blocking_acquire_wakes_on_release() {
        let table = Arc::new(LockTable::new(ColouredPolicy));
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        let t2 = Arc::clone(&table);
        let ctx2 = ctx.clone();
        let handle = std::thread::spawn(move || {
            t2.acquire(
                &ctx2,
                a(2),
                o(1),
                red(),
                LockMode::Write,
                Some(Duration::from_secs(5)),
            )
        });
        std::thread::sleep(Duration::from_millis(50));
        table.release_colour(a(1), red());
        let outcome = handle.join().unwrap().unwrap();
        assert_eq!(outcome, AcquireOutcome::Granted);
    }

    #[test]
    fn blocking_acquire_times_out() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        let err = table
            .acquire(
                &ctx,
                a(2),
                o(1),
                red(),
                LockMode::Write,
                Some(Duration::from_millis(30)),
            )
            .unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }));
    }

    #[test]
    fn deadlock_is_broken_by_victim_selection() {
        let table = Arc::new(LockTable::new(ClassicPolicy));
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        table
            .try_acquire(&ctx, a(2), o(2), red(), LockMode::Write)
            .unwrap();
        // a(1) waits for o2 (held by a2); a(2) waits for o1 (held by a1).
        let t1 = Arc::clone(&table);
        let c1 = ctx.clone();
        let h1 = std::thread::spawn(move || {
            t1.acquire(
                &c1,
                a(1),
                o(2),
                red(),
                LockMode::Write,
                Some(Duration::from_secs(5)),
            )
        });
        std::thread::sleep(Duration::from_millis(50));
        let r2 = table.acquire(
            &ctx,
            a(2),
            o(1),
            red(),
            LockMode::Write,
            Some(Duration::from_secs(5)),
        );
        // a(2) is the youngest waiter on the cycle: it is the victim.
        assert!(matches!(r2, Err(LockError::DeadlockVictim { .. })));
        // Release a(2)'s locks as its abort would; a(1) then proceeds.
        table.discard_action(a(2));
        assert!(h1.join().unwrap().is_ok());
    }

    #[test]
    fn cancelled_waiter_returns_not_active() {
        let table = Arc::new(LockTable::new(ColouredPolicy));
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        let t2 = Arc::clone(&table);
        let ctx2 = ctx.clone();
        let handle =
            std::thread::spawn(move || t2.acquire(&ctx2, a(2), o(1), red(), LockMode::Write, None));
        std::thread::sleep(Duration::from_millis(50));
        table.cancel_waiter(a(2));
        let err = handle.join().unwrap().unwrap_err();
        assert!(matches!(err, LockError::ActionNotActive { .. }));
    }

    #[test]
    fn grant_racing_the_deadline_is_not_dropped() {
        let table = Arc::new(LockTable::new(ColouredPolicy));
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        let t2 = Arc::clone(&table);
        let ctx2 = ctx.clone();
        let waiter = std::thread::spawn(move || {
            t2.acquire(
                &ctx2,
                a(2),
                o(1),
                red(),
                LockMode::Write,
                Some(Duration::from_millis(40)),
            )
        });
        std::thread::sleep(Duration::from_millis(10));
        // Schedule the release exactly at the deadline: hold the table
        // mutex across the waiter's deadline, free the lock, then let
        // go. The waiter's wait has timed out by the time it
        // reacquires the mutex, but the lock is free — the grant must
        // not be dropped for a Timeout error.
        {
            let mut state = table.state.lock();
            std::thread::sleep(Duration::from_millis(80));
            state.objects.remove(&o(1));
            table.changed.notify_all();
        }
        let outcome = waiter.join().unwrap();
        assert_eq!(outcome.unwrap(), AcquireOutcome::Granted);
    }

    #[test]
    fn cancelled_then_finished_action_id_is_reusable() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        // The runtime's abort ordering: discard locks, then cancel any
        // in-progress wait — but this action is not waiting.
        table.discard_action(a(1));
        table.cancel_waiter(a(1));
        // No interrupt may leak from cancelling a non-waiter...
        assert!(table.state.lock().interrupts.is_empty());
        // ...so a later reuse of the id acquires normally.
        assert_eq!(
            table
                .acquire(
                    &ctx,
                    a(1),
                    o(2),
                    red(),
                    LockMode::Write,
                    Some(Duration::from_millis(100)),
                )
                .unwrap(),
            AcquireOutcome::Granted
        );
    }

    #[test]
    fn locks_of_reports_all_colours() {
        let table = LockTable::new(ColouredPolicy);
        let ctx = FlatAncestry::new();
        table
            .try_acquire(&ctx, a(1), o(1), blue(), LockMode::Write)
            .unwrap();
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::ExclusiveRead)
            .unwrap();
        let locks = table.locks_of(a(1));
        assert_eq!(locks.len(), 2);
        assert_eq!(table.locks_of_colour(a(1), red()).len(), 1);
        assert_eq!(table.locks_of_colour(a(1), blue()).len(), 1);
        assert_eq!(table.entry_count(), 2);
    }

    #[test]
    fn nested_child_gets_ancestor_held_lock() {
        let table = LockTable::new(ClassicPolicy);
        let ctx = FlatAncestry::new();
        ctx.set_parent(a(2), a(1));
        table
            .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
            .unwrap();
        assert!(table
            .try_acquire(&ctx, a(2), o(1), red(), LockMode::Write)
            .is_ok());
        // A stranger still cannot.
        assert!(table
            .try_acquire(&ctx, a(3), o(1), red(), LockMode::Write)
            .is_err());
    }
}
