//! Lock management for chroma actions.
//!
//! This crate implements both lock rule-sets of the paper's §5.2:
//!
//! * the **classic** rules of conventional nested atomic actions
//!   (Moss 1981): reads are shared; writes and exclusive-reads require
//!   every holder to be an ancestor; a committing child's locks are
//!   inherited by its parent; an aborting child's locks are discarded
//!   ([`ClassicPolicy`]);
//! * the **coloured** rules of multi-coloured actions: identical, except
//!   that locks carry a colour, an action may only use colours it
//!   possesses, and a write lock may only be acquired in the colour of
//!   any existing write locks on the object ([`ColouredPolicy`]).
//!
//! A single-colour system under the coloured rules is behaviourally
//! identical to the classic rules — the paper's §5.1 observation — and
//! this crate's property tests check exactly that (grant/deny trace
//! equivalence on random request schedules).
//!
//! The [`LockTable`] provides blocking and non-blocking acquisition,
//! per-colour inheritance and release (driving the commit semantics of
//! the core runtime), and deadlock detection over a wait-for graph that
//! can also record *external* waits (for example, a parent blocked on a
//! synchronously invoked independent action).
//!
//! # Examples
//!
//! ```
//! use chroma_base::{ActionId, Colour, LockMode, ObjectId};
//! use chroma_locks::{ColouredPolicy, FlatAncestry, LockTable};
//!
//! let table = LockTable::new(ColouredPolicy);
//! let ctx = FlatAncestry::new();
//! let red = Colour::from_index(0);
//! let (a, b) = (ActionId::from_raw(1), ActionId::from_raw(2));
//! let o = ObjectId::from_raw(1);
//!
//! table.try_acquire(&ctx, a, o, red, LockMode::Read)?;
//! table.try_acquire(&ctx, b, o, red, LockMode::Read)?; // reads are shared
//! assert!(table
//!     .try_acquire(&ctx, b, o, red, LockMode::Write)
//!     .is_err()); // a's read lock blocks the upgrade
//! # Ok::<(), chroma_base::LockError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ancestry;
mod deadlock;
mod entry;
mod policy;
mod table;

pub use ancestry::{Ancestry, FlatAncestry};
pub use deadlock::{DeadlockReport, WaitForGraph};
pub use entry::{LockEntry, LockSnapshot};
pub use policy::{ClassicPolicy, ColouredPolicy, LockPolicy};
pub use table::{AcquireOutcome, LockTable, WaitStats, DEFAULT_LOCK_SHARDS, MAX_LOCK_SHARDS};
