//! Sharded lock-table semantics: cross-shard deadlock detection,
//! disjoint-object scalability and multi-shard bookkeeping walks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chroma_base::{ActionId, Colour, LockError, LockMode, ObjectId};
use chroma_locks::{ColouredPolicy, FlatAncestry, LockTable, DEFAULT_LOCK_SHARDS};
use chroma_obs::{EventBus, Obs, Observable};

fn a(n: u64) -> ActionId {
    ActionId::from_raw(n)
}
fn o(n: u64) -> ObjectId {
    ObjectId::from_raw(n)
}
fn red() -> Colour {
    Colour::from_index(0)
}

/// Two object ids guaranteed to land on different shards.
fn objects_on_distinct_shards<P>(table: &LockTable<P>) -> (ObjectId, ObjectId) {
    let first = o(1);
    let home = table.shard_of(first);
    for raw in 2..10_000 {
        if table.shard_of(o(raw)) != home {
            return (first, o(raw));
        }
    }
    panic!("hash never left shard {home} — sharding is broken");
}

/// A deadlock whose cycle spans two shards must still be detected:
/// the waits-for graph is global even though lock state is sharded.
#[test]
fn cross_shard_deadlock_is_detected_and_victimises_one_action() {
    let table = Arc::new(LockTable::new(ColouredPolicy));
    assert!(table.shard_count() > 1, "test needs a sharded table");
    let (oa, ob) = objects_on_distinct_shards(&table);

    let ctx = FlatAncestry::new();
    table
        .try_acquire(&ctx, a(1), oa, red(), LockMode::Write)
        .unwrap();
    table
        .try_acquire(&ctx, a(2), ob, red(), LockMode::Write)
        .unwrap();

    let victims = Arc::new(AtomicUsize::new(0));
    let winners = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for (me, wanted) in [(1u64, ob), (2, oa)] {
        let table = Arc::clone(&table);
        let ctx = ctx.clone();
        let victims = Arc::clone(&victims);
        let winners = Arc::clone(&winners);
        handles.push(std::thread::spawn(move || {
            match table.acquire(
                &ctx,
                a(me),
                wanted,
                red(),
                LockMode::Write,
                Some(Duration::from_secs(30)),
            ) {
                Err(LockError::DeadlockVictim { object }) => {
                    assert_eq!(object, wanted);
                    victims.fetch_add(1, Ordering::SeqCst);
                    // Aborting the victim unblocks the survivor.
                    table.release_colour(a(me), red());
                    table.retire_action(a(me));
                }
                Ok(_) => {
                    winners.fetch_add(1, Ordering::SeqCst);
                }
                Err(other) => panic!("expected deadlock or grant, got {other:?}"),
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(victims.load(Ordering::SeqCst), 1, "exactly one victim");
    assert_eq!(winners.load(Ordering::SeqCst), 1, "exactly one survivor");
}

/// Eight threads hammering disjoint objects never park: disjoint-object
/// acquires touch different shards (or at least different wait queues)
/// and must not manufacture waits.
#[test]
fn disjoint_object_burst_records_zero_waits() {
    let table = Arc::new(LockTable::new(ColouredPolicy));
    let ctx = FlatAncestry::new();
    let threads = 8;
    let per_thread = 200u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let table = Arc::clone(&table);
        let ctx = ctx.clone();
        handles.push(std::thread::spawn(move || {
            let action = a(t + 1);
            for i in 0..per_thread {
                let object = o(1 + t * per_thread + i);
                table
                    .acquire(&ctx, action, object, red(), LockMode::Write, None)
                    .unwrap();
            }
            let released = table.release_colour(action, red());
            assert_eq!(released.len(), per_thread as usize);
            table.retire_action(action);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        table.wait_stats().waits,
        0,
        "disjoint objects must not park"
    );
    assert_eq!(table.entry_count(), 0);
    for shard in table.shard_wait_stats() {
        assert_eq!(shard.waits, 0);
    }
}

/// `inherit_colour` and `release_colour` walk every shard the action
/// touched; nothing may be stranded on a far shard.
#[test]
fn inherit_and_release_span_all_shards() {
    let table = LockTable::new(ColouredPolicy);
    let ctx = FlatAncestry::new();
    let count = 4 * DEFAULT_LOCK_SHARDS as u64;
    let mut shards_touched = std::collections::HashSet::new();
    for raw in 0..count {
        table
            .try_acquire(&ctx, a(1), o(raw), red(), LockMode::Write)
            .unwrap();
        shards_touched.insert(table.shard_of(o(raw)));
    }
    assert!(shards_touched.len() > 1, "objects should span shards");

    let moved = table.inherit_colour(a(1), red(), a(2));
    assert_eq!(moved.len(), count as usize);
    assert!(table.locks_of(a(1)).is_empty());
    assert_eq!(table.locks_of(a(2)).len(), count as usize);

    let released = table.release_colour(a(2), red());
    assert_eq!(released.len(), count as usize);
    assert_eq!(table.entry_count(), 0);
}

/// A parked wait is attributed to its shard: the contention metric and
/// the per-shard wait histogram both fire.
#[test]
fn contended_wait_emits_shard_contention_metric() {
    let table = Arc::new(LockTable::new(ColouredPolicy));
    let bus = Arc::new(EventBus::new());
    table.install_obs(Obs::new(bus.clone()));
    let ctx = FlatAncestry::new();

    let hot = o(42);
    let shard = table.shard_of(hot);
    table
        .try_acquire(&ctx, a(1), hot, red(), LockMode::Write)
        .unwrap();
    let waiter = {
        let table = Arc::clone(&table);
        let ctx = ctx.clone();
        std::thread::spawn(move || {
            table.acquire(
                &ctx,
                a(2),
                hot,
                red(),
                LockMode::Write,
                Some(Duration::from_secs(10)),
            )
        })
    };
    std::thread::sleep(Duration::from_millis(30));
    table.release_colour(a(1), red());
    waiter.join().unwrap().unwrap();

    let snapshot = bus.snapshot();
    assert!(
        snapshot.histogram("locks.shard_contention").is_some(),
        "missing locks.shard_contention"
    );
    let per_shard = format!("locks.wait_us.shard{shard}");
    assert!(
        snapshot.histogram(&per_shard).is_some(),
        "missing {per_shard}"
    );
    let stats = table.shard_wait_stats();
    assert_eq!(stats[shard].waits, 1);
}
