//! Wait statistics: blocking acquisitions are counted and timed.

use std::sync::Arc;
use std::time::Duration;

use chroma_base::{ActionId, Colour, LockMode, ObjectId};
use chroma_locks::{ColouredPolicy, FlatAncestry, LockTable};

fn a(n: u64) -> ActionId {
    ActionId::from_raw(n)
}
fn o(n: u64) -> ObjectId {
    ObjectId::from_raw(n)
}
fn red() -> Colour {
    Colour::from_index(0)
}

#[test]
fn uncontended_acquisitions_record_no_waits() {
    let table = LockTable::new(ColouredPolicy);
    let ctx = FlatAncestry::new();
    for i in 0..10 {
        table
            .acquire(&ctx, a(i), o(i), red(), LockMode::Write, None)
            .unwrap();
    }
    let stats = table.wait_stats();
    assert_eq!(stats.waits, 0);
    assert_eq!(stats.total_wait_micros, 0);
    assert_eq!(stats.mean_wait_micros(), 0.0);
}

#[test]
fn contended_acquisition_records_one_timed_wait() {
    let table = Arc::new(LockTable::new(ColouredPolicy));
    let ctx = FlatAncestry::new();
    table
        .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
        .unwrap();
    let t2 = Arc::clone(&table);
    let ctx2 = ctx.clone();
    let waiter = std::thread::spawn(move || {
        t2.acquire(
            &ctx2,
            a(2),
            o(1),
            red(),
            LockMode::Write,
            Some(Duration::from_secs(5)),
        )
    });
    std::thread::sleep(Duration::from_millis(40));
    table.release_colour(a(1), red());
    waiter.join().unwrap().unwrap();
    let stats = table.wait_stats();
    assert_eq!(stats.waits, 1);
    // Parked for roughly the 40ms hold; definitely >= 20ms.
    assert!(
        stats.total_wait_micros >= 20_000,
        "waited only {}µs",
        stats.total_wait_micros
    );
    assert!(stats.mean_wait_micros() >= 20_000.0);
}

#[test]
fn timeout_also_counts_as_a_wait() {
    let table = LockTable::new(ColouredPolicy);
    let ctx = FlatAncestry::new();
    table
        .try_acquire(&ctx, a(1), o(1), red(), LockMode::Write)
        .unwrap();
    let _ = table.acquire(
        &ctx,
        a(2),
        o(1),
        red(),
        LockMode::Write,
        Some(Duration::from_millis(20)),
    );
    let stats = table.wait_stats();
    assert_eq!(stats.waits, 1);
    assert!(stats.total_wait_micros >= 15_000);
}
