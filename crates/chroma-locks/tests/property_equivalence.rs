//! Property tests for the lock managers.
//!
//! The central one encodes the paper's §5.1 observation: *"if all the
//! actions in a coloured system possess the same single colour then the
//! system reverts to being just a normal atomic action system"* — the
//! coloured and classic rule-sets must produce identical grant/deny
//! traces and identical lock-table states on arbitrary request
//! schedules.

use chroma_base::{ActionId, Colour, LockMode, ObjectId};
use chroma_locks::{ClassicPolicy, ColouredPolicy, FlatAncestry, LockPolicy, LockTable};
use proptest::prelude::*;

const ACTIONS: u64 = 6;
const OBJECTS: u64 = 4;

#[derive(Clone, Debug)]
enum Op {
    Acquire {
        action: u64,
        object: u64,
        mode: LockMode,
    },
    /// Commit: inherit all locks to the parent (or release if
    /// top-level).
    Commit {
        action: u64,
    },
    Abort {
        action: u64,
    },
}

fn mode_strategy() -> impl Strategy<Value = LockMode> {
    prop_oneof![
        Just(LockMode::Read),
        Just(LockMode::Write),
        Just(LockMode::ExclusiveRead),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..ACTIONS, 0..OBJECTS, mode_strategy()).prop_map(|(action, object, mode)| {
            Op::Acquire { action, object, mode }
        }),
        1 => (0..ACTIONS).prop_map(|action| Op::Commit { action }),
        1 => (0..ACTIONS).prop_map(|action| Op::Abort { action }),
    ]
}

/// A random forest over the action ids: parent[i] < i or none.
fn forest_strategy() -> impl Strategy<Value = Vec<Option<u64>>> {
    let mut fields: Vec<BoxedStrategy<Option<u64>>> = Vec::new();
    for i in 0..ACTIONS {
        if i == 0 {
            fields.push(Just(None).boxed());
        } else {
            fields.push(prop_oneof![2 => Just(None), 3 => (0..i).prop_map(Some)].boxed());
        }
    }
    fields
}

fn a(n: u64) -> ActionId {
    ActionId::from_raw(n)
}
fn o(n: u64) -> ObjectId {
    ObjectId::from_raw(n)
}

fn run_trace<P: LockPolicy>(
    table: &LockTable<P>,
    ancestry: &FlatAncestry,
    parents: &[Option<u64>],
    ops: &[Op],
) -> Vec<String> {
    let mut trace = Vec::new();
    let mut terminated = [false; ACTIONS as usize];
    let colour = Colour::from_index(0);
    for op in ops {
        match *op {
            Op::Acquire {
                action,
                object,
                mode,
            } => {
                if terminated[action as usize] {
                    trace.push("skip".to_owned());
                    continue;
                }
                let result = table.try_acquire(ancestry, a(action), o(object), colour, mode);
                trace.push(format!("{result:?}"));
            }
            Op::Commit { action } => {
                if terminated[action as usize] {
                    trace.push("skip".to_owned());
                    continue;
                }
                terminated[action as usize] = true;
                match parents[action as usize] {
                    Some(parent) if !terminated[parent as usize] => {
                        let mut touched = table.inherit_colour(a(action), colour, a(parent));
                        touched.sort();
                        trace.push(format!("inherit {touched:?}"));
                    }
                    _ => {
                        let mut touched = table.release_colour(a(action), colour);
                        touched.sort();
                        trace.push(format!("release {touched:?}"));
                    }
                }
            }
            Op::Abort { action } => {
                if terminated[action as usize] {
                    trace.push("skip".to_owned());
                    continue;
                }
                terminated[action as usize] = true;
                let mut touched = table.discard_action(a(action));
                touched.sort();
                trace.push(format!("discard {touched:?}"));
            }
        }
    }
    trace
}

fn table_state<P: LockPolicy>(table: &LockTable<P>) -> Vec<String> {
    let mut state = Vec::new();
    for obj in 0..OBJECTS {
        let mut holders: Vec<String> = table
            .holders(o(obj))
            .into_iter()
            .map(|e| format!("{}:{:?}", e.action, e.mode))
            .collect();
        holders.sort();
        state.push(format!("{obj}: {holders:?}"));
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// §5.1: a single-colour coloured system IS the classic system.
    #[test]
    fn single_colour_system_equals_classic(
        parents in forest_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let ancestry = FlatAncestry::new();
        for (child, parent) in parents.iter().enumerate() {
            if let Some(p) = parent {
                ancestry.set_parent(a(child as u64), a(*p));
            }
        }
        let coloured = LockTable::new(ColouredPolicy);
        let classic = LockTable::new(ClassicPolicy);
        let trace_coloured = run_trace(&coloured, &ancestry, &parents, &ops);
        let trace_classic = run_trace(&classic, &ancestry, &parents, &ops);
        prop_assert_eq!(trace_coloured, trace_classic);
        prop_assert_eq!(table_state(&coloured), table_state(&classic));
    }

    /// Safety invariant of the coloured rules: at any moment, all write
    /// locks on an object share one colour, and a write lock never
    /// coexists with a non-ancestor's lock.
    #[test]
    fn coloured_write_locks_stay_single_coloured(
        parents in forest_strategy(),
        ops in prop::collection::vec(
            (0..ACTIONS, 0..OBJECTS, 0..3u8, mode_strategy()),
            1..80,
        ),
    ) {
        let ancestry = FlatAncestry::new();
        for (child, parent) in parents.iter().enumerate() {
            if let Some(p) = parent {
                ancestry.set_parent(a(child as u64), a(*p));
            }
        }
        let table = LockTable::new(ColouredPolicy);
        for (action, object, colour, mode) in ops {
            let _ = table.try_acquire(
                &ancestry,
                a(action),
                o(object),
                Colour::from_index(colour as usize),
                mode,
            );
            // Invariant check after every acquisition.
            for obj in 0..OBJECTS {
                let holders = table.holders(o(obj));
                let write_colours: Vec<Colour> = holders
                    .iter()
                    .filter(|e| e.mode == LockMode::Write)
                    .map(|e| e.colour)
                    .collect();
                prop_assert!(
                    write_colours.windows(2).all(|w| w[0] == w[1]),
                    "object {obj} has write locks in several colours: {holders:?}"
                );
                // Exclusive holders pairwise related by ancestry.
                for x in &holders {
                    for y in &holders {
                        if x.mode.is_exclusive() || y.mode.is_exclusive() {
                            prop_assert!(
                                chroma_locks::Ancestry::is_ancestor_or_self(
                                    &ancestry, x.action, y.action
                                ) || chroma_locks::Ancestry::is_ancestor_or_self(
                                    &ancestry, y.action, x.action
                                ),
                                "unrelated exclusive holders on {obj}: {holders:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Abort always fully clears a waiterless action's footprint.
    #[test]
    fn discard_leaves_no_trace(
        ops in prop::collection::vec(
            (0..ACTIONS, 0..OBJECTS, mode_strategy()),
            1..40,
        ),
    ) {
        let ancestry = FlatAncestry::new();
        let table = LockTable::new(ColouredPolicy);
        let colour = Colour::from_index(0);
        for (action, object, mode) in &ops {
            let _ = table.try_acquire(&ancestry, a(*action), o(*object), colour, *mode);
        }
        for action in 0..ACTIONS {
            table.discard_action(a(action));
            prop_assert!(table.locks_of(a(action)).is_empty());
        }
        prop_assert_eq!(table.entry_count(), 0);
    }
}
