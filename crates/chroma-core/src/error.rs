//! The runtime's error type.

use std::error::Error;
use std::fmt;

use chroma_base::{ActionId, Colour, ColourError, LockError, ObjectId};
use chroma_store::codec::CodecError;

/// Errors produced while running actions.
///
/// An error returned from an action body causes the scoped runner to
/// abort the action; [`ActionError::failed`] lets application code signal
/// its own failures through the same channel.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ActionError {
    /// A lock could not be acquired (denied, deadlock victim, timeout or
    /// cancelled).
    Lock(LockError),
    /// An object state failed to encode or decode.
    Codec(CodecError),
    /// The object does not exist in volatile or stable storage.
    NoSuchObject(ObjectId),
    /// The action is not active (it already committed or aborted).
    NotActive(ActionId),
    /// A nested action was begun under a parent that is not active.
    ParentNotActive(ActionId),
    /// Commit was requested while child actions are still active.
    ChildrenActive(ActionId),
    /// The action tried to use a colour it does not possess.
    ColourNotHeld {
        /// The offending action.
        action: ActionId,
        /// The colour it does not possess.
        colour: Colour,
    },
    /// An action was created with an empty colour set.
    NoColours,
    /// Colour allocation failed.
    Colour(ColourError),
    /// The permanence backend could not install a commit batch.
    Backend(crate::backend::BackendError),
    /// An application-level failure (aborts the enclosing action).
    Failed(String),
}

impl ActionError {
    /// Creates an application-level failure that will abort the
    /// enclosing action when returned from its body.
    #[must_use]
    pub fn failed(message: impl Into<String>) -> Self {
        ActionError::Failed(message.into())
    }

    /// Returns `true` if the error is a deadlock-victim notification,
    /// meaning the action should abort and may be retried.
    #[must_use]
    pub fn is_deadlock_victim(&self) -> bool {
        matches!(self, ActionError::Lock(LockError::DeadlockVictim { .. }))
    }
}

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionError::Lock(e) => write!(f, "lock failure: {e}"),
            ActionError::Codec(e) => write!(f, "state codec failure: {e}"),
            ActionError::NoSuchObject(o) => write!(f, "no such object: {o}"),
            ActionError::NotActive(a) => write!(f, "{a} is not active"),
            ActionError::ParentNotActive(a) => write!(f, "parent {a} is not active"),
            ActionError::ChildrenActive(a) => {
                write!(f, "{a} still has active child actions")
            }
            ActionError::ColourNotHeld { action, colour } => {
                write!(f, "{action} does not possess colour {colour}")
            }
            ActionError::NoColours => write!(f, "an action must possess at least one colour"),
            ActionError::Colour(e) => write!(f, "colour allocation failure: {e}"),
            ActionError::Backend(e) => write!(f, "permanence failure: {e}"),
            ActionError::Failed(msg) => write!(f, "action failed: {msg}"),
        }
    }
}

impl Error for ActionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ActionError::Lock(e) => Some(e),
            ActionError::Codec(e) => Some(e),
            ActionError::Colour(e) => Some(e),
            ActionError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LockError> for ActionError {
    fn from(e: LockError) -> Self {
        ActionError::Lock(e)
    }
}

impl From<CodecError> for ActionError {
    fn from(e: CodecError) -> Self {
        ActionError::Codec(e)
    }
}

impl From<ColourError> for ActionError {
    fn from(e: ColourError) -> Self {
        ActionError::Colour(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ActionError::NoSuchObject(ObjectId::from_raw(7));
        assert!(e.to_string().contains("O7"));
        let e = ActionError::failed("makefile missing");
        assert!(e.to_string().contains("makefile missing"));
    }

    #[test]
    fn deadlock_victim_is_detected() {
        let e = ActionError::Lock(LockError::DeadlockVictim {
            object: ObjectId::from_raw(1),
        });
        assert!(e.is_deadlock_victim());
        assert!(!ActionError::NoColours.is_deadlock_victim());
    }

    #[test]
    fn sources_are_chained() {
        let e = ActionError::Lock(LockError::Timeout {
            object: ObjectId::from_raw(1),
        });
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&ActionError::NoColours).is_none());
    }
}
