//! The live action tree.

use std::collections::HashMap;

use chroma_base::{ActionId, Colour, ColourSet};
use chroma_locks::Ancestry;
use parking_lot::RwLock;

/// Lifecycle state of an action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ActionState {
    /// Running; may acquire locks and perform operations.
    Active,
    /// Terminated normally; per-colour effects inherited or persisted.
    Committed,
    /// Terminated abnormally; all its effects undone.
    Aborted,
}

#[derive(Clone, Debug)]
struct Node {
    parent: Option<ActionId>,
    colours: ColourSet,
    state: ActionState,
    children: Vec<ActionId>,
}

/// Bookkeeping for every action a runtime has started: parents, colour
/// sets, lifecycle states.
///
/// Implements [`Ancestry`] so the lock table can answer "is this holder
/// an ancestor of the requester" directly from the live tree.
#[derive(Debug, Default)]
pub struct ActionTree {
    nodes: RwLock<HashMap<ActionId, Node>>,
}

impl ActionTree {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        ActionTree::default()
    }

    /// Registers a new active action.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered (runtime ids are unique).
    pub fn insert(&self, id: ActionId, parent: Option<ActionId>, colours: ColourSet) {
        let mut nodes = self.nodes.write();
        if let Some(parent) = parent {
            if let Some(parent_node) = nodes.get_mut(&parent) {
                parent_node.children.push(id);
            }
        }
        let previous = nodes.insert(
            id,
            Node {
                parent,
                colours,
                state: ActionState::Active,
                children: Vec::new(),
            },
        );
        assert!(previous.is_none(), "duplicate action id {id}");
    }

    /// Returns the state of `id`, if registered.
    #[must_use]
    pub fn state(&self, id: ActionId) -> Option<ActionState> {
        self.nodes.read().get(&id).map(|n| n.state)
    }

    /// Returns `true` if `id` is registered and active.
    #[must_use]
    pub fn is_active(&self, id: ActionId) -> bool {
        self.state(id) == Some(ActionState::Active)
    }

    /// Sets the state of `id`. No-op for unknown ids.
    pub fn set_state(&self, id: ActionId, state: ActionState) {
        if let Some(node) = self.nodes.write().get_mut(&id) {
            node.state = state;
        }
    }

    /// Returns the colour set of `id`, if registered.
    #[must_use]
    pub fn colours(&self, id: ActionId) -> Option<ColourSet> {
        self.nodes.read().get(&id).map(|n| n.colours)
    }

    /// Returns the parent of `id` (`None` for top-level or unknown).
    #[must_use]
    pub fn parent(&self, id: ActionId) -> Option<ActionId> {
        self.nodes.read().get(&id).and_then(|n| n.parent)
    }

    /// Returns the children of `id` in creation order.
    #[must_use]
    pub fn children(&self, id: ActionId) -> Vec<ActionId> {
        self.nodes
            .read()
            .get(&id)
            .map(|n| n.children.clone())
            .unwrap_or_default()
    }

    /// Returns the *active* children of `id`.
    #[must_use]
    pub fn active_children(&self, id: ActionId) -> Vec<ActionId> {
        let nodes = self.nodes.read();
        nodes
            .get(&id)
            .map(|n| {
                n.children
                    .iter()
                    .copied()
                    .filter(|c| {
                        nodes
                            .get(c)
                            .is_some_and(|cn| cn.state == ActionState::Active)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Walks up from the *parent* of `id` and returns the closest
    /// ancestor possessing `colour`.
    ///
    /// This is the inheritance target of §5.2: "when a coloured action
    /// commits, its locks of colour a are inherited by the closest
    /// ancestor coloured a"; `None` means the action is outermost for
    /// that colour and its colour-`a` effects become permanent.
    #[must_use]
    pub fn closest_ancestor_with_colour(&self, id: ActionId, colour: Colour) -> Option<ActionId> {
        let nodes = self.nodes.read();
        let mut cursor = nodes.get(&id)?.parent;
        while let Some(ancestor) = cursor {
            let node = nodes.get(&ancestor)?;
            if node.colours.contains(colour) {
                return Some(ancestor);
            }
            cursor = node.parent;
        }
        None
    }

    /// Returns every currently active action, unordered.
    #[must_use]
    pub fn active_actions(&self) -> Vec<ActionId> {
        self.nodes
            .read()
            .iter()
            .filter(|(_, n)| n.state == ActionState::Active)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Removes terminated actions that have no registered descendants,
    /// bounding memory in long-running systems. Returns how many nodes
    /// were removed.
    pub fn prune_terminated(&self) -> usize {
        let mut nodes = self.nodes.write();
        let mut removed = 0;
        loop {
            let removable: Vec<ActionId> = nodes
                .iter()
                .filter(|(_, n)| n.state != ActionState::Active && n.children.is_empty())
                .map(|(&id, _)| id)
                .collect();
            if removable.is_empty() {
                break;
            }
            for id in removable {
                let parent = nodes.get(&id).and_then(|n| n.parent);
                nodes.remove(&id);
                removed += 1;
                if let Some(parent) = parent {
                    if let Some(parent_node) = nodes.get_mut(&parent) {
                        parent_node.children.retain(|&c| c != id);
                    }
                }
            }
        }
        removed
    }

    /// Returns the number of registered actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    /// Returns `true` if no actions are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.read().is_empty()
    }
}

impl Ancestry for ActionTree {
    fn is_ancestor_or_self(&self, candidate: ActionId, of: ActionId) -> bool {
        if candidate == of {
            return true;
        }
        let nodes = self.nodes.read();
        let mut cursor = of;
        while let Some(node) = nodes.get(&cursor) {
            match node.parent {
                Some(parent) if parent == candidate => return true,
                Some(parent) => cursor = parent,
                None => return false,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> ActionId {
        ActionId::from_raw(n)
    }
    fn red() -> Colour {
        Colour::from_index(0)
    }
    fn blue() -> Colour {
        Colour::from_index(1)
    }

    #[test]
    fn insert_and_query() {
        let tree = ActionTree::new();
        tree.insert(a(1), None, ColourSet::single(blue()));
        tree.insert(a(2), Some(a(1)), ColourSet::single(red()).with(blue()));
        assert_eq!(tree.state(a(1)), Some(ActionState::Active));
        assert_eq!(tree.parent(a(2)), Some(a(1)));
        assert_eq!(tree.children(a(1)), vec![a(2)]);
        assert!(tree.colours(a(2)).unwrap().contains(red()));
    }

    #[test]
    fn ancestry_walks_the_chain() {
        let tree = ActionTree::new();
        tree.insert(a(1), None, ColourSet::single(blue()));
        tree.insert(a(2), Some(a(1)), ColourSet::single(blue()));
        tree.insert(a(3), Some(a(2)), ColourSet::single(blue()));
        assert!(tree.is_ancestor_or_self(a(1), a(3)));
        assert!(tree.is_ancestor_or_self(a(3), a(3)));
        assert!(!tree.is_ancestor_or_self(a(3), a(1)));
    }

    #[test]
    fn closest_coloured_ancestor_skips_uncoloured() {
        // Fig. 15: E (blue) inside B (red) inside A (red, blue).
        let tree = ActionTree::new();
        tree.insert(a(1), None, ColourSet::from_iter([red(), blue()]));
        tree.insert(a(2), Some(a(1)), ColourSet::single(red()));
        tree.insert(a(3), Some(a(2)), ColourSet::single(blue()));
        assert_eq!(tree.closest_ancestor_with_colour(a(3), blue()), Some(a(1)));
        assert_eq!(tree.closest_ancestor_with_colour(a(2), red()), Some(a(1)));
        assert_eq!(tree.closest_ancestor_with_colour(a(1), red()), None);
        assert_eq!(tree.closest_ancestor_with_colour(a(1), blue()), None);
    }

    #[test]
    fn active_children_filters_terminated() {
        let tree = ActionTree::new();
        tree.insert(a(1), None, ColourSet::single(blue()));
        tree.insert(a(2), Some(a(1)), ColourSet::single(blue()));
        tree.insert(a(3), Some(a(1)), ColourSet::single(blue()));
        tree.set_state(a(2), ActionState::Committed);
        assert_eq!(tree.active_children(a(1)), vec![a(3)]);
    }

    #[test]
    fn prune_removes_terminated_leaves_recursively() {
        let tree = ActionTree::new();
        tree.insert(a(1), None, ColourSet::single(blue()));
        tree.insert(a(2), Some(a(1)), ColourSet::single(blue()));
        tree.set_state(a(2), ActionState::Committed);
        tree.set_state(a(1), ActionState::Committed);
        let removed = tree.prune_terminated();
        assert_eq!(removed, 2);
        assert!(tree.is_empty());
    }

    #[test]
    fn prune_keeps_active_subtrees() {
        let tree = ActionTree::new();
        tree.insert(a(1), None, ColourSet::single(blue()));
        tree.insert(a(2), Some(a(1)), ColourSet::single(blue()));
        tree.set_state(a(1), ActionState::Committed); // parent done, child active
        assert_eq!(tree.prune_terminated(), 0);
        assert_eq!(tree.len(), 2);
    }
}
