//! The chroma multi-coloured action runtime.
//!
//! Implements the action model of Shrivastava & Wheater (ICDCS 1990):
//! nested atomic actions over persistent objects, generalised by
//! **colours**. Every action possesses a statically assigned set of
//! colours and takes each lock *in* one of them. Per colour, the runtime
//! provides the three classical properties (§5.1):
//!
//! 1. **failure atomicity** — an aborting action's effects on objects
//!    accessed with its colours are undone from before-images;
//! 2. **serializability** — same-coloured actions are serializable via
//!    the coloured two-phase locking rules (caveat: no information flow
//!    between same-coloured actions through differently-coloured nested
//!    actions);
//! 3. **permanence of effect** — when an action *outermost* for a colour
//!    commits, that colour's updates are flushed atomically to stable
//!    storage.
//!
//! A system whose actions all share one colour behaves exactly like a
//! conventional nested atomic action system; richer assignments yield
//! the serializing, glued and independent structures of the paper's §3
//! (implemented in the `chroma-structures` crate).
//!
//! See [`Runtime`] for the entry point and a worked fig. 10 example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod error;
mod runtime;
mod scope;
mod snapshot;
mod tree;
mod undo;

pub use backend::{BackendError, DiskBackend, LocalBackend, PermanenceBackend};
pub use error::ActionError;
pub use runtime::{Runtime, RuntimeBuilder, RuntimeConfig, RuntimeStats};
pub use scope::ActionScope;
pub use snapshot::SnapshotScope;
pub use tree::{ActionState, ActionTree};
pub use undo::{BeforeImage, UndoLog};

// Re-export the vocabulary types so most users need only this crate.
pub use chroma_base::{
    ActionId, Colour, ColourSet, ColourUniverse, LockDenied, LockError, LockMode, NodeId, ObjectId,
};
