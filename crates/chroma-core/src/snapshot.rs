//! Read-only snapshot scopes: lock-free consistent reads.

use std::sync::Arc;

use chroma_base::{ActionId, Colour, ObjectId};
use chroma_store::{codec, SnapshotStamps, StoreBytes};
use serde::de::DeserializeOwned;

use crate::error::ActionError;
use crate::runtime::Runtime;

/// A declared read-only action over one consistent snapshot.
///
/// Obtained from [`Runtime::begin_read_only`]. At open, the scope
/// captures the per-colour *published commit frontier*; every read then
/// serves the newest committed version at or below that frontier —
/// commits that publish later are invisible, so a scan of many objects
/// observes one consistent cut no matter how long it runs.
///
/// Snapshot reads are served from version chains and never touch the
/// lock table: a read-only action cannot block a writer, be blocked by
/// one, or participate in a deadlock. The trade for that freedom is
/// staleness — the scope sees the world as of its open, not "now".
///
/// The scope counts as a committed action when it ends (explicitly via
/// [`end`](SnapshotScope::end) or on drop). A node crash kills open
/// scopes like any other active action; their reads then fail
/// [`ActionError::NotActive`].
///
/// # Examples
///
/// ```
/// use chroma_core::Runtime;
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let rt = Runtime::builder().build();
/// let o = rt.create_object(&1u64)?;
///
/// let snap = rt.begin_read_only();
/// rt.atomic(|a| a.write(o, &2u64))?; // commits after the capture
///
/// assert_eq!(snap.read::<u64>(o)?, 1); // the snapshot still sees 1
/// assert_eq!(rt.read_committed::<u64>(o)?, 2);
/// snap.end();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SnapshotScope<'rt> {
    runtime: &'rt Runtime,
    id: ActionId,
    stamps: Arc<SnapshotStamps>,
}

impl<'rt> SnapshotScope<'rt> {
    pub(crate) fn new(runtime: &'rt Runtime, id: ActionId, stamps: Arc<SnapshotStamps>) -> Self {
        SnapshotScope {
            runtime,
            id,
            stamps,
        }
    }

    /// Returns the action id this snapshot reads as.
    #[must_use]
    pub fn id(&self) -> ActionId {
        self.id
    }

    /// The commit stamp this snapshot captured for `colour` (0 if the
    /// colour had published nothing at open).
    #[must_use]
    pub fn stamp_for(&self, colour: Colour) -> u64 {
        self.stamps.stamp_for(colour)
    }

    /// Reads an object at the snapshot, decoding its state.
    ///
    /// # Errors
    ///
    /// [`ActionError::NotActive`] if the scope was killed by a crash,
    /// [`ActionError::NoSuchObject`] if the object did not exist at the
    /// snapshot, or decode failures.
    pub fn read<T: DeserializeOwned>(&self, object: ObjectId) -> Result<T, ActionError> {
        let bytes = self.runtime.op_snapshot_read(self.id, object)?;
        Ok(codec::from_bytes(&bytes)?)
    }

    /// Reads an object's raw state at the snapshot.
    ///
    /// # Errors
    ///
    /// [`ActionError::NotActive`] if the scope was killed by a crash or
    /// [`ActionError::NoSuchObject`] if the object did not exist at the
    /// snapshot.
    pub fn read_raw(&self, object: ObjectId) -> Result<StoreBytes, ActionError> {
        self.runtime.op_snapshot_read(self.id, object)
    }

    /// Ends the snapshot explicitly (dropping the scope is equivalent).
    pub fn end(self) {}
}

impl Drop for SnapshotScope<'_> {
    fn drop(&mut self) {
        self.runtime.end_read_only(self.id);
    }
}
