//! Per-action, per-colour before-images.
//!
//! When an action first writes an object under a colour, the object's
//! prior state is recorded here. The record's fate follows the colour's
//! commit path (§5.2):
//!
//! * **abort** — the before-image is restored to volatile storage;
//! * **commit, inner for the colour** — the record transfers to the
//!   closest ancestor possessing the colour (which keeps its own, older,
//!   image if it already has one — exactly mirroring lock inheritance);
//! * **commit, outermost for the colour** — the record identifies the
//!   object as part of the colour's permanence batch, then is dropped.

use std::collections::HashMap;

use chroma_base::{ActionId, Colour, ObjectId};
use chroma_store::StoreBytes;
use parking_lot::Mutex;

/// A saved prior state: `None` means the object did not exist before the
/// first write (it was created inside the action), so undo removes it.
pub type BeforeImage = Option<StoreBytes>;

/// Before-images of one action, keyed by object and colour.
type ActionImages = HashMap<(ObjectId, Colour), BeforeImage>;

/// The undo log: before-images for every active action.
#[derive(Debug, Default)]
pub struct UndoLog {
    records: Mutex<HashMap<ActionId, ActionImages>>,
}

impl UndoLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        UndoLog::default()
    }

    /// Records `prior` as the before-image of `(object, colour)` for
    /// `action`, unless the action already has one (the first image
    /// wins: later writes by the same action must not overwrite it).
    pub fn record_before(
        &self,
        action: ActionId,
        object: ObjectId,
        colour: Colour,
        prior: BeforeImage,
    ) {
        self.records
            .lock()
            .entry(action)
            .or_default()
            .entry((object, colour))
            .or_insert(prior);
    }

    /// Returns `true` if `action` has a record for `(object, colour)`.
    #[must_use]
    pub fn has_record(&self, action: ActionId, object: ObjectId, colour: Colour) -> bool {
        self.records
            .lock()
            .get(&action)
            .is_some_and(|m| m.contains_key(&(object, colour)))
    }

    /// Removes and returns the records `action` holds in `colour`
    /// (outermost commit: these identify the permanence batch).
    #[must_use]
    pub fn take_colour(&self, action: ActionId, colour: Colour) -> Vec<(ObjectId, BeforeImage)> {
        let mut records = self.records.lock();
        let Some(map) = records.get_mut(&action) else {
            return Vec::new();
        };
        let keys: Vec<(ObjectId, Colour)> =
            map.keys().filter(|(_, c)| *c == colour).copied().collect();
        let mut taken: Vec<(ObjectId, BeforeImage)> = keys
            .into_iter()
            .map(|key| (key.0, map.remove(&key).expect("key present")))
            .collect();
        taken.sort_by_key(|(object, _)| *object);
        if map.is_empty() {
            records.remove(&action);
        }
        taken
    }

    /// Transfers the colour-`colour` records of `child` to `parent`
    /// (inner commit). The parent keeps its own record where both have
    /// one — its image is older, taken before the child ever ran.
    pub fn transfer_colour(&self, child: ActionId, colour: Colour, parent: ActionId) {
        let mut records = self.records.lock();
        let Some(child_map) = records.get_mut(&child) else {
            return;
        };
        let keys: Vec<(ObjectId, Colour)> = child_map
            .keys()
            .filter(|(_, c)| *c == colour)
            .copied()
            .collect();
        let moved: Vec<((ObjectId, Colour), BeforeImage)> = keys
            .into_iter()
            .map(|key| (key, child_map.remove(&key).expect("key present")))
            .collect();
        if child_map.is_empty() {
            records.remove(&child);
        }
        let parent_map = records.entry(parent).or_default();
        for (key, image) in moved {
            parent_map.entry(key).or_insert(image);
        }
    }

    /// Removes and returns every record of `action` (abort), sorted by
    /// object id for deterministic restoration.
    #[must_use]
    pub fn take_all(&self, action: ActionId) -> Vec<(ObjectId, Colour, BeforeImage)> {
        let map = self.records.lock().remove(&action).unwrap_or_default();
        let mut taken: Vec<(ObjectId, Colour, BeforeImage)> = map
            .into_iter()
            .map(|((object, colour), image)| (object, colour, image))
            .collect();
        taken.sort_by_key(|&(object, colour, _)| (object, colour));
        taken
    }

    /// Returns the number of records held for `action`.
    #[must_use]
    pub fn record_count(&self, action: ActionId) -> usize {
        self.records.lock().get(&action).map_or(0, HashMap::len)
    }

    /// Drops every record of every action (used by crash simulation: a
    /// crash loses volatile state, and the undo log is volatile).
    pub fn clear(&self) {
        self.records.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> ActionId {
        ActionId::from_raw(n)
    }
    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }
    fn red() -> Colour {
        Colour::from_index(0)
    }
    fn blue() -> Colour {
        Colour::from_index(1)
    }
    fn img(v: u8) -> BeforeImage {
        Some(StoreBytes::from(vec![v]))
    }

    #[test]
    fn first_image_wins() {
        let log = UndoLog::new();
        log.record_before(a(1), o(1), red(), img(1));
        log.record_before(a(1), o(1), red(), img(2));
        let taken = log.take_colour(a(1), red());
        assert_eq!(taken, vec![(o(1), img(1))]);
    }

    #[test]
    fn take_colour_leaves_other_colours() {
        let log = UndoLog::new();
        log.record_before(a(1), o(1), red(), img(1));
        log.record_before(a(1), o(2), blue(), img(2));
        let taken = log.take_colour(a(1), red());
        assert_eq!(taken.len(), 1);
        assert_eq!(log.record_count(a(1)), 1);
        assert!(log.has_record(a(1), o(2), blue()));
    }

    #[test]
    fn transfer_prefers_parent_image() {
        let log = UndoLog::new();
        log.record_before(a(1), o(1), red(), img(10)); // parent's older image
        log.record_before(a(2), o(1), red(), img(20)); // child's newer image
        log.record_before(a(2), o(2), red(), img(21));
        log.transfer_colour(a(2), red(), a(1));
        assert_eq!(log.record_count(a(2)), 0);
        let taken = log.take_colour(a(1), red());
        assert_eq!(taken, vec![(o(1), img(10)), (o(2), img(21))]);
    }

    #[test]
    fn take_all_returns_everything_sorted() {
        let log = UndoLog::new();
        log.record_before(a(1), o(2), red(), img(2));
        log.record_before(a(1), o(1), blue(), None);
        let taken = log.take_all(a(1));
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].0, o(1));
        assert_eq!(taken[0].2, None);
        assert_eq!(log.record_count(a(1)), 0);
    }

    #[test]
    fn clear_drops_all() {
        let log = UndoLog::new();
        log.record_before(a(1), o(1), red(), img(1));
        log.record_before(a(2), o(2), red(), img(2));
        log.clear();
        assert_eq!(log.record_count(a(1)), 0);
        assert_eq!(log.record_count(a(2)), 0);
    }
}
