//! The in-action operation surface.

use chroma_base::{ActionId, Colour, ColourSet, LockMode, ObjectId};
use chroma_store::{codec, StoreBytes};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::ActionError;
use crate::runtime::Runtime;

/// Handle for performing operations *inside* an active action.
///
/// A scope is obtained from the scoped runners
/// ([`Runtime::atomic`], [`Runtime::run_top`], [`Runtime::run_nested`],
/// [`ActionScope::nested`]) or explicitly via [`Runtime::scope`].
///
/// Every operation names the colour it works in; the `_in`-less
/// convenience methods use the scope's *default colour* (for
/// single-colour actions, the only colour). Reads take read locks,
/// writes take write locks, and [`ActionScope::lock`] takes any mode
/// explicitly — including [`LockMode::ExclusiveRead`], the fencing mode
/// used by the serializing/glued implementations.
///
/// # Examples
///
/// ```
/// use chroma_core::Runtime;
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let rt = Runtime::builder().build();
/// let counter = rt.create_object(&0u64)?;
/// rt.atomic(|a| {
///     let n: u64 = a.read(counter)?;
///     a.write(counter, &(n + 1))?;
///     Ok(())
/// })?;
/// assert_eq!(rt.read_committed::<u64>(counter)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ActionScope<'rt> {
    runtime: &'rt Runtime,
    id: ActionId,
    colours: ColourSet,
    default_colour: Colour,
}

impl<'rt> ActionScope<'rt> {
    pub(crate) fn new(
        runtime: &'rt Runtime,
        id: ActionId,
        colours: ColourSet,
        default_colour: Colour,
    ) -> Self {
        ActionScope {
            runtime,
            id,
            colours,
            default_colour,
        }
    }

    /// Returns the action this scope operates in.
    #[must_use]
    pub fn id(&self) -> ActionId {
        self.id
    }

    /// Returns the action's colour set.
    #[must_use]
    pub fn colours(&self) -> ColourSet {
        self.colours
    }

    /// Returns the colour used by the `_in`-less operations.
    #[must_use]
    pub fn default_colour(&self) -> Colour {
        self.default_colour
    }

    /// Returns the runtime this scope belongs to.
    #[must_use]
    pub fn runtime(&self) -> &'rt Runtime {
        self.runtime
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Reads an object in the default colour.
    ///
    /// # Errors
    ///
    /// Lock failures, [`ActionError::NoSuchObject`], or decode failures.
    pub fn read<T: DeserializeOwned>(&self, object: ObjectId) -> Result<T, ActionError> {
        self.read_in(self.default_colour, object)
    }

    /// Reads an object, taking a read lock in `colour`.
    ///
    /// # Errors
    ///
    /// Lock failures, [`ActionError::NoSuchObject`], or decode failures.
    pub fn read_in<T: DeserializeOwned>(
        &self,
        colour: Colour,
        object: ObjectId,
    ) -> Result<T, ActionError> {
        let bytes = self.runtime.op_read_raw(self.id, colour, object)?;
        Ok(codec::from_bytes(&bytes)?)
    }

    /// Reads an object's raw state, taking a read lock in `colour`.
    ///
    /// # Errors
    ///
    /// Lock failures or [`ActionError::NoSuchObject`].
    pub fn read_raw_in(&self, colour: Colour, object: ObjectId) -> Result<StoreBytes, ActionError> {
        self.runtime.op_read_raw(self.id, colour, object)
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Writes an object in the default colour.
    ///
    /// # Errors
    ///
    /// Lock failures or encode failures.
    pub fn write<T: Serialize + ?Sized>(
        &self,
        object: ObjectId,
        value: &T,
    ) -> Result<(), ActionError> {
        self.write_in(self.default_colour, object, value)
    }

    /// Writes an object, taking a write lock in `colour`.
    ///
    /// # Errors
    ///
    /// Lock failures or encode failures.
    pub fn write_in<T: Serialize + ?Sized>(
        &self,
        colour: Colour,
        object: ObjectId,
        value: &T,
    ) -> Result<(), ActionError> {
        let bytes = StoreBytes::from(codec::to_bytes(value)?);
        self.runtime.op_write_raw(self.id, colour, object, bytes)
    }

    /// Writes an object's raw state, taking a write lock in `colour`.
    ///
    /// # Errors
    ///
    /// Lock failures.
    pub fn write_raw_in(
        &self,
        colour: Colour,
        object: ObjectId,
        state: StoreBytes,
    ) -> Result<(), ActionError> {
        self.runtime.op_write_raw(self.id, colour, object, state)
    }

    /// Reads, transforms and writes back an object in the default
    /// colour.
    ///
    /// # Errors
    ///
    /// Lock, object or codec failures from the underlying read/write.
    pub fn modify<T, R>(
        &self,
        object: ObjectId,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ActionError>
    where
        T: DeserializeOwned + Serialize,
    {
        self.modify_in(self.default_colour, object, f)
    }

    /// Reads, transforms and writes back an object in `colour`.
    ///
    /// # Errors
    ///
    /// Lock, object or codec failures from the underlying read/write.
    pub fn modify_in<T, R>(
        &self,
        colour: Colour,
        object: ObjectId,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ActionError>
    where
        T: DeserializeOwned + Serialize,
    {
        // Take the write lock before reading: two concurrent modifiers
        // would otherwise both take read locks and deadlock trying to
        // upgrade.
        self.lock(colour, object, LockMode::Write)?;
        let mut value: T = self.read_in(colour, object)?;
        let result = f(&mut value);
        self.write_in(colour, object, &value)?;
        Ok(result)
    }

    // ------------------------------------------------------------------
    // Creation
    // ------------------------------------------------------------------

    /// Creates a new object inside the action, in the default colour.
    ///
    /// The object becomes permanent only when the colour's outermost
    /// action commits; on abort it vanishes.
    ///
    /// # Errors
    ///
    /// Encode failures or lock failures (the latter cannot normally
    /// happen on a fresh object).
    pub fn create<T: Serialize + ?Sized>(&self, value: &T) -> Result<ObjectId, ActionError> {
        self.create_in(self.default_colour, value)
    }

    /// Creates a new object inside the action, write-locked in `colour`.
    ///
    /// # Errors
    ///
    /// Encode failures or lock failures.
    pub fn create_in<T: Serialize + ?Sized>(
        &self,
        colour: Colour,
        value: &T,
    ) -> Result<ObjectId, ActionError> {
        let bytes = StoreBytes::from(codec::to_bytes(value)?);
        self.runtime.op_create_raw(self.id, colour, bytes)
    }

    // ------------------------------------------------------------------
    // Explicit locking
    // ------------------------------------------------------------------

    /// Takes a lock on `object` in `colour` and `mode` without touching
    /// its state. This is how control actions fence objects — e.g. the
    /// glued-action scheme exclusive-read-locks the hand-over set.
    ///
    /// # Errors
    ///
    /// Lock failures.
    pub fn lock(
        &self,
        colour: Colour,
        object: ObjectId,
        mode: LockMode,
    ) -> Result<(), ActionError> {
        self.runtime.op_lock(self.id, colour, object, mode)
    }

    /// Attempts a lock without waiting.
    ///
    /// # Errors
    ///
    /// [`ActionError::Lock`] with the denial reason if unavailable.
    pub fn try_lock(
        &self,
        colour: Colour,
        object: ObjectId,
        mode: LockMode,
    ) -> Result<(), ActionError> {
        self.runtime.op_try_lock(self.id, colour, object, mode)
    }

    // ------------------------------------------------------------------
    // Nesting
    // ------------------------------------------------------------------

    /// Runs a nested action with the same colours and default colour as
    /// this one; commit on `Ok`, abort on `Err` (the paper's plain
    /// nested atomic action).
    ///
    /// # Errors
    ///
    /// Propagates the body's error after aborting the child, or any
    /// commit error.
    pub fn nested<R>(
        &mut self,
        body: impl FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        self.nested_in(self.colours, self.default_colour, body)
    }

    /// Runs a nested action with an explicit colour set and default
    /// colour; commit on `Ok`, abort on `Err`.
    ///
    /// # Errors
    ///
    /// Propagates the body's error after aborting the child, or any
    /// commit error.
    pub fn nested_in<R>(
        &mut self,
        colours: ColourSet,
        default_colour: Colour,
        body: impl FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        self.runtime
            .run_nested(self.id, colours, default_colour, body)
    }
}
