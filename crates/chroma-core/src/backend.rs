//! Pluggable permanence: where outermost-coloured commits go.
//!
//! The paper's trial implementation was non-distributed, with the
//! stated plan "to embark on building a distributed version". Chroma
//! keeps the runtime identical in both deployments by routing the
//! *permanence of effect* step — flushing a colour's updates atomically
//! when its outermost action commits — through this trait:
//!
//! * [`LocalBackend`] installs batches into a single node's
//!   [`StableStore`] (the paper's trial setup);
//! * `chroma-dist`'s `PartitionedStore` installs them into object
//!   stores spread over simulated fail-silent nodes, using two-phase
//!   commit with replication (the distributed version).

use chroma_base::ObjectId;
use chroma_obs::Observable;
use chroma_store::{DiskStore, StableStore, StoreBytes};

/// Errors a permanence backend can report.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BackendError {
    /// The backend could not reach enough object stores to install the
    /// batch atomically (e.g. every replica of a partition is down).
    Unavailable(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Unavailable(why) => {
                write!(f, "permanence backend unavailable: {why}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// The permanence-of-effect sink: atomic, crash-surviving installation
/// of committed object states.
///
/// Implementations must make `commit_batch` atomic (all updates or
/// none survive any crash) and `recover` idempotent.
///
/// Backends are [`Observable`]: installing a handle lets them emit WAL
/// and disk events. Backends without instrumentation implement it as a
/// no-op.
pub trait PermanenceBackend: Send + Sync + Observable {
    /// Atomically installs a batch of committed object states.
    ///
    /// # Errors
    ///
    /// [`BackendError::Unavailable`] if atomic installation is
    /// currently impossible; the caller keeps the action active so the
    /// commit can be retried.
    fn commit_batch(&self, updates: Vec<(ObjectId, StoreBytes)>) -> Result<(), BackendError>;

    /// Returns the last committed state of `object`, if any.
    fn read(&self, object: ObjectId) -> Option<StoreBytes>;

    /// Returns `true` if `object` has a committed state.
    fn contains(&self, object: ObjectId) -> bool {
        self.read(object).is_some()
    }

    /// Runs crash recovery (completes or discards interrupted batches).
    fn recover(&self);

    /// The highest [`ObjectId`] with committed state, if the backend can
    /// tell. A runtime opened over a pre-existing store continues object
    /// allocation *after* this id, so new objects never collide with
    /// persisted ones. `None` (the default) means "empty or unknown".
    fn max_object(&self) -> Option<ObjectId> {
        None
    }

    /// Instantaneous depth of the backend's commit queue (batches
    /// waiting behind a group-commit leader), for live gauges. `0`
    /// (the default) for backends that install synchronously.
    fn queue_depth(&self) -> u64 {
        0
    }

    /// Committed batches not yet folded into installed object state by
    /// a background checkpointer, for live gauges. `0` (the default)
    /// for backends that install on the commit path.
    fn checkpoint_backlog(&self) -> u64 {
        0
    }
}

/// Single-node permanence: a [`StableStore`] with intentions-list
/// commit. The default backend of [`Runtime`](crate::Runtime).
#[derive(Debug, Default)]
pub struct LocalBackend {
    store: StableStore,
}

impl LocalBackend {
    /// Creates an empty local backend.
    #[must_use]
    pub fn new() -> Self {
        LocalBackend::default()
    }

    /// Returns the underlying stable store (tests and tooling).
    #[must_use]
    pub fn store(&self) -> &StableStore {
        &self.store
    }
}

impl PermanenceBackend for LocalBackend {
    fn commit_batch(&self, updates: Vec<(ObjectId, StoreBytes)>) -> Result<(), BackendError> {
        self.store.commit_batch(updates);
        Ok(())
    }

    fn read(&self, object: ObjectId) -> Option<StoreBytes> {
        self.store.read(object)
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.store.contains(object)
    }

    fn recover(&self) {
        self.store.recover();
    }

    fn max_object(&self) -> Option<ObjectId> {
        self.store.object_ids().into_iter().max()
    }
}

impl Observable for LocalBackend {
    fn install_obs(&self, obs: chroma_obs::Obs) {
        self.store.install_obs(obs);
    }
}

/// Disk-backed permanence: outermost-coloured commits go to a real
/// directory through [`DiskStore`]'s write-ahead intentions log — true
/// on-disk durability for non-simulated deployments.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use chroma_core::{DiskBackend, Runtime, RuntimeConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join(format!("chroma-backend-doc-{}", std::process::id()));
/// let rt = Runtime::builder()
///     .config(RuntimeConfig::default())
///     .backend(Arc::new(DiskBackend::open(&dir)?))
///     .build();
/// let o = rt.create_object(&5i64)?;
/// rt.atomic(|a| a.modify(o, |v: &mut i64| *v *= 2))?;
/// assert_eq!(rt.read_committed::<i64>(o)?, 10);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DiskBackend {
    store: DiskStore,
}

impl DiskBackend {
    /// Opens (creating if necessary) a disk-backed backend in `dir`,
    /// running crash recovery.
    ///
    /// # Errors
    ///
    /// Filesystem failures or log corruption
    /// ([`chroma_store::DiskError`]).
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Self, chroma_store::DiskError> {
        Ok(DiskBackend {
            store: DiskStore::open(dir)?,
        })
    }

    /// Returns the underlying disk store.
    #[must_use]
    pub fn store(&self) -> &DiskStore {
        &self.store
    }
}

impl PermanenceBackend for DiskBackend {
    fn commit_batch(&self, updates: Vec<(ObjectId, StoreBytes)>) -> Result<(), BackendError> {
        self.store
            .commit_batch(updates)
            .map_err(|e| BackendError::Unavailable(e.to_string()))
    }

    fn read(&self, object: ObjectId) -> Option<StoreBytes> {
        self.store.read(object).ok().flatten()
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.store.contains(object)
    }

    fn recover(&self) {
        // Recovery runs at open: the store replays the manifest's live
        // segment suffix then; mid-process there is nothing to replay.
    }

    fn max_object(&self) -> Option<ObjectId> {
        self.store.object_ids().ok()?.into_iter().max()
    }

    fn queue_depth(&self) -> u64 {
        self.store.group_queue_depth()
    }

    fn checkpoint_backlog(&self) -> u64 {
        self.store.checkpoint_backlog()
    }
}

impl Observable for DiskBackend {
    fn install_obs(&self, obs: chroma_obs::Obs) {
        self.store.install_obs(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_backend_forwards_obs() {
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("chroma-backend-obs-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let backend = DiskBackend::open(&dir).unwrap();
        let bus = Arc::new(chroma_obs::EventBus::new());
        backend.install_obs(chroma_obs::Obs::new(bus.clone()));
        backend
            .commit_batch(vec![(ObjectId::from_raw(1), StoreBytes::from(vec![1]))])
            .unwrap();
        assert_eq!(bus.counter("disk_append"), 1, "obs must reach the store");
        assert_eq!(
            backend.checkpoint_backlog(),
            1,
            "install is off the commit path"
        );
        backend.store().checkpoint_now().unwrap();
        assert_eq!(bus.counter("checkpoint_end"), 1);
        assert_eq!(backend.checkpoint_backlog(), 0);
        assert!(bus.snapshot().histogram("store.fsync_us").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn local_backend_round_trips() {
        let backend = LocalBackend::new();
        let o = ObjectId::from_raw(1);
        backend
            .commit_batch(vec![(o, StoreBytes::from(vec![5]))])
            .unwrap();
        assert!(backend.contains(o));
        assert_eq!(backend.read(o).as_deref(), Some(&[5u8][..]));
        backend.recover();
        assert_eq!(backend.read(o).as_deref(), Some(&[5u8][..]));
    }

    #[test]
    fn backend_error_displays() {
        let e = BackendError::Unavailable("all replicas down".into());
        assert!(e.to_string().contains("all replicas down"));
    }
}
