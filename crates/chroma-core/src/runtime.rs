//! The multi-coloured action runtime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chroma_base::{
    ActionId, Colour, ColourSet, ColourUniverse, LockError, LockMode, NodeId, ObjectId,
};
use chroma_locks::{ColouredPolicy, LockTable, DEFAULT_LOCK_SHARDS};
use chroma_obs::{EventKind, Obs, ObsCell, Observable};
use chroma_store::{
    codec, GcStats, SnapshotStamps, StampClock, StoreBytes, VersionChains, VisibleVersion,
    VolatileStore,
};
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::backend::{LocalBackend, PermanenceBackend};
use crate::error::ActionError;
use crate::scope::ActionScope;
use crate::snapshot::SnapshotScope;
use crate::tree::{ActionState, ActionTree};
use crate::undo::UndoLog;

/// Stamped outermost flushes between automatic version-chain GC
/// sweeps ([`Runtime::version_gc`] runs one on demand).
const GC_EVERY: u64 = 64;

/// Tunables for a [`Runtime`].
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Upper bound on any single lock wait. `None` waits indefinitely
    /// (deadlocks are still broken by the detector). Defaults to 10 s so
    /// misbehaving workloads fail loudly instead of hanging.
    pub lock_timeout: Option<Duration>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            lock_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// A snapshot of runtime counters, taken with [`Runtime::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Actions begun.
    pub begun: u64,
    /// Actions committed.
    pub committed: u64,
    /// Actions aborted.
    pub aborted: u64,
    /// Lock waits that ended with the waiter chosen as deadlock victim.
    pub deadlock_victims: u64,
}

#[derive(Debug, Default)]
struct StatCounters {
    begun: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    deadlock_victims: AtomicU64,
}

struct Inner {
    universe: ColourUniverse,
    default_colour: Colour,
    tree: ActionTree,
    locks: LockTable<ColouredPolicy>,
    volatile: VolatileStore,
    stable: Arc<dyn PermanenceBackend>,
    undo: UndoLog,
    next_action: AtomicU64,
    next_object: AtomicU64,
    config: RuntimeConfig,
    stats: StatCounters,
    obs: ObsCell,
    /// Per-object version chains feeding read-only snapshot actions.
    versions: VersionChains,
    /// Allocates and publishes the per-colour commit stamps snapshots
    /// capture.
    stamps: StampClock,
    /// Live read-only snapshots: id → the stamp vector captured at
    /// open. Capture happens *inside* this lock (both here and in
    /// [`Runtime::version_gc`]) so GC can never miss a
    /// concurrently-opening snapshot with an older capture than its
    /// own.
    snapshots: Mutex<HashMap<ActionId, Arc<SnapshotStamps>>>,
    /// Stamped outermost flushes since boot; drives automatic GC.
    gc_tick: AtomicU64,
}

/// The multi-coloured action runtime: persistent objects, coloured
/// locking, nested actions, per-colour commit and recovery.
///
/// A `Runtime` owns one node's object stores and lock table. It is
/// cheaply clonable (clones share state) and fully thread-safe: actions
/// typically run one per thread.
///
/// The paper's semantics are implemented exactly:
///
/// * an action may possess several colours and specifies one of them for
///   each lock it takes;
/// * when an action **commits**, for each of its colours its locks and
///   before-images pass to the *closest ancestor possessing that
///   colour*; if there is none, the action is *outermost* for the colour
///   and the colour's updates are flushed atomically to stable storage
///   (permanence of effect), after which the colour's locks are
///   released;
/// * when an action **aborts**, all its locks are discarded and all its
///   before-images restored — ancestors keep their own locks and images;
/// * a system in which every action has the same single colour behaves
///   exactly like a conventional nested atomic action system.
///
/// # Examples
///
/// Fig. 10 of the paper — B (red+blue) nested in A (blue); B's red
/// effects survive A's abort, its blue effects do not:
///
/// ```
/// use chroma_base::ColourSet;
/// use chroma_core::Runtime;
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let rt = Runtime::builder().build();
/// let (red, blue) = (rt.universe().colour("red"), rt.universe().colour("blue"));
/// let o_r = rt.create_object(&0i32)?; // will be written in red
/// let o_b = rt.create_object(&0i32)?; // will be written in blue
///
/// let a = rt.begin_top(ColourSet::single(blue))?;
/// let b = rt.begin_nested(a, ColourSet::from_iter([red, blue]))?;
/// rt.scope(b)?.write_in(red, o_r, &1i32)?;
/// rt.scope(b)?.write_in(blue, o_b, &1i32)?;
/// rt.commit(b)?; // B outermost red: red effects permanent; blue passes to A
/// rt.abort(a); // undoes blue only
///
/// assert_eq!(rt.read_committed::<i32>(o_r)?, 1);
/// assert_eq!(rt.read_committed::<i32>(o_b)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<Inner>,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::builder().build()
    }
}

/// Fluent constructor for [`Runtime`], from [`Runtime::builder`].
///
/// Every knob is optional; `build()` fills in the defaults (default
/// config, a fresh [`LocalBackend`], no tracing,
/// [`DEFAULT_LOCK_SHARDS`] lock shards, no node binding).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use chroma_base::NodeId;
/// use chroma_core::{Runtime, RuntimeConfig};
/// use chroma_obs::EventBus;
///
/// let bus = Arc::new(EventBus::new());
/// let rt = Runtime::builder()
///     .config(RuntimeConfig::default())
///     .obs(bus.clone())
///     .at_node(NodeId::from_raw(7))
///     .lock_shards(8)
///     .build();
/// assert_eq!(rt.lock_shard_count(), 8);
/// ```
#[derive(Default)]
pub struct RuntimeBuilder {
    config: RuntimeConfig,
    backend: Option<Arc<dyn PermanenceBackend>>,
    obs: Option<Obs>,
    node: Option<NodeId>,
    lock_shards: Option<usize>,
}

impl RuntimeBuilder {
    /// Sets the runtime configuration (defaults to
    /// [`RuntimeConfig::default`]).
    #[must_use]
    pub fn config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the permanence backend — e.g. [`crate::DiskBackend`] for
    /// on-disk durability or `chroma-dist`'s partitioned store for the
    /// distributed deployment. Defaults to a fresh [`LocalBackend`].
    #[must_use]
    pub fn backend(mut self, backend: Arc<dyn PermanenceBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Installs observability from construction: accepts an
    /// `Arc<EventBus>` or a prepared [`Obs`] handle. Equivalent to
    /// calling [`Observable::install_obs`] on the built runtime.
    #[must_use]
    pub fn obs(mut self, obs: impl Into<Obs>) -> Self {
        self.obs = Some(obs.into());
        self
    }

    /// Binds the runtime's events to `node` — they then carry that node
    /// id and tick its Lamport clock, so a local runtime can share a
    /// trace with a distributed simulation without colliding on node 0.
    #[must_use]
    pub fn at_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// Sets the lock-table shard count (clamped to a power of two in
    /// `1..=64`; defaults to [`DEFAULT_LOCK_SHARDS`]). More shards let
    /// more disjoint-object acquisitions proceed in parallel.
    #[must_use]
    pub fn lock_shards(mut self, shards: usize) -> Self {
        self.lock_shards = Some(shards);
        self
    }

    /// Builds the runtime.
    #[must_use]
    pub fn build(self) -> Runtime {
        let backend = self
            .backend
            .unwrap_or_else(|| Arc::new(LocalBackend::new()));
        let universe = ColourUniverse::new();
        let default_colour = universe.colour("default");
        // Continue object allocation after anything already persisted
        // (a disk-backed store re-opened after a restart).
        let first_object = backend.max_object().map_or(1, |o| o.as_raw() + 1);
        let rt = Runtime {
            inner: Arc::new(Inner {
                universe,
                default_colour,
                tree: ActionTree::new(),
                locks: LockTable::with_shards(
                    ColouredPolicy,
                    self.lock_shards.unwrap_or(DEFAULT_LOCK_SHARDS),
                ),
                volatile: VolatileStore::new(),
                stable: backend,
                undo: UndoLog::new(),
                next_action: AtomicU64::new(1),
                next_object: AtomicU64::new(first_object),
                config: self.config,
                stats: StatCounters::default(),
                obs: ObsCell::new(),
                versions: VersionChains::new(),
                stamps: StampClock::new(),
                snapshots: Mutex::new(HashMap::new()),
                gc_tick: AtomicU64::new(0),
            }),
        };
        if let Some(obs) = self.obs {
            let obs = match self.node {
                Some(node) => obs.at_node(node),
                None => obs,
            };
            rt.install_obs(obs);
        }
        rt
    }
}

impl Runtime {
    /// Returns a [`RuntimeBuilder`] — the one way to construct a
    /// runtime.
    #[must_use]
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Returns the colour universe of this runtime.
    #[must_use]
    pub fn universe(&self) -> &ColourUniverse {
        &self.inner.universe
    }

    /// Returns the colour used by single-colour (conventional) actions.
    #[must_use]
    pub fn default_colour(&self) -> Colour {
        self.inner.default_colour
    }

    /// Returns a snapshot of the runtime counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        let s = &self.inner.stats;
        RuntimeStats {
            begun: s.begun.load(Ordering::Relaxed),
            committed: s.committed.load(Ordering::Relaxed),
            aborted: s.aborted.load(Ordering::Relaxed),
            deadlock_victims: s.deadlock_victims.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Objects
    // ------------------------------------------------------------------

    /// Creates a persistent object with an initial committed state.
    ///
    /// This is the bootstrap path, used outside any action; it writes
    /// the state straight to stable storage.
    ///
    /// # Errors
    ///
    /// Returns [`ActionError::Codec`] if the value fails to encode.
    pub fn create_object<T: Serialize>(&self, value: &T) -> Result<ObjectId, ActionError> {
        let bytes = StoreBytes::from(codec::to_bytes(value)?);
        self.create_object_raw(bytes)
    }

    /// Creates a persistent object from raw bytes (bootstrap path).
    ///
    /// # Errors
    ///
    /// [`ActionError::Backend`] if the permanence backend cannot
    /// install the initial state.
    pub fn create_object_raw(&self, state: StoreBytes) -> Result<ObjectId, ActionError> {
        let object = ObjectId::from_raw(self.inner.next_object.fetch_add(1, Ordering::Relaxed));
        self.inner
            .stable
            .commit_batch(vec![(object, state)])
            .map_err(ActionError::Backend)?;
        Ok(object)
    }

    /// Reads the last *committed* (stable) state of an object, bypassing
    /// locks. Intended for bootstrap, assertions and debugging — running
    /// actions should read through a scope.
    ///
    /// # Errors
    ///
    /// [`ActionError::NoSuchObject`] if the object has no committed
    /// state; [`ActionError::Codec`] on decode failure.
    pub fn read_committed<T: DeserializeOwned>(&self, object: ObjectId) -> Result<T, ActionError> {
        let bytes = self
            .inner
            .stable
            .read(object)
            .ok_or(ActionError::NoSuchObject(object))?;
        Ok(codec::from_bytes(&bytes)?)
    }

    /// Reads the current *working* state of an object (volatile if
    /// present, else stable), bypassing locks. Debugging aid.
    ///
    /// # Errors
    ///
    /// [`ActionError::NoSuchObject`] if the object does not exist;
    /// [`ActionError::Codec`] on decode failure.
    pub fn read_current<T: DeserializeOwned>(&self, object: ObjectId) -> Result<T, ActionError> {
        let bytes = self
            .current_state(object)
            .ok_or(ActionError::NoSuchObject(object))?;
        Ok(codec::from_bytes(&bytes)?)
    }

    /// Returns `true` if the object exists in volatile or stable storage.
    #[must_use]
    pub fn object_exists(&self, object: ObjectId) -> bool {
        self.inner.volatile.contains(object) || self.inner.stable.contains(object)
    }

    // ------------------------------------------------------------------
    // Action lifecycle
    // ------------------------------------------------------------------

    /// Begins a top-level action possessing `colours`.
    ///
    /// # Errors
    ///
    /// [`ActionError::NoColours`] if `colours` is empty.
    pub fn begin_top(&self, colours: ColourSet) -> Result<ActionId, ActionError> {
        self.begin(None, colours)
    }

    /// Begins an action nested inside `parent`, possessing `colours`.
    ///
    /// The child's colour set is independent of the parent's — that is
    /// the point of multi-coloured actions (fig. 10: a red+blue action
    /// inside a blue one).
    ///
    /// # Errors
    ///
    /// [`ActionError::ParentNotActive`] if `parent` is not active;
    /// [`ActionError::NoColours`] if `colours` is empty.
    pub fn begin_nested(
        &self,
        parent: ActionId,
        colours: ColourSet,
    ) -> Result<ActionId, ActionError> {
        self.begin(Some(parent), colours)
    }

    fn begin(&self, parent: Option<ActionId>, colours: ColourSet) -> Result<ActionId, ActionError> {
        if colours.is_empty() {
            return Err(ActionError::NoColours);
        }
        if let Some(parent) = parent {
            if !self.inner.tree.is_active(parent) {
                return Err(ActionError::ParentNotActive(parent));
            }
        }
        let id = ActionId::from_raw(self.inner.next_action.fetch_add(1, Ordering::Relaxed));
        self.inner.tree.insert(id, parent, colours);
        self.inner.stats.begun.fetch_add(1, Ordering::Relaxed);
        self.inner.obs.get().emit(EventKind::ActionBegin {
            action: id,
            parent,
            colours: colour_bits(colours),
        });
        Ok(id)
    }

    /// Returns a scope for operating within an active action.
    ///
    /// The scope's default colour is the lowest-indexed colour of the
    /// action; multi-coloured actions normally use the explicit `_in`
    /// operations.
    ///
    /// # Errors
    ///
    /// [`ActionError::NotActive`] if the action is not active.
    pub fn scope(&self, action: ActionId) -> Result<ActionScope<'_>, ActionError> {
        let colours = self
            .inner
            .tree
            .colours(action)
            .filter(|_| self.inner.tree.is_active(action))
            .ok_or(ActionError::NotActive(action))?;
        let default_colour = colours.iter().next().expect("non-empty colour set");
        Ok(ActionScope::new(self, action, colours, default_colour))
    }

    /// Commits an action.
    ///
    /// For each colour the action possesses: if a (closest) ancestor
    /// possesses the colour, locks and before-images pass to it;
    /// otherwise the action is outermost for the colour, the colour's
    /// updates are flushed atomically to stable storage and its locks
    /// released.
    ///
    /// # Errors
    ///
    /// [`ActionError::NotActive`] if the action is not active;
    /// [`ActionError::ChildrenActive`] if a child is still active;
    /// [`ActionError::ParentNotActive`] if the inheritance target
    /// vanished (runtime misuse).
    pub fn commit(&self, action: ActionId) -> Result<(), ActionError> {
        let inner = &self.inner;
        let obs = inner.obs.get();
        let started = obs.enabled().then(Instant::now);
        if !inner.tree.is_active(action) {
            return Err(ActionError::NotActive(action));
        }
        if !inner.tree.active_children(action).is_empty() {
            return Err(ActionError::ChildrenActive(action));
        }
        if let Some(parent) = inner.tree.parent(action) {
            if !inner.tree.is_active(parent) {
                return Err(ActionError::ParentNotActive(parent));
            }
        }
        let colours = inner
            .tree
            .colours(action)
            .ok_or(ActionError::NotActive(action))?;
        let mut stamped = false;
        for colour in colours {
            match inner.tree.closest_ancestor_with_colour(action, colour) {
                Some(ancestor) => {
                    inner.locks.inherit_colour(action, colour, ancestor);
                    inner.undo.transfer_colour(action, colour, ancestor);
                }
                None => {
                    // Outermost for this colour: time the whole
                    // flush-and-release so the per-colour breakdown
                    // (`core.commit_us.<colour>`) sits next to the
                    // aggregate `core.commit_us`.
                    let flush_started = obs.enabled().then(Instant::now);
                    let records = inner.undo.take_colour(action, colour);
                    let updates: Vec<(ObjectId, StoreBytes)> = records
                        .iter()
                        .filter_map(|(object, _)| {
                            inner.volatile.read(*object).map(|state| (*object, state))
                        })
                        .collect();
                    if !updates.is_empty() {
                        // Seed each updated object's version chain with
                        // its before-image *before* the stable install:
                        // a snapshot reader that finds no chain falls
                        // back to stable storage, and must never find
                        // this commit's states there first.
                        for (object, image) in &records {
                            inner.versions.seed_base(*object, image.clone());
                        }
                        if let Err(e) = inner.stable.commit_batch(updates.clone()) {
                            // Permanence is unreachable: put the undo
                            // records back and keep the action active
                            // (with its locks) so commit can be retried
                            // or the action aborted. The seeded bases
                            // stay — they hold the still-committed
                            // states, and re-seeding is a no-op.
                            for (object, image) in records {
                                inner.undo.record_before(action, object, colour, image);
                            }
                            return Err(ActionError::Backend(e));
                        }
                        // Publish the new states as versions under the
                        // colour's stamp gate: same-colour stamps enter
                        // chains in order, so a snapshot capturing
                        // frontier `s` is guaranteed every version
                        // `<= s` is already appended.
                        let gate = inner.stamps.publish_guard(colour);
                        let stamp = inner.stamps.allocate();
                        for (object, state) in &updates {
                            inner.versions.append(*object, colour, stamp, state.clone());
                            obs.emit(EventKind::VersionPublish {
                                object: *object,
                                colour,
                                stamp,
                            });
                        }
                        inner.stamps.publish(colour, stamp);
                        drop(gate);
                        stamped = true;
                    }
                    inner.locks.release_colour(action, colour);
                    if let Some(flush_started) = flush_started {
                        obs.observe(
                            &format!("core.commit_us.{}", inner.universe.name(colour)),
                            u64::try_from(flush_started.elapsed().as_micros()).unwrap_or(u64::MAX),
                        );
                    }
                }
            }
        }
        inner.tree.set_state(action, ActionState::Committed);
        // Drop the lock table's per-action bookkeeping (shard index,
        // any pending interrupt) now that the action is terminated.
        inner.locks.retire_action(action);
        inner.stats.committed.fetch_add(1, Ordering::Relaxed);
        obs.emit(EventKind::ActionCommit { action });
        if let Some(started) = started {
            obs.observe(
                "core.commit_us",
                u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            );
        }
        // Bound chain growth: every GC_EVERY stamped flushes, reclaim
        // versions no live snapshot can reach.
        if stamped && inner.gc_tick.fetch_add(1, Ordering::Relaxed) % GC_EVERY == GC_EVERY - 1 {
            self.version_gc();
        }
        Ok(())
    }

    /// Aborts an action: active children are aborted first (deepest
    /// first), every before-image is restored, every lock discarded.
    ///
    /// Aborting a non-active (or unknown) action is a no-op, so abort is
    /// always safe to call in cleanup paths.
    pub fn abort(&self, action: ActionId) {
        let inner = &self.inner;
        if !inner.tree.is_active(action) {
            return;
        }
        for child in inner.tree.active_children(action) {
            self.abort(child);
        }
        inner.tree.set_state(action, ActionState::Aborted);
        // Restore before-images while still holding the locks, so no
        // other action observes a half-restored state (strictness).
        for (object, _colour, image) in inner.undo.take_all(action) {
            match image {
                Some(state) => {
                    inner.volatile.write(object, state);
                }
                None => {
                    inner.volatile.remove(object);
                }
            }
        }
        inner.locks.discard_action(action);
        // If the action's thread is parked in a lock wait, wake it.
        inner.locks.cancel_waiter(action);
        inner.stats.aborted.fetch_add(1, Ordering::Relaxed);
        inner.obs.get().emit(EventKind::ActionAbort { action });
    }

    /// Returns the lifecycle state of an action, if known.
    #[must_use]
    pub fn action_state(&self, action: ActionId) -> Option<crate::tree::ActionState> {
        self.inner.tree.state(action)
    }

    /// Returns the colour set of an action, if known.
    #[must_use]
    pub fn action_colours(&self, action: ActionId) -> Option<ColourSet> {
        self.inner.tree.colours(action)
    }

    /// Returns the parent of an action (`None` for top-level or
    /// unknown actions).
    #[must_use]
    pub fn action_parent(&self, action: ActionId) -> Option<ActionId> {
        self.inner.tree.parent(action)
    }

    // ------------------------------------------------------------------
    // Scoped runners
    // ------------------------------------------------------------------

    /// Runs a conventional top-level atomic action: single (default)
    /// colour, commit on `Ok`, abort on `Err`.
    ///
    /// # Errors
    ///
    /// Propagates the body's error after aborting, or any commit error.
    pub fn atomic<R>(
        &self,
        body: impl FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        self.run_top(
            ColourSet::single(self.inner.default_colour),
            self.inner.default_colour,
            body,
        )
    }

    /// Like [`Runtime::atomic`], but automatically retries (up to
    /// `attempts` times) when the action is chosen as a deadlock
    /// victim — the standard reaction to victimisation, safe because
    /// the aborted attempt left no effects.
    ///
    /// A small, growing backoff is applied between attempts: a fresh
    /// attempt is always the *youngest* action and would otherwise be
    /// re-selected as victim immediately, livelocking under contention.
    /// (Prefer [`ActionScope::modify`], which takes the write lock up
    /// front, over read-then-write bodies that provoke upgrade
    /// deadlocks in the first place.)
    ///
    /// # Errors
    ///
    /// The body's error (immediately, for non-deadlock errors), or the
    /// final deadlock error if every attempt was victimised.
    pub fn atomic_retry<R>(
        &self,
        attempts: usize,
        mut body: impl FnMut(&mut ActionScope<'_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            match self.atomic(&mut body) {
                Err(e) if e.is_deadlock_victim() => {
                    last = Some(e);
                    let backoff_us = 50u64.saturating_mul(1 << attempt.min(8));
                    std::thread::sleep(Duration::from_micros(backoff_us));
                }
                other => return other,
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Runs a top-level action with an explicit colour set and default
    /// colour; commit on `Ok`, abort on `Err`.
    ///
    /// # Errors
    ///
    /// Propagates the body's error after aborting, or any commit error.
    pub fn run_top<R>(
        &self,
        colours: ColourSet,
        default_colour: Colour,
        body: impl FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        let id = self.begin_top(colours)?;
        self.run_body(id, colours, default_colour, body)
    }

    /// Runs a nested action under `parent`; commit on `Ok`, abort on
    /// `Err`.
    ///
    /// # Errors
    ///
    /// Propagates the body's error after aborting, or any commit error.
    pub fn run_nested<R>(
        &self,
        parent: ActionId,
        colours: ColourSet,
        default_colour: Colour,
        body: impl FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        let id = self.begin_nested(parent, colours)?;
        self.run_body(id, colours, default_colour, body)
    }

    fn run_body<R>(
        &self,
        id: ActionId,
        colours: ColourSet,
        default_colour: Colour,
        body: impl FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        let mut scope = ActionScope::new(self, id, colours, default_colour);
        match body(&mut scope) {
            Ok(value) => match self.commit(id) {
                Ok(()) => Ok(value),
                Err(error) => {
                    // Scoped actions are all-or-nothing from the
                    // caller's perspective: a failed commit (e.g. the
                    // permanence backend is unreachable) aborts rather
                    // than leaking an active action. Callers needing
                    // commit *retry* use explicit begin/commit.
                    self.abort(id);
                    Err(error)
                }
            },
            Err(error) => {
                self.abort(id);
                Err(error)
            }
        }
    }

    // ------------------------------------------------------------------
    // Crash simulation
    // ------------------------------------------------------------------

    /// Simulates a node crash followed by recovery: every active action
    /// is killed (its locks vanish with the volatile lock table), the
    /// volatile store and undo log are wiped, and the stable store runs
    /// its recovery protocol.
    ///
    /// Effects already committed by outermost coloured actions survive;
    /// everything else is gone — exactly the paper's failure model.
    pub fn crash_and_recover(&self) {
        let inner = &self.inner;
        let obs = inner.obs.get();
        // A local runtime is "node 0" in traces unless an `at_node` handle
        // bound another id; the distributed layer stamps real node ids
        // through its own simulator.
        let node = obs.node().unwrap_or(NodeId::from_raw(0));
        obs.emit(EventKind::NodeCrash { node });
        // Kill active actions; their threads' next operation fails.
        // Deepest-first, so every child's abort is recorded before its
        // parent's — the trace auditor's causal rule (R8) requires each
        // span to close inside its parent even on the crash path.
        let mut killed: Vec<ActionId> = Vec::new();
        loop {
            let active = inner.tree.active_actions();
            let mut remaining: Vec<ActionId> =
                active.into_iter().filter(|a| !killed.contains(a)).collect();
            if remaining.is_empty() {
                break;
            }
            remaining.sort_by_key(|&a| {
                let mut depth = 0u32;
                let mut cursor = a;
                while let Some(parent) = inner.tree.parent(cursor) {
                    depth += 1;
                    cursor = parent;
                }
                std::cmp::Reverse(depth)
            });
            for action in remaining {
                inner.tree.set_state(action, ActionState::Aborted);
                inner.locks.discard_action(action);
                inner.locks.cancel_waiter(action);
                inner.stats.aborted.fetch_add(1, Ordering::Relaxed);
                obs.emit(EventKind::ActionAbort { action });
                killed.push(action);
            }
        }
        inner.undo.clear();
        inner.volatile.crash();
        // Version chains are volatile too; recovery rebuilds bases
        // lazily from stable storage. The stamp clock itself survives
        // (stamps are never reused, the published frontier only
        // advances), so post-recovery snapshots stay sound.
        inner.versions.crash();
        // Open snapshots die with the node: later reads through a
        // stale scope fail `NotActive`.
        let mut dead: Vec<ActionId> = inner.snapshots.lock().drain().map(|(id, _)| id).collect();
        dead.sort_unstable();
        for id in dead {
            inner.locks.unmark_lockless(id);
            inner.stats.aborted.fetch_add(1, Ordering::Relaxed);
            obs.emit(EventKind::ActionAbort { action: id });
        }
        inner.stable.recover();
        obs.emit(EventKind::NodeRecover { node });
    }

    /// Drops bookkeeping for terminated actions with no live
    /// descendants, bounding memory in long-running systems. Returns
    /// how many were pruned.
    pub fn prune_terminated(&self) -> usize {
        self.inner.tree.prune_terminated()
    }

    // ------------------------------------------------------------------
    // Read-only snapshot actions
    // ------------------------------------------------------------------

    /// Opens a declared read-only action: captures the published
    /// per-colour commit frontier and returns a [`SnapshotScope`] whose
    /// reads all observe that one consistent snapshot. Snapshot reads
    /// are served from version chains and never touch the lock table,
    /// so a read-only action can neither block a writer nor deadlock.
    ///
    /// The scope counts as committed when ended (explicitly or on
    /// drop); a [`Runtime::crash_and_recover`] kills it like any other
    /// active action, after which its reads fail
    /// [`ActionError::NotActive`].
    pub fn begin_read_only(&self) -> SnapshotScope<'_> {
        let inner = &self.inner;
        let id = ActionId::from_raw(inner.next_action.fetch_add(1, Ordering::Relaxed));
        // Capture inside the registry lock so a concurrent GC (which
        // also captures inside it) can never hold a *newer* frontier
        // than a snapshot it did not see registered.
        let stamps = {
            let mut registry = inner.snapshots.lock();
            let stamps = Arc::new(inner.stamps.capture());
            registry.insert(id, Arc::clone(&stamps));
            stamps
        };
        inner.locks.mark_lockless(id);
        inner.stats.begun.fetch_add(1, Ordering::Relaxed);
        let obs = inner.obs.get();
        obs.emit(EventKind::ActionBegin {
            action: id,
            parent: None,
            colours: 0,
        });
        let captured = stamps.nonzero();
        if captured.is_empty() {
            // Nothing published yet: record the open with the base
            // stamp so the trace still marks this action as a snapshot
            // reader (auditor rule R10b).
            obs.emit(EventKind::SnapshotOpen {
                action: id,
                colour: Colour::from_index(0),
                stamp: 0,
            });
        } else {
            for (colour, stamp) in captured {
                obs.emit(EventKind::SnapshotOpen {
                    action: id,
                    colour,
                    stamp,
                });
            }
        }
        SnapshotScope::new(self, id, stamps)
    }

    /// Ends a read-only snapshot action (idempotent; called by
    /// [`SnapshotScope`] on end/drop). A scope already killed by a
    /// crash is a no-op — its abort was recorded then.
    pub(crate) fn end_read_only(&self, action: ActionId) {
        let inner = &self.inner;
        if inner.snapshots.lock().remove(&action).is_some() {
            inner.locks.unmark_lockless(action);
            inner.stats.committed.fetch_add(1, Ordering::Relaxed);
            inner.obs.get().emit(EventKind::ActionCommit { action });
        }
    }

    /// Serves one snapshot read: the newest version of `object` visible
    /// at the snapshot's captured stamps, falling back to stable
    /// storage for objects with no version chain.
    pub(crate) fn op_snapshot_read(
        &self,
        action: ActionId,
        object: ObjectId,
    ) -> Result<StoreBytes, ActionError> {
        let inner = &self.inner;
        let stamps = inner
            .snapshots
            .lock()
            .get(&action)
            .cloned()
            .ok_or(ActionError::NotActive(action))?;
        let obs = inner.obs.get();
        let mut rechecked = false;
        loop {
            match inner.versions.read_visible(object, &stamps) {
                VisibleVersion::Version {
                    colour,
                    stamp,
                    state,
                } => {
                    if obs.enabled() {
                        obs.emit(EventKind::SnapshotRead {
                            action,
                            object,
                            colour,
                            stamp,
                        });
                        obs.observe(
                            "core.snapshot_lag",
                            inner.stamps.current().saturating_sub(stamp),
                        );
                    }
                    // A `None` state is a tombstone base: the object
                    // did not exist at the snapshot.
                    return state.ok_or(ActionError::NoSuchObject(object));
                }
                VisibleVersion::NoChain => {
                    let stable = inner.stable.read(object);
                    // A commit may have seeded the chain and installed
                    // its states between our two looks; the chain is
                    // then authoritative (the stable state could
                    // already be newer than this snapshot). One
                    // re-check suffices: a seeded chain always has a
                    // visible base.
                    if !rechecked && inner.versions.has_chain(object) {
                        rechecked = true;
                        continue;
                    }
                    let Some(state) = stable else {
                        return Err(ActionError::NoSuchObject(object));
                    };
                    if obs.enabled() {
                        obs.emit(EventKind::SnapshotRead {
                            action,
                            object,
                            colour: Colour::from_index(0),
                            stamp: 0,
                        });
                    }
                    return Ok(state);
                }
            }
        }
    }

    /// Runs one version-chain GC sweep: reclaims versions no live
    /// snapshot can reach. The newest selectable version of every chain
    /// always survives, so writers never lose their committed state.
    /// Sweeps also run automatically every few stamped commits; call
    /// this to force one (e.g. after closing a long scan).
    pub fn version_gc(&self) -> GcStats {
        let inner = &self.inner;
        // Capture inside the registry lock (see `begin_read_only`): any
        // snapshot not yet registered will capture *after* us, hence a
        // frontier at least as new as ours, and our fresh capture pins
        // everything it can need.
        let live: Vec<SnapshotStamps> = {
            let registry = inner.snapshots.lock();
            let mut live: Vec<SnapshotStamps> = registry.values().map(|s| (**s).clone()).collect();
            live.push(inner.stamps.capture());
            live
        };
        let stats = inner.versions.collect(&live);
        let obs = inner.obs.get();
        if obs.enabled() {
            obs.emit(EventKind::VersionGc {
                reclaimed: stats.reclaimed,
                retained: stats.retained,
            });
        }
        stats
    }

    /// Number of read-only snapshot actions currently open.
    #[must_use]
    pub fn live_snapshot_count(&self) -> usize {
        self.inner.snapshots.lock().len()
    }

    /// Version-chain length of one object (tests/metrics).
    #[must_use]
    pub fn version_chain_len(&self, object: ObjectId) -> usize {
        self.inner.versions.chain_len(object)
    }

    /// Total versions held across all chains (tests/metrics).
    #[must_use]
    pub fn version_count(&self) -> u64 {
        self.inner.versions.total_versions()
    }

    /// The newest commit stamp allocated so far (0 before any stamped
    /// flush).
    #[must_use]
    pub fn current_stamp(&self) -> u64 {
        self.inner.stamps.current()
    }

    // ------------------------------------------------------------------
    // Operations (called through `ActionScope`)
    // ------------------------------------------------------------------

    pub(crate) fn op_lock(
        &self,
        action: ActionId,
        colour: Colour,
        object: ObjectId,
        mode: LockMode,
    ) -> Result<(), ActionError> {
        self.acquire(action, colour, object, mode, false)
    }

    pub(crate) fn op_try_lock(
        &self,
        action: ActionId,
        colour: Colour,
        object: ObjectId,
        mode: LockMode,
    ) -> Result<(), ActionError> {
        self.acquire(action, colour, object, mode, true)
    }

    pub(crate) fn op_read_raw(
        &self,
        action: ActionId,
        colour: Colour,
        object: ObjectId,
    ) -> Result<StoreBytes, ActionError> {
        self.acquire(action, colour, object, LockMode::Read, false)?;
        self.current_state(object)
            .ok_or(ActionError::NoSuchObject(object))
    }

    pub(crate) fn op_write_raw(
        &self,
        action: ActionId,
        colour: Colour,
        object: ObjectId,
        state: StoreBytes,
    ) -> Result<(), ActionError> {
        self.acquire(action, colour, object, LockMode::Write, false)?;
        let prior = self.current_state(object);
        self.inner.undo.record_before(action, object, colour, prior);
        self.inner.obs.get().emit(EventKind::UndoRecord {
            action,
            object,
            colour,
        });
        self.inner.volatile.write(object, state);
        Ok(())
    }

    pub(crate) fn op_create_raw(
        &self,
        action: ActionId,
        colour: Colour,
        state: StoreBytes,
    ) -> Result<ObjectId, ActionError> {
        let object = ObjectId::from_raw(self.inner.next_object.fetch_add(1, Ordering::Relaxed));
        self.acquire(action, colour, object, LockMode::Write, false)?;
        self.inner.undo.record_before(action, object, colour, None);
        self.inner.obs.get().emit(EventKind::UndoRecord {
            action,
            object,
            colour,
        });
        self.inner.volatile.write(object, state);
        Ok(object)
    }

    fn acquire(
        &self,
        action: ActionId,
        colour: Colour,
        object: ObjectId,
        mode: LockMode,
        try_only: bool,
    ) -> Result<(), ActionError> {
        let inner = &self.inner;
        if !inner.tree.is_active(action) {
            return Err(ActionError::NotActive(action));
        }
        let colours = inner
            .tree
            .colours(action)
            .ok_or(ActionError::NotActive(action))?;
        if !colours.contains(colour) {
            return Err(ActionError::ColourNotHeld { action, colour });
        }
        let result = if try_only {
            inner
                .locks
                .try_acquire(&inner.tree, action, object, colour, mode)
        } else {
            inner.locks.acquire(
                &inner.tree,
                action,
                object,
                colour,
                mode,
                inner.config.lock_timeout,
            )
        };
        match result {
            Ok(_) => Ok(()),
            Err(e @ LockError::DeadlockVictim { .. }) => {
                inner.stats.deadlock_victims.fetch_add(1, Ordering::Relaxed);
                Err(ActionError::Lock(e))
            }
            Err(e) => Err(ActionError::Lock(e)),
        }
    }

    pub(crate) fn current_state(&self, object: ObjectId) -> Option<StoreBytes> {
        if let Some(state) = self.inner.volatile.read(object) {
            return Some(state);
        }
        let state = self.inner.stable.read(object)?;
        self.inner.volatile.write(object, state.clone());
        Some(state)
    }

    // ------------------------------------------------------------------
    // Introspection used by structures, tests and experiments
    // ------------------------------------------------------------------

    /// Registers an external wait edge for deadlock detection: `waiter`
    /// (an action) is blocked on the outcome of `target` outside the
    /// lock table — e.g. a synchronous independent invocation (§3.3).
    /// Pair with [`Runtime::remove_external_wait`]. Returns `true` if a
    /// deadlock was detected (a lock-waiter on the cycle was victimised).
    pub fn add_external_wait(&self, waiter: ActionId, target: ActionId) -> bool {
        self.inner.locks.add_external_wait(waiter, target).is_some()
    }

    /// Removes an external wait edge.
    pub fn remove_external_wait(&self, waiter: ActionId, target: ActionId) {
        self.inner.locks.remove_external_wait(waiter, target);
    }

    /// Returns the locks `action` currently holds (for tests/metrics).
    #[must_use]
    pub fn locks_of(&self, action: ActionId) -> Vec<chroma_locks::LockSnapshot> {
        self.inner.locks.locks_of(action)
    }

    /// Returns the holders of `object` (for tests/metrics).
    #[must_use]
    pub fn holders_of(&self, object: ObjectId) -> Vec<chroma_locks::LockEntry> {
        self.inner.locks.holders(object)
    }

    /// Returns the total number of granted lock entries.
    #[must_use]
    pub fn lock_entry_count(&self) -> usize {
        self.inner.locks.entry_count()
    }

    /// Returns aggregate lock-wait statistics (how often and for how
    /// long actions blocked on locks) — the measurable cost the §3
    /// structures exist to reduce.
    #[must_use]
    pub fn lock_wait_stats(&self) -> chroma_locks::WaitStats {
        self.inner.locks.wait_stats()
    }

    /// The number of shards the lock table was built with (see
    /// [`RuntimeBuilder::lock_shards`]).
    #[must_use]
    pub fn lock_shard_count(&self) -> usize {
        self.inner.locks.shard_count()
    }

    /// Per-shard lock-wait statistics, indexed by shard — a skewed
    /// distribution reveals a hot object concentrating contention.
    #[must_use]
    pub fn lock_shard_wait_stats(&self) -> Vec<chroma_locks::WaitStats> {
        self.inner.locks.shard_wait_stats()
    }

    /// Actions currently parked waiting for a lock (instantaneous
    /// wait-queue depth across shards).
    #[must_use]
    pub fn lock_waiting_count(&self) -> usize {
        self.inner.locks.waiting_count()
    }

    /// Actions begun but not yet terminated (includes open snapshot
    /// actions).
    #[must_use]
    pub fn live_action_count(&self) -> u64 {
        let s = self.stats();
        s.begun.saturating_sub(s.committed + s.aborted)
    }

    /// Stamped flushes since the last automatic version-chain GC sweep
    /// — how much publication traffic the next sweep will cover.
    #[must_use]
    pub fn gc_backlog(&self) -> u64 {
        self.inner.gc_tick.load(Ordering::Relaxed) % GC_EVERY
    }

    /// Publishes one live gauge snapshot: sets the gauge registry on
    /// the installed bus (no-op without one) and emits a
    /// `metrics_snapshot` event so JSONL traces carry the series for
    /// `chroma-trace watch`.
    ///
    /// Gauge catalogue: `locks.entries` (granted lock entries),
    /// `locks.waiting` (parked acquirers), `store.group_queue`
    /// (batches behind the group-commit leader), `store.versions`
    /// (versions across all chains), `store.gc_backlog` (stamped
    /// flushes since the last sweep), `store.ckpt_backlog` (committed
    /// batches the background checkpointer has not yet folded),
    /// `core.snapshots` (open read-only snapshot actions),
    /// `core.live_actions` (begun − terminated).
    pub fn publish_metrics_snapshot(&self) {
        let lock_entries = self.inner.locks.entry_count() as u64;
        let lock_waiters = self.inner.locks.waiting_count() as u64;
        let group_queue = self.inner.stable.queue_depth();
        let versions = self.inner.versions.total_versions();
        let gc_backlog = self.gc_backlog();
        let ckpt_backlog = self.inner.stable.checkpoint_backlog();
        let snapshots = self.inner.snapshots.lock().len() as u64;
        let live_actions = self.live_action_count();
        let obs = self.inner.obs.get();
        obs.set_gauge("locks.entries", lock_entries);
        obs.set_gauge("locks.waiting", lock_waiters);
        obs.set_gauge("store.group_queue", group_queue);
        obs.set_gauge("store.versions", versions);
        obs.set_gauge("store.gc_backlog", gc_backlog);
        obs.set_gauge("store.ckpt_backlog", ckpt_backlog);
        obs.set_gauge("core.snapshots", snapshots);
        obs.set_gauge("core.live_actions", live_actions);
        obs.emit(EventKind::MetricsSnapshot {
            lock_entries,
            lock_waiters,
            group_queue,
            versions,
            gc_backlog,
            ckpt_backlog,
            snapshots,
            live_actions,
        });
    }
}

impl Observable for Runtime {
    /// Installs observability across the runtime, its lock table and
    /// its permanence backend: they start emitting lifecycle, lock and
    /// WAL events, and commit latency feeds the `core.commit_us`
    /// histogram. Node binding travels inside `obs` (see
    /// [`Obs::at_node`] or [`RuntimeBuilder::at_node`]).
    fn install_obs(&self, obs: Obs) {
        self.inner.obs.set(obs.clone());
        self.inner.locks.install_obs(obs.clone());
        self.inner.stable.install_obs(obs);
    }
}

/// Encodes a colour set as the bitmask traces carry (bit *i* = colour
/// index *i*).
fn colour_bits(colours: ColourSet) -> u64 {
    colours
        .iter()
        .fold(0u64, |mask, c| mask | (1u64 << c.index()))
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("stats", &self.stats())
            .field("lock_entries", &self.inner.locks.entry_count())
            .finish()
    }
}
