//! End-to-end semantics of the multi-coloured action runtime: the
//! nested-action baseline, per-colour inheritance and permanence
//! (paper §5.1–§5.2, fig. 10), and crash recovery.

use chroma_core::{ActionError, ActionState, Colour, ColourSet, LockMode, Runtime, RuntimeConfig};
use std::time::Duration;

fn rt_fast() -> Runtime {
    Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_millis(200)),
        })
        .build()
}

fn two_colours(rt: &Runtime) -> (Colour, Colour) {
    (rt.universe().colour("red"), rt.universe().colour("blue"))
}

// ---------------------------------------------------------------------
// Conventional atomic actions (single colour)
// ---------------------------------------------------------------------

#[test]
fn atomic_commit_persists() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&1i64).unwrap();
    rt.atomic(|a| {
        let v: i64 = a.read(o)?;
        a.write(o, &(v + 9))?;
        Ok(())
    })
    .unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 10);
}

#[test]
fn atomic_abort_restores_state() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&1i64).unwrap();
    let result: Result<(), ActionError> = rt.atomic(|a| {
        a.write(o, &99i64)?;
        Err(ActionError::failed("boom"))
    });
    assert!(result.is_err());
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 1);
    assert_eq!(rt.read_current::<i64>(o).unwrap(), 1); // volatile restored too
}

#[test]
fn atomic_abort_releases_locks() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&1i64).unwrap();
    let _ = rt.atomic(|a| {
        a.write(o, &2i64)?;
        Err::<(), _>(ActionError::failed("x"))
    });
    assert_eq!(rt.lock_entry_count(), 0);
    // A fresh action can immediately lock the object.
    rt.atomic(|a| a.write(o, &3i64)).unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 3);
}

#[test]
fn created_object_vanishes_on_abort() {
    let rt = Runtime::builder().build();
    let mut created = None;
    let _ = rt.atomic(|a| {
        created = Some(a.create(&42u8)?);
        Err::<(), _>(ActionError::failed("x"))
    });
    let o = created.unwrap();
    assert!(!rt.object_exists(o));
    assert!(rt.read_committed::<u8>(o).is_err());
}

#[test]
fn created_object_survives_commit() {
    let rt = Runtime::builder().build();
    let o = rt.atomic(|a| a.create(&42u8)).unwrap();
    assert_eq!(rt.read_committed::<u8>(o).unwrap(), 42);
}

// ---------------------------------------------------------------------
// Nested actions (fig. 1 / fig. 2 semantics)
// ---------------------------------------------------------------------

#[test]
fn nested_commit_is_only_permanent_with_top_level() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    // Fig. 2: B commits inside A, then A aborts — B's work is lost.
    let result: Result<(), ActionError> = rt.atomic(|a| {
        a.nested(|b| b.write(o, &7i64))?; // B commits
        Err(ActionError::failed("A aborts"))
    });
    assert!(result.is_err());
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 0);
}

#[test]
fn nested_abort_is_contained() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    rt.atomic(|a| {
        let _ = a.nested(|b| {
            b.write(o, &7i64)?;
            Err::<(), _>(ActionError::failed("B aborts"))
        });
        // A can continue and still sees the original state.
        let v: i64 = a.read(o)?;
        a.write(o, &(v + 1))?;
        Ok(())
    })
    .unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 1);
}

#[test]
fn child_lock_inherited_by_parent_on_commit() {
    let rt = rt_fast();
    let o = rt.create_object(&0i64).unwrap();
    let top = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    let child = rt
        .begin_nested(top, ColourSet::single(rt.default_colour()))
        .unwrap();
    rt.scope(child).unwrap().write(o, &5i64).unwrap();
    rt.commit(child).unwrap();
    // Parent now holds the write lock; a stranger cannot take it.
    let locks = rt.locks_of(top);
    assert_eq!(locks.len(), 1);
    assert_eq!(locks[0].mode, LockMode::Write);
    let stranger = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    let err = rt
        .scope(stranger)
        .unwrap()
        .try_lock(rt.default_colour(), o, LockMode::Read)
        .unwrap_err();
    assert!(matches!(err, ActionError::Lock(_)));
    rt.abort(stranger);
    rt.abort(top);
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 0);
}

#[test]
fn deeply_nested_abort_cascades_to_children_only() {
    let rt = Runtime::builder().build();
    let o1 = rt.create_object(&0i64).unwrap();
    let o2 = rt.create_object(&0i64).unwrap();
    rt.atomic(|a| {
        a.write(o1, &1i64)?;
        let _ = a.nested(|b| {
            b.write(o2, &2i64)?;
            b.nested(|c| c.write(o2, &3i64))?;
            Err::<(), _>(ActionError::failed("B aborts after C committed"))
        });
        Ok(())
    })
    .unwrap();
    assert_eq!(rt.read_committed::<i64>(o1).unwrap(), 1); // A's own write kept
    assert_eq!(rt.read_committed::<i64>(o2).unwrap(), 0); // B and C undone
}

#[test]
fn commit_with_active_children_is_refused() {
    let rt = Runtime::builder().build();
    let top = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    let _child = rt
        .begin_nested(top, ColourSet::single(rt.default_colour()))
        .unwrap();
    assert!(matches!(
        rt.commit(top),
        Err(ActionError::ChildrenActive(_))
    ));
    rt.abort(top);
}

#[test]
fn abort_cascades_through_active_children() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let top = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    let child = rt
        .begin_nested(top, ColourSet::single(rt.default_colour()))
        .unwrap();
    rt.scope(child).unwrap().write(o, &9i64).unwrap();
    rt.abort(top);
    assert_eq!(rt.action_state(child), Some(ActionState::Aborted));
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 0);
    assert_eq!(rt.lock_entry_count(), 0);
}

// ---------------------------------------------------------------------
// Coloured semantics (fig. 10)
// ---------------------------------------------------------------------

#[test]
fn fig10_red_effects_survive_enclosing_abort() {
    let rt = Runtime::builder().build();
    let (red, blue) = two_colours(&rt);
    let o_red = rt.create_object(&0i32).unwrap();
    let o_blue = rt.create_object(&0i32).unwrap();

    let a = rt.begin_top(ColourSet::single(blue)).unwrap();
    let b = rt
        .begin_nested(a, ColourSet::from_iter([red, blue]))
        .unwrap();
    {
        let scope = rt.scope(b).unwrap();
        scope.write_in(red, o_red, &1i32).unwrap();
        scope.write_in(blue, o_blue, &1i32).unwrap();
    }
    rt.commit(b).unwrap();

    // B was outermost red: red effects are already permanent and red
    // locks released.
    assert_eq!(rt.read_committed::<i32>(o_red).unwrap(), 1);
    let stranger = rt.begin_top(ColourSet::single(red)).unwrap();
    rt.scope(stranger)
        .unwrap()
        .try_lock(red, o_red, LockMode::Write)
        .expect("red lock was released at B's commit");
    rt.abort(stranger);

    // Blue locks were retained by A; blue effects not yet permanent.
    assert_eq!(rt.read_committed::<i32>(o_blue).unwrap(), 0);
    assert_eq!(rt.locks_of(a).len(), 1);

    rt.abort(a);
    assert_eq!(rt.read_committed::<i32>(o_red).unwrap(), 1); // survives
    assert_eq!(rt.read_committed::<i32>(o_blue).unwrap(), 0); // undone
    assert_eq!(rt.read_current::<i32>(o_blue).unwrap(), 0);
}

#[test]
fn fig10_commit_of_enclosing_makes_blue_permanent() {
    let rt = Runtime::builder().build();
    let (red, blue) = two_colours(&rt);
    let o_blue = rt.create_object(&0i32).unwrap();

    let a = rt.begin_top(ColourSet::single(blue)).unwrap();
    let b = rt
        .begin_nested(a, ColourSet::from_iter([red, blue]))
        .unwrap();
    rt.scope(b).unwrap().write_in(blue, o_blue, &5i32).unwrap();
    rt.commit(b).unwrap();
    assert_eq!(rt.read_committed::<i32>(o_blue).unwrap(), 0);
    rt.commit(a).unwrap();
    assert_eq!(rt.read_committed::<i32>(o_blue).unwrap(), 5);
    assert_eq!(rt.lock_entry_count(), 0);
}

#[test]
fn inheritance_skips_uncoloured_ancestors() {
    // Fig. 15 shape: E (blue) inside B (red) inside A (red, blue).
    let rt = Runtime::builder().build();
    let (red, blue) = two_colours(&rt);
    let o = rt.create_object(&0i32).unwrap();

    let a = rt.begin_top(ColourSet::from_iter([red, blue])).unwrap();
    let b = rt.begin_nested(a, ColourSet::single(red)).unwrap();
    let e = rt.begin_nested(b, ColourSet::single(blue)).unwrap();
    rt.scope(e).unwrap().write_in(blue, o, &3i32).unwrap();
    rt.commit(e).unwrap();
    // E's blue lock went to A (the closest blue ancestor), not B.
    assert_eq!(rt.locks_of(a).len(), 1);
    assert!(rt.locks_of(b).is_empty());

    // B aborts: E's effects are unaffected (they belong to A now).
    rt.abort(b);
    assert_eq!(rt.read_current::<i32>(o).unwrap(), 3);

    // A aborts: E's effects are finally undone.
    rt.abort(a);
    assert_eq!(rt.read_current::<i32>(o).unwrap(), 0);
}

#[test]
fn write_locks_on_an_object_are_single_coloured() {
    let rt = rt_fast();
    let (red, blue) = two_colours(&rt);
    let o = rt.create_object(&0i32).unwrap();
    let a = rt.begin_top(ColourSet::from_iter([red, blue])).unwrap();
    let scope = rt.scope(a).unwrap();
    scope.write_in(blue, o, &1i32).unwrap();
    // Same action, same object, different colour: the write-colour rule
    // denies it (self is an ancestor, but the colour differs).
    let err = scope.try_lock(red, o, LockMode::Write).unwrap_err();
    assert!(matches!(err, ActionError::Lock(_)));
    rt.abort(a);
}

#[test]
fn colour_not_possessed_is_refused() {
    let rt = Runtime::builder().build();
    let (red, blue) = two_colours(&rt);
    let o = rt.create_object(&0i32).unwrap();
    let a = rt.begin_top(ColourSet::single(blue)).unwrap();
    let err = rt.scope(a).unwrap().write_in(red, o, &1i32).unwrap_err();
    assert!(matches!(err, ActionError::ColourNotHeld { .. }));
    rt.abort(a);
}

#[test]
fn xread_fence_blocks_strangers_but_not_descendants() {
    let rt = rt_fast();
    let (red, blue) = two_colours(&rt);
    let o = rt.create_object(&0i32).unwrap();

    let control = rt.begin_top(ColourSet::single(red)).unwrap();
    rt.scope(control)
        .unwrap()
        .lock(red, o, LockMode::ExclusiveRead)
        .unwrap();

    // A stranger cannot even read.
    let stranger = rt.begin_top(ColourSet::single(blue)).unwrap();
    assert!(rt
        .scope(stranger)
        .unwrap()
        .try_lock(blue, o, LockMode::Read)
        .is_err());
    rt.abort(stranger);

    // A nested blue action can write (fig. 11/12 mechanism).
    let inner = rt.begin_nested(control, ColourSet::single(blue)).unwrap();
    rt.scope(inner).unwrap().write_in(blue, o, &9i32).unwrap();
    rt.commit(inner).unwrap(); // outermost blue: permanent immediately
    assert_eq!(rt.read_committed::<i32>(o).unwrap(), 9);
    rt.commit(control).unwrap();
}

// ---------------------------------------------------------------------
// Crash & recovery
// ---------------------------------------------------------------------

#[test]
fn crash_loses_uncommitted_work() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&1i64).unwrap();
    let a = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    rt.scope(a).unwrap().write(o, &99i64).unwrap();
    rt.crash_and_recover();
    assert_eq!(rt.action_state(a), Some(ActionState::Aborted));
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 1);
    assert_eq!(rt.read_current::<i64>(o).unwrap(), 1);
    assert_eq!(rt.lock_entry_count(), 0);
}

#[test]
fn crash_preserves_committed_work() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&1i64).unwrap();
    rt.atomic(|a| a.write(o, &2i64)).unwrap();
    rt.crash_and_recover();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 2);
    // The system is fully usable after recovery.
    rt.atomic(|a| a.write(o, &3i64)).unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 3);
}

#[test]
fn crash_preserves_outermost_coloured_commits_only() {
    let rt = Runtime::builder().build();
    let (red, blue) = two_colours(&rt);
    let o_red = rt.create_object(&0i32).unwrap();
    let o_blue = rt.create_object(&0i32).unwrap();

    let a = rt.begin_top(ColourSet::single(blue)).unwrap();
    let b = rt
        .begin_nested(a, ColourSet::from_iter([red, blue]))
        .unwrap();
    {
        let scope = rt.scope(b).unwrap();
        scope.write_in(red, o_red, &1i32).unwrap();
        scope.write_in(blue, o_blue, &1i32).unwrap();
    }
    rt.commit(b).unwrap();
    // Crash before A terminates: red (permanent at B's commit) survives,
    // blue (still pending under A) is lost.
    rt.crash_and_recover();
    assert_eq!(rt.read_committed::<i32>(o_red).unwrap(), 1);
    assert_eq!(rt.read_committed::<i32>(o_blue).unwrap(), 0);
}

// ---------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------

#[test]
fn concurrent_increments_serialize() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let rt = rt.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    // modify() takes the write lock up front, avoiding
                    // read→write upgrade deadlocks under contention.
                    rt.atomic(|a| a.modify(o, |v: &mut i64| *v += 1)).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 400);
}

#[test]
fn deadlock_victims_make_progress_possible() {
    let rt = Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_secs(5)),
        })
        .build();
    let o1 = rt.create_object(&0i64).unwrap();
    let o2 = rt.create_object(&0i64).unwrap();
    let mut handles = Vec::new();
    for flip in [false, true] {
        let rt = rt.clone();
        handles.push(std::thread::spawn(move || {
            let (first, second) = if flip { (o2, o1) } else { (o1, o2) };
            // Retry on deadlock victimisation.
            for _ in 0..20 {
                let result = rt.atomic(|a| {
                    a.write(first, &1i64)?;
                    std::thread::sleep(Duration::from_millis(10));
                    a.write(second, &1i64)?;
                    Ok(())
                });
                match result {
                    Ok(()) => return true,
                    Err(e) if e.is_deadlock_victim() => continue,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            false
        }));
    }
    for h in handles {
        assert!(h.join().unwrap(), "a thread never completed");
    }
    assert_eq!(rt.read_committed::<i64>(o1).unwrap(), 1);
}

#[test]
fn read_then_write_retry_recovers_from_upgrade_deadlocks() {
    // Two threads using the naive read-then-write pattern provoke
    // upgrade deadlocks; atomic_retry (with backoff) makes progress.
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let rt = rt.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    rt.atomic_retry(1000, |a| {
                        let v: i64 = a.read(o)?;
                        a.write(o, &(v + 1))?;
                        Ok(())
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 40);
}

#[test]
fn reader_blocks_until_writer_finishes() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let writer_started = std::sync::Arc::new(std::sync::Barrier::new(2));

    let a = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    rt.scope(a).unwrap().write(o, &42i64).unwrap();

    let rt2 = rt.clone();
    let barrier = writer_started.clone();
    let reader = std::thread::spawn(move || {
        barrier.wait();
        // Blocks until the writer commits; sees the committed value.
        rt2.atomic(|s| s.read::<i64>(o)).unwrap()
    });
    writer_started.wait();
    std::thread::sleep(Duration::from_millis(50));
    rt.commit(a).unwrap();
    assert_eq!(reader.join().unwrap(), 42);
}

// ---------------------------------------------------------------------
// Misuse and edge cases
// ---------------------------------------------------------------------

#[test]
fn empty_colour_set_is_rejected() {
    let rt = Runtime::builder().build();
    assert!(matches!(
        rt.begin_top(ColourSet::EMPTY),
        Err(ActionError::NoColours)
    ));
}

#[test]
fn operations_on_terminated_actions_fail() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let a = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    rt.commit(a).unwrap();
    assert!(matches!(rt.scope(a), Err(ActionError::NotActive(_))));
    assert!(matches!(rt.commit(a), Err(ActionError::NotActive(_))));
    // Abort of a terminated action is a harmless no-op.
    rt.abort(a);
    assert_eq!(rt.action_state(a), Some(ActionState::Committed));
    let _ = o;
}

#[test]
fn nesting_under_terminated_parent_fails() {
    let rt = Runtime::builder().build();
    let a = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    rt.commit(a).unwrap();
    assert!(matches!(
        rt.begin_nested(a, ColourSet::single(rt.default_colour())),
        Err(ActionError::ParentNotActive(_))
    ));
}

#[test]
fn read_of_missing_object_fails() {
    let rt = Runtime::builder().build();
    let bogus = chroma_core::ObjectId::from_raw(99_999);
    let err = rt.atomic(|a| a.read::<i64>(bogus)).unwrap_err();
    assert!(matches!(err, ActionError::NoSuchObject(_)));
}

#[test]
fn stats_track_lifecycle() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    rt.atomic(|a| a.write(o, &1i64)).unwrap();
    let _ = rt.atomic(|a| {
        a.write(o, &2i64)?;
        Err::<(), _>(ActionError::failed("x"))
    });
    let stats = rt.stats();
    assert_eq!(stats.begun, 2);
    assert_eq!(stats.committed, 1);
    assert_eq!(stats.aborted, 1);
}
