//! Property tests for MVCC snapshot reads.
//!
//! The model is the serial execution: a `Vec<u64>` of committed key
//! values, cloned at every snapshot open. Random interleavings of
//! committed writes, aborted writes, snapshot opens/closes, GC sweeps
//! and crashes must keep every open snapshot's reads equal to the model
//! captured at its open — i.e. a snapshot read equals a serial
//! execution frozen at the snapshot's stamp — and GC must never
//! reclaim a version a live snapshot can still reach.
//!
//! `CHROMA_TORTURE_SEED` perturbs the initial committed values, so the
//! CI seed matrix explores different version-chain shapes.

use chroma_base::ColourSet;
use chroma_core::{ActionError, Runtime, SnapshotScope};
use proptest::prelude::*;

fn torture_seed() -> u64 {
    std::env::var("CHROMA_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// SplitMix64 step, for deriving per-key initial values from the seed.
fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const KEYS: usize = 6;

/// One step of a random schedule.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Commit `key += delta` through an atomic action.
    WriteCommit { key: usize, delta: u64 },
    /// Write `key += delta`, then abort — invisible to everyone.
    WriteAbort { key: usize, delta: u64 },
    /// Open a snapshot (and remember the model at this instant).
    Open,
    /// Read every key through every open snapshot and compare against
    /// its captured model.
    ReadAll,
    /// Close the oldest open snapshot.
    Close,
    /// Force a version-chain GC sweep.
    Gc,
    /// Crash and recover: open snapshots die, committed state survives.
    Crash,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0u8..12, 0..KEYS, 1u64..5).prop_map(|(code, key, delta)| match code {
        0..=3 => Step::WriteCommit { key, delta },
        4 => Step::WriteAbort { key, delta },
        5 | 6 => Step::Open,
        7 | 8 => Step::ReadAll,
        9 => Step::Close,
        10 => Step::Gc,
        _ => Step::Crash,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_reads_equal_serial_execution_at_their_stamp(
        steps in prop::collection::vec(step_strategy(), 1..80)
    ) {
        let seed = torture_seed();
        let rt = Runtime::builder().build();
        let objects: Vec<_> = (0..KEYS)
            .map(|i| rt.create_object(&splitmix(seed, i as u64)).unwrap())
            .collect();
        let mut committed: Vec<u64> =
            (0..KEYS).map(|i| splitmix(seed, i as u64)).collect();

        // Open snapshots with the model captured at their open; a crash
        // flips `dead` — their reads must then fail NotActive.
        let mut open: Vec<(SnapshotScope<'_>, Vec<u64>, bool)> = Vec::new();

        for step in steps {
            match step {
                Step::WriteCommit { key, delta } => {
                    rt.atomic(|a| a.modify(objects[key], |v: &mut u64| *v += delta))
                        .unwrap();
                    committed[key] += delta;
                }
                Step::WriteAbort { key, delta } => {
                    let id = rt.begin_top(ColourSet::single(rt.default_colour())).unwrap();
                    rt.scope(id)
                        .unwrap()
                        .modify(objects[key], |v: &mut u64| *v += delta)
                        .unwrap();
                    rt.abort(id);
                }
                Step::Open => {
                    open.push((rt.begin_read_only(), committed.clone(), false));
                }
                Step::ReadAll => {
                    for (snap, model, dead) in &open {
                        for (key, &object) in objects.iter().enumerate() {
                            let read = snap.read::<u64>(object);
                            if *dead {
                                prop_assert!(
                                    matches!(read, Err(ActionError::NotActive(_))),
                                    "crashed snapshot still serving reads"
                                );
                            } else {
                                prop_assert_eq!(
                                    read.unwrap(),
                                    model[key],
                                    "snapshot diverged from serial model on key {}",
                                    key
                                );
                            }
                        }
                    }
                }
                Step::Close => {
                    if !open.is_empty() {
                        open.remove(0);
                    }
                }
                Step::Gc => {
                    rt.version_gc();
                }
                Step::Crash => {
                    rt.crash_and_recover();
                    for entry in &mut open {
                        entry.2 = true;
                    }
                    // Committed state must have survived the crash.
                    for (key, &object) in objects.iter().enumerate() {
                        prop_assert_eq!(
                            rt.read_committed::<u64>(object).unwrap(),
                            committed[key]
                        );
                    }
                }
            }
        }

        // Final sweep with everything closed: chains stay bounded and a
        // fresh snapshot sees the serial state.
        drop(open);
        rt.version_gc();
        for &object in &objects {
            prop_assert!(rt.version_chain_len(object) <= 1);
        }
        let fresh = rt.begin_read_only();
        for (key, &object) in objects.iter().enumerate() {
            prop_assert_eq!(fresh.read::<u64>(object).unwrap(), committed[key]);
        }
        fresh.end();
    }
}
