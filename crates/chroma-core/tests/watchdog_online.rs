//! Online-monitoring integration: a real runtime workload runs with
//! the streaming watchdog and flight recorder attached. Clean runs
//! must stay violation-free, live gauges must publish, and a crashed
//! run's flight-recorder dump must parse and audit through the
//! offline `TraceAuditor`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chroma_base::ColourSet;
use chroma_core::{DiskBackend, Runtime, RuntimeConfig};
use chroma_obs::{
    Event, EventBus, EventKind, FlightRecorder, MemorySink, Obs, Observable, TraceAuditor, Watchdog,
};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chroma-watchdog-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run_workload(rt: &Runtime) {
    let objects: Vec<_> = (0..4)
        .map(|i| rt.create_object(&(i as i64)).unwrap())
        .collect();
    for round in 0..6i64 {
        rt.atomic(|a| {
            a.modify(objects[0], |v: &mut i64| *v += round)?;
            a.nested(|b| b.modify(objects[1], |v: &mut i64| *v *= 2))
        })
        .unwrap();
    }
    // an abort path: locks released, never inherited
    let id = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    {
        let scope = rt.scope(id).unwrap();
        scope.modify(objects[2], |v: &mut i64| *v += 100).unwrap();
    }
    rt.abort(id);
    // lock-free snapshot reads over the published chains
    let snap = rt.begin_read_only();
    for &o in &objects {
        let _: i64 = snap.read(o).unwrap();
    }
    snap.end();
}

#[test]
fn clean_run_with_watchdog_stays_violation_free() {
    let dir = scratch("clean");
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(100_000));
    bus.add_sink(sink.clone());
    let recorder = FlightRecorder::attach(&bus, 4096);
    let watchdog = Watchdog::attach(&bus);
    let fired = Arc::new(AtomicU64::new(0));
    let fired2 = fired.clone();
    watchdog.on_violation(move |_| {
        fired2.fetch_add(1, Ordering::Relaxed);
    });

    let rt = Runtime::builder()
        .config(RuntimeConfig::default())
        .backend(Arc::new(DiskBackend::open(&dir).unwrap()))
        .build();
    rt.install_obs(Obs::new(bus.clone()));
    run_workload(&rt);
    rt.publish_metrics_snapshot();

    assert_eq!(watchdog.violations(), 0, "clean run must stay silent");
    assert_eq!(fired.load(Ordering::Relaxed), 0);
    // the offline auditor agrees with the online one
    let report = TraceAuditor::audit_events(&sink.events());
    assert!(report.is_clean(), "{report}");
    // the gauge snapshot landed on the bus and in the trace
    let snap = bus.snapshot();
    assert!(snap.gauge("core.live_actions").is_some(), "{snap}");
    assert!(snap.gauge("store.versions").is_some(), "{snap}");
    let published = sink
        .events()
        .iter()
        .any(|e| matches!(e.kind, EventKind::MetricsSnapshot { .. }));
    assert!(published, "metrics_snapshot missing from the trace");
    // the recorder retained the tail of the run, losslessly
    assert!(!recorder.is_empty());
    for line in recorder.dump_lines() {
        Event::from_json_line(&line).expect("recorder line parses");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crashed_run_dump_parses_and_audits_offline() {
    let dir = scratch("crash");
    let dump = scratch("dump").with_extension("jsonl");
    let bus = Arc::new(EventBus::new());
    let recorder = FlightRecorder::attach(&bus, 8192);
    recorder.set_auto_dump(Some(dump.clone()));
    let watchdog = Watchdog::attach(&bus);

    let rt = Runtime::builder()
        .config(RuntimeConfig::default())
        .backend(Arc::new(DiskBackend::open(&dir).unwrap()))
        .build();
    rt.install_obs(Obs::new(bus.clone()));
    run_workload(&rt);
    // a snapshot left open across the crash gets killed like any
    // other active action
    let open_snap = rt.begin_read_only();
    rt.crash_and_recover();
    assert!(open_snap
        .read::<i64>(chroma_base::ObjectId::from_raw(0))
        .is_err());
    run_workload(&rt);

    assert_eq!(
        watchdog.violations(),
        0,
        "crash recovery is not a violation"
    );
    assert!(recorder.auto_dumps() >= 1, "crash must trigger a dump");
    assert_eq!(recorder.dump_errors(), 0);

    // the dump is a complete offline-analyzable post-mortem
    let text = std::fs::read_to_string(&dump).expect("dump written");
    let events: Vec<Event> = text
        .lines()
        .map(|l| Event::from_json_line(l).expect("dump line parses"))
        .collect();
    assert!(!events.is_empty());
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::NodeCrash { .. })));
    let report = TraceAuditor::audit_events(&events);
    assert!(report.is_clean(), "{report}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&dump).ok();
}

#[test]
fn gauges_reflect_runtime_state() {
    let rt = Runtime::builder().build();
    let bus = Arc::new(EventBus::new());
    rt.install_obs(Obs::new(bus.clone()));
    let o = rt.create_object(&0i64).unwrap();
    rt.atomic(|a| a.modify(o, |v: &mut i64| *v += 1)).unwrap();
    let snap = rt.begin_read_only();
    let id = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    rt.publish_metrics_snapshot();
    assert_eq!(bus.gauge("core.snapshots"), Some(1));
    assert_eq!(
        bus.gauge("core.live_actions"),
        Some(2),
        "snapshot + open top"
    );
    assert_eq!(
        bus.gauge("store.group_queue"),
        Some(0),
        "local backend is sync"
    );
    assert!(bus.gauge("store.versions").unwrap_or(0) >= 1, "one publish");
    snap.end();
    rt.abort(id);
    rt.publish_metrics_snapshot();
    assert_eq!(bus.gauge("core.snapshots"), Some(0));
    assert_eq!(bus.gauge("core.live_actions"), Some(0));
    assert_eq!(bus.gauge("locks.entries"), Some(0), "all locks released");
    assert_eq!(bus.gauge("locks.waiting"), Some(0));
}
