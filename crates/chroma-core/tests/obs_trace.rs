//! End-to-end observability test: a nested-action workload through the
//! real runtime emits an event stream the offline auditor certifies
//! clean, and the bus counters reflect the work actually done.

use std::sync::Arc;

use chroma_base::ColourSet;
use chroma_core::Runtime;
use chroma_obs::{EventBus, MemorySink, TraceAuditor};

#[test]
fn nested_workload_trace_audits_clean() {
    let rt = Runtime::new();
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(100_000));
    bus.add_sink(sink.clone());
    rt.install_obs(bus.clone());

    let o = rt.create_object(&0i64).unwrap();
    for i in 0..5i64 {
        rt.atomic(|a| {
            a.modify(o, |v: &mut i64| *v += i)?;
            a.nested(|b| b.modify(o, |v: &mut i64| *v *= 2))
        })
        .unwrap();
    }

    // An abort must also leave a clean trace: its locks are released,
    // never inherited.
    let id = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    {
        let scope = rt.scope(id).unwrap();
        scope.modify(o, |v: &mut i64| *v += 100).unwrap();
    }
    rt.abort(id);

    assert_eq!(sink.dropped(), 0);
    let report = TraceAuditor::audit_events(&sink.events());
    assert!(report.is_clean(), "{report}");

    let snap = bus.snapshot();
    // 5 outer + 5 nested + 1 aborted action began...
    assert!(snap.counter("action_begin") >= 11);
    assert_eq!(snap.counter("action_abort"), 1);
    // ...every nested commit passed its locks up to the enclosing
    // action, every write left a before-image, and the outermost
    // commits reached the write-ahead log.
    assert!(snap.counter("lock_inherit") >= 5);
    assert!(snap.counter("undo_record") >= 11);
    assert!(snap.counter("wal_append") >= 5);
    assert!(snap.counter("wal_flush") >= 5);
    let commits = snap.histogram("core.commit_us").expect("commit latency");
    assert!(commits.count >= 5, "{commits}");
}

#[test]
fn uninstrumented_runtime_behaves_identically() {
    // The no-op handle path: no bus installed, everything still works.
    let rt = Runtime::new();
    let o = rt.create_object(&1i64).unwrap();
    rt.atomic(|a| a.modify(o, |v: &mut i64| *v += 1)).unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 2);
}
