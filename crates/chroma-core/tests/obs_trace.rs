//! End-to-end observability test: a nested-action workload through the
//! real runtime emits an event stream the offline auditor certifies
//! clean, and the bus counters reflect the work actually done.

use std::sync::Arc;

use chroma_base::{ColourSet, NodeId};
use chroma_core::Runtime;
use chroma_obs::{
    EventBus, EventKind, MemorySink, Obs, Observable, Outcome, SpanForest, SpanKind, TraceAuditor,
};

#[test]
fn nested_workload_trace_audits_clean() {
    let rt = Runtime::builder().build();
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(100_000));
    bus.add_sink(sink.clone());
    rt.install_obs(Obs::new(bus.clone()));

    let o = rt.create_object(&0i64).unwrap();
    for i in 0..5i64 {
        rt.atomic(|a| {
            a.modify(o, |v: &mut i64| *v += i)?;
            a.nested(|b| b.modify(o, |v: &mut i64| *v *= 2))
        })
        .unwrap();
    }

    // An abort must also leave a clean trace: its locks are released,
    // never inherited.
    let id = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    {
        let scope = rt.scope(id).unwrap();
        scope.modify(o, |v: &mut i64| *v += 100).unwrap();
    }
    rt.abort(id);

    assert_eq!(sink.dropped(), 0);
    let report = TraceAuditor::audit_events(&sink.events());
    assert!(report.is_clean(), "{report}");

    let snap = bus.snapshot();
    // 5 outer + 5 nested + 1 aborted action began...
    assert!(snap.counter("action_begin") >= 11);
    assert_eq!(snap.counter("action_abort"), 1);
    // ...every nested commit passed its locks up to the enclosing
    // action, every write left a before-image, and the outermost
    // commits reached the write-ahead log.
    assert!(snap.counter("lock_inherit") >= 5);
    assert!(snap.counter("undo_record") >= 11);
    assert!(snap.counter("wal_append") >= 5);
    assert!(snap.counter("wal_flush") >= 5);
    let commits = snap.histogram("core.commit_us").expect("commit latency");
    assert!(commits.count >= 5, "{commits}");
}

#[test]
fn critical_path_phases_sum_to_measured_commit_latency() {
    // Acceptance check for the profiler: for every committed top-level
    // action, the per-phase attribution must account for the span's
    // entire measured duration (the gap partition is exact, so the
    // "within 5%" budget is met with zero slack).
    let rt = Runtime::builder().build();
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(100_000));
    bus.add_sink(sink.clone());
    rt.install_obs(Obs::new(bus).at_node(NodeId::from_raw(7)));

    let o = rt.create_object(&0i64).unwrap();
    for i in 0..4i64 {
        rt.atomic(|a| {
            a.modify(o, |v: &mut i64| *v += i)?;
            a.nested(|b| b.modify(o, |v: &mut i64| *v *= 3))
        })
        .unwrap();
    }

    let events = sink.events();
    // A node-bound `Obs` stamps that node on every runtime event.
    assert!(
        events.iter().all(|e| e.node == Some(NodeId::from_raw(7))),
        "unbound event in trace"
    );

    let forest = SpanForest::build(&events);
    let report = forest.critical_path(&events);
    assert!(!report.colours.is_empty(), "no committed actions profiled");
    let mut measured_total = 0u64;
    for root in &forest.roots {
        let span = &forest.spans[*root];
        if matches!(
            span.kind,
            SpanKind::Action {
                outcome: Outcome::Committed,
                ..
            }
        ) {
            measured_total += span.duration_us();
        }
    }
    let attributed_total: u64 = report
        .colours
        .values()
        .map(|row| row.phases.iter().sum::<u64>())
        .sum();
    // Exact partition: attributed == measured, well inside the 5%
    // acceptance envelope.
    assert_eq!(attributed_total, measured_total);
    let fsync: u64 = report
        .colours
        .values()
        .map(|row| row.phases[chroma_obs::Phase::Fsync as usize])
        .sum();
    let events_have_flush = events
        .iter()
        .any(|e| matches!(e.kind, EventKind::WalFlush { .. }));
    assert!(events_have_flush, "workload never flushed the WAL");
    let _ = fsync; // flush gaps may round to zero µs; presence checked above
}

#[test]
fn uninstrumented_runtime_behaves_identically() {
    // The no-op handle path: no bus installed, everything still works.
    let rt = Runtime::builder().build();
    let o = rt.create_object(&1i64).unwrap();
    rt.atomic(|a| a.modify(o, |v: &mut i64| *v += 1)).unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 2);
}
