//! Coverage of the less-travelled `ActionScope` and `Runtime` surface:
//! raw reads/writes, explicit locks, try-locks, colour-explicit
//! nesting, pruning, and the local permanence backend.

use chroma_core::{
    ActionError, ActionState, ColourSet, LocalBackend, LockMode, PermanenceBackend, Runtime,
    RuntimeConfig,
};
use chroma_store::StoreBytes;
use std::sync::Arc;
use std::time::Duration;

fn rt_fast() -> Runtime {
    Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_millis(200)),
        })
        .build()
}

#[test]
fn raw_reads_and_writes_round_trip() {
    let rt = Runtime::builder().build();
    let o = rt
        .create_object_raw(StoreBytes::from(vec![1, 2, 3]))
        .unwrap();
    rt.atomic(|a| {
        let bytes = a.read_raw_in(a.default_colour(), o)?;
        assert_eq!(&bytes[..], &[1, 2, 3]);
        a.write_raw_in(a.default_colour(), o, StoreBytes::from(vec![9]))?;
        Ok(())
    })
    .unwrap();
    let backend_view = rt.read_committed::<u8>(o);
    // Raw bytes [9] decode as u8 == 9.
    assert_eq!(backend_view.unwrap(), 9);
}

#[test]
fn explicit_lock_modes_via_scope() {
    let rt = rt_fast();
    let o = rt.create_object(&0i64).unwrap();
    let holder = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    rt.scope(holder)
        .unwrap()
        .lock(rt.default_colour(), o, LockMode::ExclusiveRead)
        .unwrap();
    // Exclusive read blocks another reader entirely.
    let err = rt.atomic(|a| a.read::<i64>(o)).unwrap_err();
    assert!(matches!(err, ActionError::Lock(_)));
    // The holder can upgrade its own xread to write.
    rt.scope(holder)
        .unwrap()
        .lock(rt.default_colour(), o, LockMode::Write)
        .unwrap();
    rt.scope(holder).unwrap().write(o, &5i64).unwrap();
    rt.commit(holder).unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 5);
}

#[test]
fn try_lock_reports_denial_reason() {
    let rt = rt_fast();
    let o = rt.create_object(&0i64).unwrap();
    let holder = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    rt.scope(holder).unwrap().write(o, &1i64).unwrap();
    let probe = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    let err = rt
        .scope(probe)
        .unwrap()
        .try_lock(rt.default_colour(), o, LockMode::Read)
        .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("denied"), "unhelpful error: {text}");
    rt.abort(probe);
    rt.abort(holder);
}

#[test]
fn nested_in_with_explicit_colours() {
    let rt = Runtime::builder().build();
    let extra = rt.universe().colour("extra");
    let o = rt.create_object(&0i64).unwrap();
    rt.atomic(|a| {
        let parent_default = a.default_colour();
        a.nested_in(
            ColourSet::from_iter([parent_default, extra]),
            extra,
            |child| {
                assert_eq!(child.default_colour(), extra);
                assert_eq!(child.colours().len(), 2);
                child.write_in(extra, o, &3i64)
            },
        )
    })
    .unwrap();
    // The nested action was outermost for `extra`: its effect is
    // already permanent even though invoked from a scoped atomic.
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 3);
}

#[test]
fn scope_accessors_are_consistent() {
    let rt = Runtime::builder().build();
    rt.atomic(|a| {
        assert_eq!(a.colours(), ColourSet::single(rt.default_colour()));
        assert_eq!(a.default_colour(), rt.default_colour());
        assert!(rt.action_colours(a.id()).is_some());
        assert_eq!(rt.action_parent(a.id()), None);
        Ok(())
    })
    .unwrap();
}

#[test]
fn prune_terminated_clears_finished_actions() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    for i in 0..10i64 {
        rt.atomic(|a| a.write(o, &i)).unwrap();
    }
    let pruned = rt.prune_terminated();
    assert_eq!(pruned, 10);
    // Later actions still work.
    rt.atomic(|a| a.write(o, &99i64)).unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 99);
}

#[test]
fn local_backend_is_shareable_between_runtimes() {
    // Two runtimes over one backend model two action managers over one
    // object store. Objects created by one are readable (committed) by
    // the other; locking is per-runtime, so this is only safe for
    // disjoint or read-only use — exactly how we use it here.
    let backend = Arc::new(LocalBackend::new());
    let rt1 = Runtime::builder()
        .config(RuntimeConfig::default())
        .backend(backend.clone())
        .build();
    let rt2 = Runtime::builder()
        .config(RuntimeConfig::default())
        .backend(backend.clone())
        .build();
    let o = rt1.create_object(&41i64).unwrap();
    rt1.atomic(|a| a.modify(o, |v: &mut i64| *v += 1)).unwrap();
    assert_eq!(rt2.read_committed::<i64>(o).unwrap(), 42);
    assert!(backend.contains(o));
}

#[test]
fn deep_nesting_commits_and_aborts_correctly() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    rt.atomic(|a| a.nested(|b| b.nested(|c| c.nested(|d| d.nested(|e| e.write(o, &5i64))))))
        .unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 5);

    let result: Result<(), ActionError> = rt.atomic(|a| {
        a.nested(|b| {
            b.nested(|c| c.write(o, &9i64))?;
            Err(ActionError::failed("middle fails"))
        })?;
        Ok(())
    });
    // The middle abort contained the failure; the outer action decided
    // to propagate. Either way the write is gone.
    assert!(result.is_err());
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 5);
}

#[test]
fn action_states_progress_correctly() {
    let rt = Runtime::builder().build();
    let a = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    assert_eq!(rt.action_state(a), Some(ActionState::Active));
    rt.commit(a).unwrap();
    assert_eq!(rt.action_state(a), Some(ActionState::Committed));
    let b = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    rt.abort(b);
    assert_eq!(rt.action_state(b), Some(ActionState::Aborted));
    assert_eq!(rt.action_state(chroma_core::ActionId::from_raw(999)), None);
}

#[test]
fn create_in_non_default_colour() {
    let rt = Runtime::builder().build();
    let red = rt.universe().colour("red");
    let blue = rt.universe().colour("blue");
    let a = rt.begin_top(ColourSet::from_iter([red, blue])).unwrap();
    let o = rt.scope(a).unwrap().create_in(red, &7u32).unwrap();
    // The object exists in working state but is not yet permanent.
    assert!(rt.object_exists(o));
    assert!(rt.read_committed::<u32>(o).is_err());
    rt.commit(a).unwrap();
    assert_eq!(rt.read_committed::<u32>(o).unwrap(), 7);
}

#[test]
fn stats_deadlock_counter_increments() {
    let rt = Runtime::builder().build();
    let o1 = rt.create_object(&0i64).unwrap();
    let o2 = rt.create_object(&0i64).unwrap();
    let rt2 = rt.clone();
    let t = std::thread::spawn(move || {
        let _ = rt2.atomic(|a| {
            a.write(o2, &1i64)?;
            std::thread::sleep(Duration::from_millis(50));
            a.write(o1, &1i64)?;
            Ok(())
        });
    });
    std::thread::sleep(Duration::from_millis(10));
    let _ = rt.atomic(|a| {
        a.write(o1, &1i64)?;
        a.write(o2, &1i64)?;
        Ok(())
    });
    t.join().unwrap();
    // One of the two was a victim, or they serialized cleanly; either
    // way the counter is consistent with the stats invariants.
    let stats = rt.stats();
    assert_eq!(stats.begun, stats.committed + stats.aborted);
}

#[test]
fn runtime_debug_output_is_nonempty() {
    let rt = Runtime::builder().build();
    let text = format!("{rt:?}");
    assert!(text.contains("Runtime"));
    assert!(text.contains("stats"));
}
