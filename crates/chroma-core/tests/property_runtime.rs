//! Property tests for the coloured runtime.
//!
//! The strongest one builds random coloured action trees, commits or
//! aborts each node per a random schedule, and checks observed effect
//! survival against the §5.2 inheritance-chain oracle (the same rule
//! the structure compiler uses): an effect written in colour `c`
//! survives iff no node on its chain of successive
//! closest-`c`-ancestors aborts.

use chroma_core::{ActionError, ActionId, Colour, ColourSet, ObjectId, Runtime};
use proptest::prelude::*;

/// A random action tree node: parent index (< own index), colour bits
/// (1..=3 over two colours), commit flag.
#[derive(Clone, Debug)]
struct NodeSpec {
    parent: Option<usize>,
    colours: u8, // bit 0 = colour red, bit 1 = colour blue (1..=3)
    commit: bool,
}

fn tree_strategy(max: usize) -> impl Strategy<Value = Vec<NodeSpec>> {
    prop::collection::vec((any::<u32>(), 1..=3u8, any::<bool>()), 1..max).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (p, colours, commit))| NodeSpec {
                parent: if i == 0 { None } else { Some((p as usize) % i) },
                colours,
                commit,
            })
            .collect()
    })
}

fn colour_set(rt: &Runtime, bits: u8) -> (ColourSet, Vec<Colour>) {
    let red = rt.universe().colour("red");
    let blue = rt.universe().colour("blue");
    let mut set = ColourSet::EMPTY;
    let mut list = Vec::new();
    if bits & 1 != 0 {
        set = set.with(red);
        list.push(red);
    }
    if bits & 2 != 0 {
        set = set.with(blue);
        list.push(blue);
    }
    (set, list)
}

/// Oracle: does the effect of node `writer` (written in `colour`)
/// survive, given each node's commit/abort fate? The effect climbs the
/// closest-`colour`-ancestor chain; it survives iff the writer and
/// every chain node commit (chain ends at the outermost
/// colour-possessor).
fn oracle_survives(specs: &[NodeSpec], writer: usize, colour_bit: u8) -> bool {
    let mut node = writer;
    loop {
        if !specs[node].commit {
            return false;
        }
        // Find closest proper ancestor possessing the colour.
        let mut cursor = specs[node].parent;
        let mut next = None;
        while let Some(i) = cursor {
            if specs[i].colours & colour_bit != 0 {
                next = Some(i);
                break;
            }
            cursor = specs[i].parent;
        }
        match next {
            Some(anchor) => node = anchor,
            None => return true,
        }
    }
}

/// Executes the tree: each node writes one object per colour it owns,
/// children run before the parent terminates (depth-first), terminations
/// follow the commit flags. Parents whose fate is "abort" abort AFTER
/// their children terminated (matching the oracle's model).
fn execute(rt: &Runtime, specs: &[NodeSpec]) -> Result<Vec<Vec<(u8, ObjectId)>>, ActionError> {
    // Build children lists.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); specs.len()];
    for (i, spec) in specs.iter().enumerate() {
        if let Some(p) = spec.parent {
            children[p].push(i);
        }
    }
    let mut writes: Vec<Vec<(u8, ObjectId)>> = vec![Vec::new(); specs.len()];

    fn run(
        rt: &Runtime,
        specs: &[NodeSpec],
        children: &[Vec<usize>],
        writes: &mut Vec<Vec<(u8, ObjectId)>>,
        index: usize,
        parent: Option<ActionId>,
    ) -> Result<(), ActionError> {
        let (set, colours) = colour_set(rt, specs[index].colours);
        let action = match parent {
            Some(p) => rt.begin_nested(p, set)?,
            None => rt.begin_top(set)?,
        };
        {
            let scope = rt.scope(action)?;
            for colour in colours {
                let object = scope.create_in(colour, &1u8)?;
                let bit = if colour == rt.universe().colour("red") {
                    1
                } else {
                    2
                };
                writes[index].push((bit, object));
            }
        }
        for &child in &children[index] {
            run(rt, specs, children, writes, child, Some(action))?;
        }
        if specs[index].commit {
            rt.commit(action)?;
        } else {
            rt.abort(action);
        }
        Ok(())
    }

    run(rt, specs, &children, &mut writes, 0, None)?;
    // Any forest roots beyond index 0's subtree? No: parent < i ensures
    // a single tree rooted at 0.
    Ok(writes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Observed effect survival equals the inheritance-chain oracle.
    #[test]
    fn survival_matches_inheritance_chain_oracle(specs in tree_strategy(10)) {
        let rt = Runtime::builder().build();
        let writes = execute(&rt, &specs).expect("execution succeeds");
        for (writer, objs) in writes.iter().enumerate() {
            for &(bit, object) in objs {
                let survived = rt.object_exists(object)
                    && rt.read_committed::<u8>(object).is_ok();
                let predicted = oracle_survives(&specs, writer, bit);
                prop_assert_eq!(
                    survived,
                    predicted,
                    "node {} colour-bit {} (object {}): observed {} oracle {}\nspecs: {:?}",
                    writer, bit, object, survived, predicted, specs
                );
            }
        }
        // No locks or undo state leak.
        prop_assert_eq!(rt.lock_entry_count(), 0);
    }

    /// A single action performing random writes then aborting leaves
    /// every object exactly as it was.
    #[test]
    fn abort_restores_every_object(
        initial in prop::collection::vec(any::<i64>(), 1..8),
        ops in prop::collection::vec((0..8usize, any::<i64>()), 0..24),
    ) {
        let rt = Runtime::builder().build();
        let objects: Vec<ObjectId> = initial
            .iter()
            .map(|v| rt.create_object(v).expect("create"))
            .collect();
        let result: Result<(), ActionError> = rt.atomic(|a| {
            for (index, value) in &ops {
                let object = objects[index % objects.len()];
                a.write(object, value)?;
            }
            Err(ActionError::failed("abort"))
        });
        prop_assert!(result.is_err());
        for (object, expected) in objects.iter().zip(&initial) {
            prop_assert_eq!(rt.read_committed::<i64>(*object).expect("read"), *expected);
            prop_assert_eq!(rt.read_current::<i64>(*object).expect("read"), *expected);
        }
        prop_assert_eq!(rt.lock_entry_count(), 0);
    }

    /// Crash-and-recover after random committed work preserves exactly
    /// the committed values.
    #[test]
    fn crash_preserves_exactly_committed_state(
        committed in prop::collection::vec(any::<i64>(), 1..6),
        uncommitted in prop::collection::vec(any::<i64>(), 1..6),
    ) {
        let rt = Runtime::builder().build();
        let objects: Vec<ObjectId> = committed
            .iter()
            .map(|v| rt.create_object(v).expect("create"))
            .collect();
        // Committed updates.
        rt.atomic(|a| {
            for (object, value) in objects.iter().zip(&committed) {
                a.write(*object, &(value.wrapping_add(1)))?;
            }
            Ok(())
        }).expect("commit");
        // Uncommitted updates from a still-active action.
        let top = rt.begin_top(ColourSet::single(rt.default_colour())).expect("begin");
        {
            let scope = rt.scope(top).expect("scope");
            for (object, value) in objects.iter().zip(&uncommitted) {
                scope.write(*object, value).expect("write");
            }
        }
        rt.crash_and_recover();
        for (object, value) in objects.iter().zip(&committed) {
            prop_assert_eq!(
                rt.read_committed::<i64>(*object).expect("read"),
                value.wrapping_add(1)
            );
        }
    }
}
