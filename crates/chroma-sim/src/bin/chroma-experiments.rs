//! Regenerates every experiment of `EXPERIMENTS.md` and prints the
//! reports as markdown. Run with `--release` for representative timing
//! rows.

fn main() {
    let reports = chroma_sim::experiments::run_all();
    println!("# Chroma experiment reports\n");
    let mut failures = 0;
    for report in &reports {
        println!("{}", report.to_markdown());
        if !report.pass {
            failures += 1;
        }
    }
    println!(
        "\n## Summary: {}/{} experiments reproduced\n",
        reports.len() - failures,
        reports.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
