//! Regenerates every experiment of `EXPERIMENTS.md` and prints the
//! reports as markdown. Run with `--release` for representative timing
//! rows.
//!
//! `--trace <path>` additionally runs an instrumented demonstration
//! workload — nested local actions plus a distributed two-phase commit
//! under message loss and a participant crash — writing its event
//! stream to `<path>` as JSONL, auditing it offline, and printing the
//! metrics snapshot.

use std::path::Path;
use std::sync::Arc;

use chroma_base::ObjectId;
use chroma_core::Runtime;
use chroma_dist::{Sim, Write, RETRY_INTERVAL};
use chroma_obs::{EventBus, JsonlSink, MemorySink, TraceAuditor};
use chroma_store::StoreBytes;

fn main() {
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => {
                trace_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--trace requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other} (supported: --trace <path>)");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = trace_path {
        write_trace(Path::new(&path));
    }

    let reports = chroma_sim::experiments::run_all();
    println!("# Chroma experiment reports\n");
    let mut failures = 0;
    for report in &reports {
        println!("{}", report.to_markdown());
        if !report.pass {
            failures += 1;
        }
    }
    println!(
        "\n## Summary: {}/{} experiments reproduced\n",
        reports.len() - failures,
        reports.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

fn write_trace(path: &Path) {
    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", path.display());
        std::process::exit(2);
    });
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(1_000_000));
    bus.add_sink(Arc::new(JsonlSink::new(std::io::BufWriter::new(file))));
    bus.add_sink(sink.clone());

    // Nested local actions: lock, undo, inheritance and WAL traffic.
    let rt = Runtime::new();
    rt.install_obs(bus.clone());
    let o = rt.create_object(&0i64).expect("create");
    for i in 0..8i64 {
        rt.atomic(|a| {
            a.modify(o, |v: &mut i64| *v += i)?;
            a.nested(|b| b.modify(o, |v: &mut i64| *v ^= 1))
        })
        .expect("workload action");
    }

    // Distributed 2PC under loss with a crashing participant:
    // prepare/vote/decide/resolve and network traffic, stamped with
    // simulated time.
    let mut sim = Sim::new(7);
    sim.net.loss = 0.1;
    sim.install_obs(bus.clone());
    let coord = sim.add_node();
    let p1 = sim.add_node();
    let p2 = sim.add_node();
    let w = |n: u64, v: u8| Write {
        object: ObjectId::from_raw(n),
        state: StoreBytes::from(vec![v]),
    };
    sim.begin_transaction(
        coord,
        vec![
            (coord, vec![w(1, 1)]),
            (p1, vec![w(2, 2)]),
            (p2, vec![w(3, 3)]),
        ],
    );
    sim.schedule_crash(p2, RETRY_INTERVAL);
    sim.schedule_recover(p2, 10 * RETRY_INTERVAL);
    sim.run_to_quiescence();

    bus.flush();
    let report = TraceAuditor::audit_events(&sink.events());
    eprintln!(
        "trace: {} events written to {}\n{report}\n{}",
        report.events,
        path.display(),
        bus.snapshot().render()
    );
}
