//! Regenerates every experiment of `EXPERIMENTS.md` and prints the
//! reports as markdown. Run with `--release` for representative timing
//! rows.
//!
//! `--trace <path>` additionally runs an instrumented demonstration
//! workload — nested local actions over a real on-disk WAL, coloured
//! top-level actions, a distributed two-phase commit under message loss
//! and a participant crash, and a replicated object surviving a member
//! crash — writing its event stream to `<path>` as JSONL, auditing it
//! offline, and printing the metrics snapshot (including `store.fsync_us`
//! and the per-colour `core.commit_us.*` breakdown).
//!
//! `--trace-only <path>` writes the same trace and exits without
//! regenerating the experiment tables — the fast path CI uses before
//! handing the trace to `chroma-trace analyze`. Both variants derive
//! the simulation seed from `CHROMA_TORTURE_SEED` when set, so the CI
//! seed matrix exercises distinct network schedules.

use std::path::Path;
use std::sync::Arc;

use chroma_base::{ColourSet, NodeId, ObjectId};
use chroma_core::{DiskBackend, Runtime, RuntimeConfig};
use chroma_dist::{ReplicatedObject, Sim, Write, RETRY_INTERVAL};
use chroma_obs::{EventBus, JsonlSink, MemorySink, Obs, Observable, TraceAuditor};
use chroma_store::StoreBytes;

/// The node id the local (non-simulated) runtime is bound to in traces.
/// Far above any id the simulator allocates, so the Chrome export gives
/// the local runtime its own track instead of colliding with node 0.
const LOCAL_RUNTIME_NODE: u32 = 100;

fn main() {
    let mut trace_path: Option<String> = None;
    let mut trace_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" | "--trace-only" => {
                trace_only = arg == "--trace-only";
                trace_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("{arg} requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument: {other} (supported: --trace <path>, --trace-only <path>)"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = trace_path {
        write_trace(Path::new(&path));
        if trace_only {
            return;
        }
    }

    let reports = chroma_sim::experiments::run_all();
    println!("# Chroma experiment reports\n");
    let mut failures = 0;
    for report in &reports {
        println!("{}", report.to_markdown());
        if !report.pass {
            failures += 1;
        }
    }
    println!(
        "\n## Summary: {}/{} experiments reproduced\n",
        reports.len() - failures,
        reports.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

fn write_trace(path: &Path) {
    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", path.display());
        std::process::exit(2);
    });
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(1_000_000));
    bus.add_sink(Arc::new(JsonlSink::new(std::io::BufWriter::new(file))));
    bus.add_sink(sink.clone());

    // Nested local actions over a real on-disk WAL: lock, undo,
    // inheritance, fsync latency (`store.fsync_us`) and the disk event
    // vocabulary. This wall-clock section runs before any simulation
    // attaches (installing a sim switches the bus to simulated time).
    let dir = std::env::temp_dir().join(format!("chroma-trace-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let rt = Runtime::builder()
        .config(RuntimeConfig::default())
        .backend(Arc::new(DiskBackend::open(&dir).expect("open trace store")))
        .build();
    rt.install_obs(Obs::new(bus.clone()).at_node(NodeId::from_raw(LOCAL_RUNTIME_NODE)));
    let o = rt.create_object(&0i64).expect("create");
    for i in 0..8i64 {
        rt.atomic(|a| {
            a.modify(o, |v: &mut i64| *v += i)?;
            a.nested(|b| b.modify(o, |v: &mut i64| *v ^= 1))
        })
        .expect("workload action");
    }

    // Coloured top-level actions: each outermost commit lands in its
    // colour's `core.commit_us.<name>` histogram.
    for name in ["red", "blue"] {
        let colour = rt.universe().colour(name);
        for delta in 1..=3i64 {
            let action = rt
                .begin_top(ColourSet::single(colour))
                .expect("coloured action");
            rt.scope(action)
                .expect("scope")
                .modify(o, |v: &mut i64| *v += delta)
                .expect("coloured write");
            rt.commit(action).expect("coloured commit");
        }
    }
    std::fs::remove_dir_all(&dir).ok();

    // Distributed 2PC under loss with a crashing participant:
    // prepare/vote/decide/resolve and network traffic, stamped with
    // simulated time.
    let seed = std::env::var("CHROMA_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let mut sim = Sim::new(seed);
    sim.net.loss = 0.1;
    sim.install_obs(Obs::new(bus.clone()));
    let coord = sim.add_node();
    let p1 = sim.add_node();
    let p2 = sim.add_node();
    let w = |n: u64, v: u8| Write {
        object: ObjectId::from_raw(n),
        state: StoreBytes::from(vec![v]),
    };
    sim.begin_transaction(
        coord,
        vec![
            (coord, vec![w(1, 1)]),
            (p1, vec![w(2, 2)]),
            (p2, vec![w(3, 3)]),
        ],
    );
    sim.schedule_crash(p2, RETRY_INTERVAL);
    sim.schedule_recover(p2, 10 * RETRY_INTERVAL);
    sim.run_to_quiescence();

    // Replication on the same simulation: a member misses a write while
    // down, recovers, and catches up — the fan-out, install, catch-up
    // and read events all land in the trace.
    let members = vec![sim.add_node(), sim.add_node(), sim.add_node()];
    let replica = ReplicatedObject::create(&mut sim, ObjectId::from_raw(500), &members, b"r0");
    replica.write(&mut sim, b"r1").expect("replica write");
    sim.run_to_quiescence();
    replica.crash_member(&mut sim, members[1], 2 * RETRY_INTERVAL);
    sim.run(10);
    replica.write(&mut sim, b"r2").expect("replica write");
    sim.run_to_quiescence();
    let (version, _) = replica.read(&sim).expect("replica read");
    assert_eq!(version, 2, "replica failed to converge");

    bus.flush();
    let report = TraceAuditor::audit_events(&sink.events());
    eprintln!(
        "trace: {} events written to {}\n{report}\n{}",
        report.events,
        path.display(),
        bus.snapshot().render()
    );
    if !report.is_clean() {
        eprintln!("trace audit found violations; failing");
        std::process::exit(1);
    }
}
