//! Contention workloads over the coloured runtime.
//!
//! These drive the quantitative experiments: configurable object
//! counts, thread counts, read/write mixes and hot-set skew, producing
//! throughput and wait-time measurements.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chroma_core::{ActionError, ObjectId, Runtime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Summary;

/// Configuration of a contention workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of shared objects.
    pub objects: usize,
    /// Number of worker threads.
    pub threads: usize,
    /// Actions per thread.
    pub actions_per_thread: usize,
    /// Objects touched per action.
    pub ops_per_action: usize,
    /// Probability an op is a write (vs read).
    pub write_ratio: f64,
    /// Fraction of accesses aimed at the first object (hot spot);
    /// remaining accesses are uniform.
    pub hot_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            objects: 16,
            threads: 4,
            actions_per_thread: 100,
            ops_per_action: 3,
            write_ratio: 0.5,
            hot_ratio: 0.2,
            seed: 42,
        }
    }
}

/// Results of a workload run.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Actions that committed.
    pub committed: u64,
    /// Actions that were deadlock-victimised (and retried).
    pub deadlock_retries: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-action latency summary.
    pub latency: Summary,
}

impl WorkloadResult {
    /// Committed actions per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.committed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs a read/write contention workload of conventional atomic actions
/// and reports throughput and latency.
///
/// # Panics
///
/// Panics on unexpected runtime errors (the workload itself only
/// provokes deadlock victimisations, which are retried).
#[must_use]
pub fn run_contention(rt: &Runtime, config: &WorkloadConfig) -> WorkloadResult {
    let objects: Vec<ObjectId> = (0..config.objects)
        .map(|_| rt.create_object(&0i64).expect("create object"))
        .collect();
    let objects = Arc::new(objects);
    let retries = Arc::new(AtomicU64::new(0));
    let committed = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut latencies: Vec<Vec<Duration>> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for thread in 0..config.threads {
            let rt = rt.clone();
            let objects = Arc::clone(&objects);
            let retries = Arc::clone(&retries);
            let committed = Arc::clone(&committed);
            let config = *config;
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config.seed ^ (thread as u64) << 32);
                let mut samples = Vec::with_capacity(config.actions_per_thread);
                for _ in 0..config.actions_per_thread {
                    // Pre-draw the op list so retries replay identically.
                    let ops: Vec<(usize, bool)> = (0..config.ops_per_action)
                        .map(|_| {
                            let hot = rng.gen_bool(config.hot_ratio.clamp(0.0, 1.0));
                            let index = if hot || config.objects == 1 {
                                0
                            } else {
                                rng.gen_range(1..config.objects)
                            };
                            (index, rng.gen_bool(config.write_ratio.clamp(0.0, 1.0)))
                        })
                        .collect();
                    let begun = Instant::now();
                    loop {
                        let result: Result<(), ActionError> = rt.atomic(|a| {
                            for &(index, write) in &ops {
                                let object = objects[index];
                                if write {
                                    a.modify(object, |v: &mut i64| *v += 1)?;
                                } else {
                                    let _: i64 = a.read(object)?;
                                }
                            }
                            Ok(())
                        });
                        match result {
                            Ok(()) => break,
                            Err(e) if e.is_deadlock_victim() => {
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("workload failed: {e}"),
                        }
                    }
                    committed.fetch_add(1, Ordering::Relaxed);
                    samples.push(begun.elapsed());
                }
                samples
            }));
        }
        for handle in handles {
            latencies.push(handle.join().expect("worker panicked"));
        }
    });

    let all: Vec<Duration> = latencies.into_iter().flatten().collect();
    WorkloadResult {
        committed: committed.load(Ordering::Relaxed),
        deadlock_retries: retries.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        latency: Summary::from_durations(&all),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_commits_everything() {
        let rt = Runtime::builder().build();
        let config = WorkloadConfig {
            threads: 3,
            actions_per_thread: 20,
            ..WorkloadConfig::default()
        };
        let result = run_contention(&rt, &config);
        assert_eq!(result.committed, 60);
        assert!(result.throughput() > 0.0);
        assert_eq!(result.latency.count, 60);
    }

    #[test]
    fn write_counts_are_serializable() {
        // Total increments recorded across objects equals the number of
        // write ops performed (no lost updates).
        let rt = Runtime::builder().build();
        let config = WorkloadConfig {
            objects: 4,
            threads: 4,
            actions_per_thread: 25,
            ops_per_action: 2,
            write_ratio: 1.0,
            hot_ratio: 0.5,
            seed: 7,
        };
        let result = run_contention(&rt, &config);
        assert_eq!(result.committed, 100);
        // 100 actions x 2 writes = 200 increments in total.
        let mut total = 0i64;
        for raw in 1..=4u64 {
            // Objects were created first in this runtime: ids 1..=4.
            total += rt
                .read_committed::<i64>(chroma_core::ObjectId::from_raw(raw))
                .unwrap_or(0);
        }
        assert_eq!(total, 200);
    }
}
