//! Workloads, metrics and the experiment harness for chroma.
//!
//! * [`metrics`] — duration summaries and [`metrics::ExperimentReport`],
//!   the structured result each experiment produces;
//! * [`workload`] — configurable contention workloads over the runtime;
//! * [`experiments`] — one function per paper figure (E01–E15) and per
//!   ablation (A1–A5); [`experiments::run_all`] regenerates every row
//!   of `EXPERIMENTS.md`.
//!
//! The `chroma-experiments` binary prints all reports as markdown:
//!
//! ```text
//! cargo run --release -p chroma-sim --bin chroma-experiments
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod workload;

pub use metrics::{ExperimentReport, Row, Summary};
pub use workload::{run_contention, WorkloadConfig, WorkloadResult};
