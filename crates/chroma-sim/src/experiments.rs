//! The experiment harness: one function per paper figure (E01–E15) and
//! per ablation (A1–A5), each regenerating the figure's claim as
//! measurements. `run_all` produces the data behind `EXPERIMENTS.md`.
//!
//! The paper has no numbered tables; its evaluation content is the 15
//! figures (action structures and their colour implementations) plus
//! the §4 application claims. Each experiment states the claim, runs
//! the scenario on the real runtime, and reports measured rows plus
//! pass/fail checks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chroma_apps::{schedule_meeting, Diary, DistMake, Ledger, Makefile, ScheduleOutcome};
use chroma_base::{ColourSet, LockMode, ObjectId};
use chroma_core::{ActionError, Runtime, RuntimeConfig};
use chroma_dist::{Sim, Write};
use chroma_locks::{ClassicPolicy, ColouredPolicy, FlatAncestry, LockTable};
use chroma_structures::compiler::{assign, Structure};
use chroma_structures::{independent_sync, GluedChain, GluedGroup, SerializingAction};

use crate::metrics::{ExperimentReport, Summary};

/// Runs every experiment and returns the reports in id order.
#[must_use]
pub fn run_all() -> Vec<ExperimentReport> {
    vec![
        e01_concurrent_nested(),
        e02_nesting_loses_work(),
        e03_serializing_outcomes(),
        e04_baseline_structures(),
        e05_glued_selective_release(),
        e06_concurrent_glued(),
        e07_independent_actions(),
        e08_distributed_make(),
        e09_diary_scheduling(),
        e10_coloured_basics(),
        e11_serializing_via_colours(),
        e12_glued_via_colours(),
        e13_independent_via_colours(),
        e14_nlevel_independence(),
        e15_automatic_colours(),
        a1_single_colour_equivalence(),
        a2_lock_availability(),
        a3_tpc_under_faults(),
        a4_replication_availability(),
        a5_lock_manager_overhead(),
        a6_distributed_runtime(),
        a7_type_specific_concurrency(),
    ]
}

fn rt_fast() -> Runtime {
    Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_millis(500)),
        })
        .build()
}

/// Can a bystander take a write lock on `object` right now?
fn probe_free(rt: &Runtime, object: ObjectId) -> bool {
    let probe = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .expect("begin probe");
    let outcome = rt
        .scope(probe)
        .and_then(|s| s.try_lock(rt.default_colour(), object, LockMode::Write));
    rt.abort(probe);
    outcome.is_ok()
}

// ---------------------------------------------------------------------
// E01 — fig. 1: concurrent nested atomic actions
// ---------------------------------------------------------------------

/// Fig. 1: nested actions B, C run concurrently inside A; A's abort
/// undoes even committed children; concurrency yields real speedup.
#[must_use]
pub fn e01_concurrent_nested() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E01",
        "concurrent nested atomic actions (fig. 1)",
        "nested actions run concurrently within a parent; only the \
         top-level commit makes their effects permanent",
    );
    let rt = Runtime::builder().build();
    let objects: Vec<ObjectId> = (0..4)
        .map(|_| rt.create_object(&0i64).expect("create"))
        .collect();
    let work = Duration::from_millis(25);

    // Concurrent children.
    let parent = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .expect("begin");
    let begun = Instant::now();
    std::thread::scope(|scope| {
        for &object in &objects {
            let rt = rt.clone();
            scope.spawn(move || {
                rt.run_nested(
                    parent,
                    ColourSet::single(rt.default_colour()),
                    rt.default_colour(),
                    |child| {
                        std::thread::sleep(work);
                        child.write(object, &1i64)
                    },
                )
                .expect("child");
            });
        }
    });
    let concurrent = begun.elapsed();
    // Children committed, but permanence awaits the top level.
    let visible_before = rt.read_committed::<i64>(objects[0]).expect("read");
    rt.abort(parent);
    let after_abort = rt.read_committed::<i64>(objects[0]).expect("read");

    let serial_estimate = work * objects.len() as u32;
    let speedup = serial_estimate.as_secs_f64() / concurrent.as_secs_f64();
    report.row("children", objects.len());
    report.row("serial estimate", format!("{serial_estimate:?}"));
    report.row("concurrent wall time", format!("{concurrent:?}"));
    report.row("speedup", format!("{speedup:.2}x"));
    report.check("children overlap (speedup > 1.5x)", speedup > 1.5);
    report.check("child commits not yet permanent", visible_before == 0);
    report.check("parent abort undoes committed children", after_abort == 0);
    report
}

// ---------------------------------------------------------------------
// E02 — fig. 2: the motivating defect of plain nesting
// ---------------------------------------------------------------------

/// Fig. 2: B's long computation inside A is lost when A aborts after
/// B completed — quantified as work units lost.
#[must_use]
pub fn e02_nesting_loses_work() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E02",
        "nesting forfeits completed work (fig. 2)",
        "if B terminates successfully but a failure prevents completion \
         of A, A's abort undoes the effects of B",
    );
    let rt = Runtime::builder().build();
    let units = 16usize;
    let objects: Vec<ObjectId> = (0..units)
        .map(|_| rt.create_object(&0i64).expect("create"))
        .collect();
    let result: Result<(), ActionError> = rt.atomic(|a| {
        a.nested(|b| {
            for &o in &objects {
                b.write(o, &1i64)?;
            }
            Ok(())
        })?;
        Err(ActionError::failed("A aborts after B committed"))
    });
    assert!(result.is_err());
    let surviving = objects
        .iter()
        .filter(|&&o| rt.read_committed::<i64>(o).unwrap_or(0) == 1)
        .count();
    report.row("work units performed by B", units);
    report.row("work units surviving A's abort", surviving);
    report.check("all of B's work lost (the defect)", surviving == 0);
    report
}

// ---------------------------------------------------------------------
// E03 — fig. 3: the three serializing outcomes
// ---------------------------------------------------------------------

/// Fig. 3: randomized failure injection produces exactly the three
/// §3.1 outcomes, with B's completed work always preserved.
#[must_use]
pub fn e03_serializing_outcomes() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E03",
        "serializing action outcomes (fig. 3)",
        "(i) nothing if B aborts; (ii) B and C if both commit, visible \
         together; (iii) B only if C aborts — B's work survives",
    );
    let rt = rt_fast();
    let trials = 120u32;
    let (mut none, mut both, mut b_only) = (0u32, 0u32, 0u32);
    let mut consistent = true;
    for trial in 0..trials {
        let b_obj = rt.create_object(&0i64).expect("create");
        let c_obj = rt.create_object(&0i64).expect("create");
        let fail_b = trial % 4 == 0;
        let fail_c = trial % 3 == 0;
        let sa = SerializingAction::begin(&rt).expect("begin");
        let b_result = sa.step(|s| {
            s.write(b_obj, &1i64)?;
            if fail_b {
                return Err(ActionError::failed("B fails"));
            }
            Ok(())
        });
        if b_result.is_ok() {
            let _ = sa.step(|s| {
                s.write(c_obj, &1i64)?;
                if fail_c {
                    return Err(ActionError::failed("C fails"));
                }
                Ok(())
            });
        }
        sa.end().expect("end");
        let b_done = rt.read_committed::<i64>(b_obj).unwrap_or(0) == 1;
        let c_done = rt.read_committed::<i64>(c_obj).unwrap_or(0) == 1;
        match (b_done, c_done) {
            (false, false) => none += 1,
            (true, true) => both += 1,
            (true, false) => b_only += 1,
            (false, true) => consistent = false, // impossible outcome
        }
        consistent &= b_done != fail_b;
        if !fail_b {
            consistent &= c_done != fail_c;
        }
    }
    report.row("trials", trials);
    report.row("outcome (i) nothing", none);
    report.row("outcome (ii) B and C", both);
    report.row("outcome (iii) B only", b_only);
    report.check("every trial lands in a legal outcome", consistent);
    report.check(
        "outcome (iii) occurs (impossible with plain nesting)",
        b_only > 0,
    );
    report
}

// ---------------------------------------------------------------------
// E04 — fig. 4: the two rejected baselines
// ---------------------------------------------------------------------

/// Fig. 4: two top-level actions leave an unprotected gap (a);
/// a serializing action over-locks the whole read set (b).
#[must_use]
pub fn e04_baseline_structures() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E04",
        "rejected baselines for A-then-B (fig. 4)",
        "(a) separate top-level actions cannot keep the hand-over set \
         unchanged between A and B; (b) a serializing action keeps even \
         unrelated objects locked until B ends",
    );
    let rt = rt_fast();
    let total = 8usize;
    let handover = 2usize;
    // (a) Two top-level actions with a gap.
    let objects: Vec<ObjectId> = (0..total)
        .map(|_| rt.create_object(&0i64).expect("create"))
        .collect();
    rt.atomic(|a| {
        for &o in &objects {
            a.write(o, &1i64)?;
        }
        Ok(())
    })
    .expect("action A");
    // The gap: an intruder modifies a handed-over object before B runs.
    let intruded = probe_free(&rt, objects[0]);
    report.row(
        "(a) intruder can grab hand-over object in the gap",
        intruded,
    );
    report.check("(a) gap is unprotected", intruded);

    // (b) Serializing action: protected, but everything is fenced.
    let sa = SerializingAction::begin(&rt).expect("begin");
    sa.step(|s| {
        for &o in &objects {
            s.write(o, &2i64)?;
        }
        Ok(())
    })
    .expect("step A");
    let accessible = objects.iter().filter(|&&o| probe_free(&rt, o)).count();
    report.row(
        "(b) serializing: objects accessible between A and B",
        format!("{accessible} of {total}"),
    );
    report.check("(b) hand-over protected", !probe_free(&rt, objects[0]));
    report.check("(b) over-locking: nothing accessible", accessible == 0);
    sa.end().expect("end");
    let _ = handover;
    report
}

// ---------------------------------------------------------------------
// E05 — fig. 5: glued actions
// ---------------------------------------------------------------------

/// Fig. 5: gluing passes exactly the selected subset; the rest is
/// released at A's commit; no cascade abort is possible.
#[must_use]
pub fn e05_glued_selective_release() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E05",
        "glued actions release the rest (fig. 5)",
        "locks on P pass from A to B atomically; locks on O−P are \
         released at A's commit; B's abort cannot cascade into A",
    );
    let rt = rt_fast();
    let total = 8usize;
    let handover = 2usize;
    let objects: Vec<ObjectId> = (0..total)
        .map(|_| rt.create_object(&0i64).expect("create"))
        .collect();
    let chain = GluedChain::begin(&rt, 2).expect("begin");
    chain
        .step(|s| {
            for &o in &objects {
                s.write(o, &1i64)?;
            }
            for &o in &objects[..handover] {
                s.hand_over(o)?;
            }
            Ok(())
        })
        .expect("step A");
    let accessible = objects.iter().filter(|&&o| probe_free(&rt, o)).count();
    let p_protected = !probe_free(&rt, objects[0]);
    report.row(
        "objects accessible between A and B",
        format!("{accessible} of {total} (|O−P| = {})", total - handover),
    );
    report.check("O−P fully available", accessible == total - handover);
    report.check("P protected", p_protected);
    // B aborts: A's committed effects stand (no cascade).
    let _ = chain.step(|s| {
        s.write(objects[0], &9i64)?;
        Err::<(), _>(ActionError::failed("B aborts"))
    });
    chain.end().expect("end");
    let a_effect = rt.read_committed::<i64>(objects[0]).expect("read");
    report.check("B's abort does not cascade into A", a_effect == 1);
    report
}

// ---------------------------------------------------------------------
// E06 — fig. 6: concurrent glued actions
// ---------------------------------------------------------------------

/// Fig. 6: n contributors glue to n receivers through one shared glue
/// colour; all hand-overs are atomic and parallel.
#[must_use]
pub fn e06_concurrent_glued() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E06",
        "concurrent glued actions (fig. 6)",
        "A1..An pass objects to B1..Bn without any other action \
         interposing, with full parallelism among the pairs",
    );
    let rt = rt_fast();
    let pairs = 6usize;
    let objects: Vec<ObjectId> = (0..pairs)
        .map(|_| rt.create_object(&1i64).expect("create"))
        .collect();
    let group = Arc::new(GluedGroup::begin(&rt).expect("begin"));
    let begun = Instant::now();
    std::thread::scope(|scope| {
        for &o in &objects {
            let group = Arc::clone(&group);
            scope.spawn(move || {
                group
                    .contribute(|s| {
                        std::thread::sleep(Duration::from_millis(10));
                        s.modify(o, |v: &mut i64| *v += 10)?;
                        s.hand_over(o)
                    })
                    .expect("contributor");
            });
        }
    });
    let fenced = objects.iter().all(|&o| !probe_free(&rt, o));
    std::thread::scope(|scope| {
        for &o in &objects {
            let group = Arc::clone(&group);
            scope.spawn(move || {
                group
                    .receive(|s| {
                        std::thread::sleep(Duration::from_millis(10));
                        s.modify(o, |v: &mut i64| *v *= 2)
                    })
                    .expect("receiver");
            });
        }
    });
    let elapsed = begun.elapsed();
    Arc::try_unwrap(group)
        .expect("sole owner")
        .end()
        .expect("end");
    let correct = objects
        .iter()
        .all(|&o| rt.read_committed::<i64>(o).unwrap_or(0) == 22);
    let serial_estimate = Duration::from_millis(10) * (2 * pairs) as u32;
    report.row("pairs", pairs);
    report.row("wall time", format!("{elapsed:?}"));
    report.row("serial estimate", format!("{serial_estimate:?}"));
    report.check("objects fenced between contribution and receipt", fenced);
    report.check("all pairs processed their hand-over (1+10)*2", correct);
    report.check(
        "pairs ran in parallel",
        elapsed < serial_estimate.mul_f64(0.75),
    );
    report
}

// ---------------------------------------------------------------------
// E07 — fig. 7: top-level independent actions
// ---------------------------------------------------------------------

/// Fig. 7: sync and async independent actions commit or abort
/// independently of the invoker; billing is the canonical use.
#[must_use]
pub fn e07_independent_actions() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E07",
        "top-level independent actions (fig. 7)",
        "an invoked independent action can commit although its invoker \
         aborts (and vice versa); charging information is not recovered",
    );
    let rt = Runtime::builder().build();
    let ledger = Ledger::create(&rt).expect("ledger");
    let trials = 50u32;
    let mut preserved = 0u32;
    for i in 0..trials {
        let result: Result<(), ActionError> = rt.atomic(|a| {
            ledger.charge_from(a, "user", "op", 1)?;
            if i % 2 == 0 {
                Err(ActionError::failed("invoker aborts"))
            } else {
                Ok(())
            }
        });
        let _ = result;
        preserved += 1;
    }
    let total = ledger.total().expect("total");
    report.row("invocations (half of invokers abort)", trials);
    report.row("charges preserved", total);
    report.check("every charge survives", total == u64::from(preserved));

    // The reverse direction: the independent action aborts, the invoker
    // continues and commits.
    let o = rt.create_object(&0i64).expect("create");
    rt.atomic(|a| {
        let inner: Result<(), ActionError> =
            independent_sync(a, |_| Err(ActionError::failed("independent aborts")));
        assert!(inner.is_err());
        a.write(o, &1i64)
    })
    .expect("invoker continues");
    report.check(
        "invoker survives the independent action's abort",
        rt.read_committed::<i64>(o).expect("read") == 1,
    );
    report
}

// ---------------------------------------------------------------------
// E08 — fig. 8: distributed make
// ---------------------------------------------------------------------

/// Fig. 8: concurrent prerequisite builds; completed compiles survive
/// failures (vs the monolithic-action baseline which redoes them).
#[must_use]
pub fn e08_distributed_make() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E08",
        "fault-tolerant distributed make (fig. 8)",
        "prerequisites build concurrently; if make fails, files already \
         made consistent remain so — no work is redone on retry",
    );
    const WIDE_MAKEFILE: &str = "app: m0.o m1.o m2.o m3.o\n\
                                 \tld app\n\
                                 m0.o: m0.c\n\tcc m0\n\
                                 m1.o: m1.c\n\tcc m1\n\
                                 m2.o: m2.c\n\tcc m2\n\
                                 m3.o: m3.c\n\tcc m3\n";
    let delay = Duration::from_millis(15);

    // Concurrency measurement.
    let rt = Runtime::builder().build();
    let mut make =
        DistMake::new(&rt, Makefile::parse(WIDE_MAKEFILE).expect("parse")).expect("engine");
    make.set_command_delay(delay);
    for i in 0..4 {
        make.write_source(&format!("m{i}.c"), "src")
            .expect("source");
    }
    let begun = Instant::now();
    let built = make.make("app").expect("make");
    let elapsed = begun.elapsed();
    let serial_estimate = delay * 5;
    let speedup = serial_estimate.as_secs_f64() / elapsed.as_secs_f64();
    report.row("commands (4 compiles + 1 link)", built.rebuilt.len());
    report.row("serial estimate", format!("{serial_estimate:?}"));
    report.row("concurrent make wall time", format!("{elapsed:?}"));
    report.row("speedup", format!("{speedup:.2}x"));
    report.check("prerequisites built concurrently (>1.5x)", speedup > 1.5);

    // Work preserved after failure: serializing vs monolithic baseline.
    let count_retry_work = |monolithic: bool| -> u64 {
        let rt = Runtime::builder().build();
        let make =
            DistMake::new(&rt, Makefile::parse(WIDE_MAKEFILE).expect("parse")).expect("engine");
        for i in 0..4 {
            make.write_source(&format!("m{i}.c"), "src")
                .expect("source");
        }
        make.inject_failure("app"); // compiles succeed, the link fails
        let failed = if monolithic {
            make.make_monolithic("app")
        } else {
            make.make("app")
        };
        assert!(failed.is_err());
        make.clear_failure("app");
        let before = make.commands_run();
        let report = if monolithic {
            make.make_monolithic("app").expect("retry")
        } else {
            make.make("app").expect("retry")
        };
        let _ = report;
        make.commands_run() - before
    };
    let serializing_retry = count_retry_work(false);
    let monolithic_retry = count_retry_work(true);
    report.row(
        "commands on retry after link failure (serializing make)",
        serializing_retry,
    );
    report.row(
        "commands on retry after link failure (one atomic action)",
        monolithic_retry,
    );
    report.check(
        "serializing make redoes only the link",
        serializing_retry == 1,
    );
    report.check(
        "monolithic baseline redoes the compiles too",
        monolithic_retry == 5,
    );
    report
}

// ---------------------------------------------------------------------
// E09 — fig. 9: diary / meeting scheduler
// ---------------------------------------------------------------------

/// Fig. 9: rejected slots are released round by round, not kept to the
/// end; the booking itself is atomic across diaries.
#[must_use]
pub fn e09_diary_scheduling() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E09",
        "meeting scheduler over diaries (fig. 9)",
        "slots not found acceptable are released (and not handed over \
         to the next round), so diary entries are not unnecessarily \
         kept locked",
    );
    let rt = rt_fast();
    let slots = 6usize;
    let ada = Diary::create(&rt, "ada", slots).expect("diary");
    let bob = Diary::create(&rt, "bob", slots).expect("diary");
    let cleo = Diary::create(&rt, "cleo", slots).expect("diary");
    // bob is busy in slots 0-1, cleo in slots 2-3 → meeting lands on 4.
    bob.book(&rt, 0, "x").expect("book");
    bob.book(&rt, 1, "x").expect("book");
    cleo.book(&rt, 2, "y").expect("book");
    cleo.book(&rt, 3, "y").expect("book");

    // Instrumented run: after each round, count ada's slots free for a
    // bystander. Mirrors `schedule_meeting`, which the last check runs
    // for the end-to-end result.
    let diaries = [ada.clone(), bob.clone(), cleo.clone()];
    let chain = GluedChain::begin(&rt, diaries.len() + 1).expect("chain");
    let mut candidates: Vec<usize> = (0..slots).collect();
    let mut availability = Vec::new();
    for (round, diary) in diaries.iter().enumerate() {
        let consulted = &diaries[..=round];
        candidates = chain
            .step(|s| {
                let mut surviving = Vec::new();
                for &i in &candidates {
                    let slot: chroma_apps::Slot = s.read(diary.slot(i))?;
                    if slot.appointment.is_none() {
                        surviving.push(i);
                    }
                }
                for d in consulted {
                    for &i in &surviving {
                        s.hand_over(d.slot(i))?;
                    }
                }
                Ok(surviving)
            })
            .expect("round");
        let free = (0..slots).filter(|&i| probe_free(&rt, ada.slot(i))).count();
        availability.push(free);
        report.row(
            format!("ada's probe-lockable slots after round {}", round + 1),
            format!("{free} of {slots} (candidates: {candidates:?})"),
        );
    }
    chain.abandon();
    report.check(
        "availability grows as rounds reject slots",
        availability.windows(2).all(|w| w[0] <= w[1]) && availability[0] < slots,
    );

    // End-to-end booking through the public API.
    let outcome = schedule_meeting(&rt, &diaries, "kickoff").expect("schedule");
    report.row("scheduled outcome", format!("{outcome:?}"));
    report.check(
        "a common slot was booked in all diaries",
        matches!(outcome, ScheduleOutcome::Booked { slot: 4 }),
    );
    report
}

// ---------------------------------------------------------------------
// E10 — fig. 10: coloured action basics
// ---------------------------------------------------------------------

/// Fig. 10: B (red+blue) in A (blue): red effects permanent and
/// released at B's commit; blue retained by A and undone by A's abort.
#[must_use]
pub fn e10_coloured_basics() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E10",
        "multi-coloured action semantics (fig. 10)",
        "after B commits, red locks are released and red effects \
         permanent; blue locks are retained by A; if A aborts only the \
         blue effects are undone",
    );
    let rt = Runtime::builder().build();
    let red = rt.universe().colour("red");
    let blue = rt.universe().colour("blue");
    let o_red = rt.create_object(&0i32).expect("create");
    let o_blue = rt.create_object(&0i32).expect("create");
    let a = rt.begin_top(ColourSet::single(blue)).expect("begin A");
    let b = rt
        .begin_nested(a, ColourSet::from_iter([red, blue]))
        .expect("begin B");
    {
        let scope = rt.scope(b).expect("scope");
        scope.write_in(red, o_red, &1i32).expect("write red");
        scope.write_in(blue, o_blue, &1i32).expect("write blue");
    }
    rt.commit(b).expect("commit B");
    let red_free = probe_free(&rt, o_red);
    let blue_free = probe_free(&rt, o_blue);
    let red_stable = rt.read_committed::<i32>(o_red).expect("read");
    let blue_stable = rt.read_committed::<i32>(o_blue).expect("read");
    rt.abort(a);
    let red_after = rt.read_committed::<i32>(o_red).expect("read");
    let blue_after = rt.read_current::<i32>(o_blue).expect("read");
    report.row("red lock free after B's commit", red_free);
    report.row("blue lock free after B's commit", blue_free);
    report.row("red effect stable after B's commit", red_stable);
    report.row("blue effect stable after B's commit", blue_stable);
    report.check("red released, blue retained", red_free && !blue_free);
    report.check(
        "red permanent at B's commit",
        red_stable == 1 && blue_stable == 0,
    );
    report.check(
        "A's abort undoes blue only",
        red_after == 1 && blue_after == 0,
    );
    report
}

// ---------------------------------------------------------------------
// E11/E12/E13 — figs. 11-13: the colour implementations
// ---------------------------------------------------------------------

/// Fig. 11: the serializing structure behaves identically whether used
/// through the high-level API or scripted directly with colours.
#[must_use]
pub fn e11_serializing_via_colours() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E11",
        "serializing actions from colours (fig. 11)",
        "the wrapper (fence colour) + per-step update colours scheme \
         realises exactly the §3.1 semantics",
    );
    // Scripted directly with colours.
    let direct = {
        let rt = rt_fast();
        let fence = rt.universe().colour("fence");
        let u1 = rt.universe().colour("u1");
        let u2 = rt.universe().colour("u2");
        let o = rt.create_object(&0i64).expect("create");
        let control = rt.begin_top(ColourSet::single(fence)).expect("control");
        // Step 1 commits.
        rt.run_nested(control, ColourSet::from_iter([fence, u1]), u1, |s| {
            s.lock(fence, o, LockMode::ExclusiveRead)?;
            s.write_in(u1, o, &1i64)
        })
        .expect("step 1");
        let mid_protected = !probe_free(&rt, o);
        let mid_stable = rt.read_committed::<i64>(o).expect("read");
        // Step 2 aborts.
        let _ = rt.run_nested(control, ColourSet::from_iter([fence, u2]), u2, |s| {
            s.lock(fence, o, LockMode::ExclusiveRead)?;
            s.write_in(u2, o, &2i64)?;
            Err::<(), _>(ActionError::failed("step 2 fails"))
        });
        rt.commit(control).expect("end");
        (
            mid_protected,
            mid_stable,
            rt.read_committed::<i64>(o).expect("read"),
            probe_free(&rt, o),
        )
    };
    // Through the high-level structure.
    let structured = {
        let rt = rt_fast();
        let o = rt.create_object(&0i64).expect("create");
        let sa = SerializingAction::begin(&rt).expect("begin");
        sa.step(|s| s.write(o, &1i64)).expect("step 1");
        let mid_protected = !probe_free(&rt, o);
        let mid_stable = rt.read_committed::<i64>(o).expect("read");
        let _ = sa.step(|s| {
            s.write(o, &2i64)?;
            Err::<(), _>(ActionError::failed("step 2 fails"))
        });
        sa.end().expect("end");
        (
            mid_protected,
            mid_stable,
            rt.read_committed::<i64>(o).expect("read"),
            probe_free(&rt, o),
        )
    };
    report.row(
        "direct colours (protected, stable@mid, final, free@end)",
        format!("{direct:?}"),
    );
    report.row(
        "structure API  (protected, stable@mid, final, free@end)",
        format!("{structured:?}"),
    );
    report.check("behaviours identical", direct == structured);
    report.check(
        "step-1 effect permanent despite step-2 failure",
        direct.2 == 1 && direct.0 && direct.1 == 1 && direct.3,
    );
    report
}

/// Fig. 12: same differential check for glued actions.
#[must_use]
pub fn e12_glued_via_colours() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E12",
        "glued actions from colours (fig. 12)",
        "control G (glue colour) + A {glue, update} + B {update'} \
         passes P atomically and releases O−P at A's commit",
    );
    // Direct colour script.
    let direct = {
        let rt = rt_fast();
        let glue = rt.universe().colour("glue");
        let ua = rt.universe().colour("ua");
        let ub = rt.universe().colour("ub");
        let kept = rt.create_object(&0i64).expect("create");
        let dropped = rt.create_object(&0i64).expect("create");
        let control = rt.begin_top(ColourSet::single(glue)).expect("G");
        rt.run_nested(control, ColourSet::from_iter([glue, ua]), ua, |s| {
            s.write_in(ua, kept, &1i64)?;
            s.write_in(ua, dropped, &1i64)?;
            s.lock(glue, kept, LockMode::ExclusiveRead)
        })
        .expect("A");
        let dropped_free = probe_free(&rt, dropped);
        let kept_protected = !probe_free(&rt, kept);
        rt.run_nested(control, ColourSet::single(ub), ub, |s| {
            s.modify_in(ub, kept, |v: &mut i64| *v += 10)
        })
        .expect("B");
        rt.commit(control).expect("end");
        (
            dropped_free,
            kept_protected,
            rt.read_committed::<i64>(kept).expect("read"),
        )
    };
    // High-level structure.
    let structured = {
        let rt = rt_fast();
        let kept = rt.create_object(&0i64).expect("create");
        let dropped = rt.create_object(&0i64).expect("create");
        let chain = GluedChain::begin(&rt, 2).expect("chain");
        chain
            .step(|s| {
                s.write(kept, &1i64)?;
                s.write(dropped, &1i64)?;
                s.hand_over(kept)
            })
            .expect("A");
        let dropped_free = probe_free(&rt, dropped);
        let kept_protected = !probe_free(&rt, kept);
        chain
            .step(|s| s.modify(kept, |v: &mut i64| *v += 10))
            .expect("B");
        chain.end().expect("end");
        (
            dropped_free,
            kept_protected,
            rt.read_committed::<i64>(kept).expect("read"),
        )
    };
    report.row(
        "direct colours (O−P free, P fenced, final)",
        format!("{direct:?}"),
    );
    report.row(
        "structure API  (O−P free, P fenced, final)",
        format!("{structured:?}"),
    );
    report.check("behaviours identical", direct == structured);
    report.check("hand-over worked", direct == (true, true, 11));
    report
}

/// Fig. 13: a fresh colour makes an invoked action independent; with
/// conflicting access the cycle is detected, not hung.
#[must_use]
pub fn e13_independent_via_colours() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E13",
        "independent actions from colours (fig. 13)",
        "different colours give independence; if B needs conflicting \
         access to A's objects the deadlock is detected (the coloured \
         system does not silently hang)",
    );
    let rt = Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_secs(10)),
        })
        .build();
    let o = rt.create_object(&0i64).expect("create");
    let begun = Instant::now();
    let outcome = rt
        .atomic(|a| {
            a.write(o, &1i64)?;
            let inner = independent_sync(a, |b| b.write(o, &2i64));
            Ok(matches!(inner, Err(e) if e.is_deadlock_victim()))
        })
        .expect("invoker");
    let latency = begun.elapsed();
    report.row("conflict detection latency", format!("{latency:?}"));
    report.row("lock timeout (the naive fallback)", "10s");
    report.check("conflict detected as deadlock victim", outcome);
    report.check(
        "detection beats the timeout by >10x",
        latency < Duration::from_secs(1),
    );
    // The non-conflicting case really is independent.
    let ledger = rt.create_object(&0i64).expect("create");
    let result: Result<(), ActionError> = rt.atomic(|a| {
        independent_sync(a, |b| b.write(ledger, &1i64))?;
        Err(ActionError::failed("invoker aborts"))
    });
    assert!(result.is_err());
    report.check(
        "non-conflicting invocation is genuinely independent",
        rt.read_committed::<i64>(ledger).expect("read") == 1,
    );
    report
}

// ---------------------------------------------------------------------
// E14/E15 — figs. 14-15: n-level independence and auto-assignment
// ---------------------------------------------------------------------

fn fig14_structure() -> Structure {
    Structure::top(
        "A",
        vec![
            Structure::work("D"),
            Structure::action(
                "B",
                vec![
                    Structure::independent("C", 2, vec![Structure::work("C.body")]),
                    Structure::independent("E", 1, vec![Structure::work("E.body")]),
                ],
            ),
            Structure::independent("F", 1, vec![Structure::work("F.body")]),
        ],
    )
}

/// Fig. 14: the full abort/survival matrix of the n-level example,
/// executed on the real runtime.
#[must_use]
pub fn e14_nlevel_independence() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E14",
        "n-level independent actions (fig. 14)",
        "if A aborts, effects of D, B and E are undone while C and F \
         survive; if B aborts after invoking E, E's effects survive",
    );
    let plan = assign(&fig14_structure()).expect("assign");
    let works = ["D", "C.body", "E.body", "F.body"];
    for aborter in ["A", "B", "C", "E", "F"] {
        let rt = Runtime::builder().build();
        let result = plan.execute(&rt, &|name| name != aborter).expect("execute");
        let survived: Vec<String> = works
            .iter()
            .filter(|w| result.survived[**w])
            .map(|w| (*w).to_owned())
            .collect();
        report.row(format!("{aborter} aborts → survivors"), survived.join(", "));
    }
    // The paper's two explicit claims:
    let rt = Runtime::builder().build();
    let a_aborts = plan.execute(&rt, &|n| n != "A").expect("execute");
    report.check(
        "A aborts ⇒ D, E undone; C, F survive",
        !a_aborts.survived["D"]
            && !a_aborts.survived["E.body"]
            && a_aborts.survived["C.body"]
            && a_aborts.survived["F.body"],
    );
    let rt = Runtime::builder().build();
    let b_aborts = plan.execute(&rt, &|n| n != "B").expect("execute");
    report.check(
        "B aborts ⇒ E's effects survive",
        b_aborts.survived["E.body"] && b_aborts.survived["D"],
    );
    report
}

/// Fig. 15: the automatically generated colour assignment matches the
/// paper's hand assignment, and its predictions match execution.
#[must_use]
pub fn e15_automatic_colours() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E15",
        "automatic colour assignment (fig. 15)",
        "the generated assignment gives A two colours, B/D one shared \
         with A, E a colour shared with A but not B, and C/F fresh \
         colours — and predicts the fig. 14 behaviour exactly",
    );
    let plan = assign(&fig14_structure()).expect("assign");
    let colours_of = |name: &str| plan.nodes[plan.find(name).expect("node")].colours;
    report.row("colours used", plan.colour_count());
    report.row("|colours(A)|", colours_of("A").len());
    report.check("A is two-coloured (red+blue)", colours_of("A").len() == 2);
    report.check(
        "B shares exactly one colour with A",
        colours_of("B").len() == 1 && colours_of("B").is_subset_of(colours_of("A")),
    );
    report.check(
        "E's colour is A's but not B's",
        colours_of("E").is_subset_of(colours_of("A"))
            && !colours_of("E").intersects(colours_of("B")),
    );
    report.check(
        "C and F are fresh-coloured (independent of A)",
        !colours_of("C").intersects(colours_of("A"))
            && !colours_of("F").intersects(colours_of("A")),
    );
    // Prediction vs execution over every single-aborter schedule.
    let mut agree = true;
    for aborter in ["A", "B", "C", "E", "F"] {
        let rt = Runtime::builder().build();
        let result = plan.execute(&rt, &|n| n != aborter).expect("execute");
        for work in ["D", "C.body", "E.body", "F.body"] {
            let predicted = !plan.undone_by(work, aborter).expect("known");
            agree &= predicted == result.survived[work];
        }
    }
    report.check("predicted survival == executed survival (20 cases)", agree);
    report
}

// ---------------------------------------------------------------------
// A1-A5 — ablations
// ---------------------------------------------------------------------

/// §5.1 note: a single-colour coloured system is the conventional
/// system — grant/deny traces agree on random schedules.
#[must_use]
pub fn a1_single_colour_equivalence() -> ExperimentReport {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut report = ExperimentReport::new(
        "A1",
        "single-colour system ≡ conventional system (§5.1)",
        "if all actions possess the same single colour the system \
         reverts to a normal atomic action system",
    );
    let mut rng = StdRng::seed_from_u64(2024);
    let mut schedules = 0u32;
    let mut agreements = 0u32;
    let mut decisions = 0u64;
    for _ in 0..200 {
        let ancestry = FlatAncestry::new();
        for child in 1..6u64 {
            if rng.gen_bool(0.6) {
                let parent = rng.gen_range(0..child);
                ancestry.set_parent(
                    chroma_base::ActionId::from_raw(child),
                    chroma_base::ActionId::from_raw(parent),
                );
            }
        }
        let coloured = LockTable::new(ColouredPolicy);
        let classic = LockTable::new(ClassicPolicy);
        let mut all_equal = true;
        for _ in 0..40 {
            let action = chroma_base::ActionId::from_raw(rng.gen_range(0..6));
            let object = ObjectId::from_raw(rng.gen_range(0..4));
            let mode = match rng.gen_range(0..3) {
                0 => LockMode::Read,
                1 => LockMode::Write,
                _ => LockMode::ExclusiveRead,
            };
            let colour = chroma_base::Colour::from_index(0);
            let r1 = coloured.try_acquire(&ancestry, action, object, colour, mode);
            let r2 = classic.try_acquire(&ancestry, action, object, colour, mode);
            all_equal &= format!("{r1:?}") == format!("{r2:?}");
            decisions += 1;
        }
        schedules += 1;
        agreements += u32::from(all_equal);
    }
    report.row("random schedules", schedules);
    report.row("grant/deny decisions compared", decisions);
    report.row("schedules in full agreement", agreements);
    report.check("all schedules agree", agreements == schedules);
    report
}

/// §3.2: third-party lock availability under the three structures.
#[must_use]
pub fn a2_lock_availability() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "A2",
        "lock availability: atomic vs serializing vs glued",
        "glued actions release O−P early, serializing actions protect \
         but over-lock, a single long action locks everything longest",
    );
    let total = 12usize;
    let handover = 3usize;
    // For each structure, measure how many of the `total` objects a
    // bystander can lock at the midpoint (between phase A and phase B).
    let atomic_avail = {
        let rt = rt_fast();
        let objects: Vec<ObjectId> = (0..total)
            .map(|_| rt.create_object(&0i64).expect("create"))
            .collect();
        let top = rt
            .begin_top(ColourSet::single(rt.default_colour()))
            .expect("begin");
        {
            let scope = rt.scope(top).expect("scope");
            for &o in &objects {
                scope.write(o, &1i64).expect("write");
            }
        }
        let available = objects.iter().filter(|&&o| probe_free(&rt, o)).count();
        rt.commit(top).expect("commit");
        available
    };
    let serializing_avail = {
        let rt = rt_fast();
        let objects: Vec<ObjectId> = (0..total)
            .map(|_| rt.create_object(&0i64).expect("create"))
            .collect();
        let sa = SerializingAction::begin(&rt).expect("begin");
        sa.step(|s| {
            for &o in &objects {
                s.write(o, &1i64)?;
            }
            Ok(())
        })
        .expect("step");
        let available = objects.iter().filter(|&&o| probe_free(&rt, o)).count();
        sa.end().expect("end");
        available
    };
    let glued_avail = {
        let rt = rt_fast();
        let objects: Vec<ObjectId> = (0..total)
            .map(|_| rt.create_object(&0i64).expect("create"))
            .collect();
        let chain = GluedChain::begin(&rt, 2).expect("begin");
        chain
            .step(|s| {
                for &o in &objects {
                    s.write(o, &1i64)?;
                }
                for &o in &objects[..handover] {
                    s.hand_over(o)?;
                }
                Ok(())
            })
            .expect("step");
        let available = objects.iter().filter(|&&o| probe_free(&rt, o)).count();
        chain.end().expect("end");
        available
    };
    report.row(
        "available at midpoint (single long atomic action)",
        format!("{atomic_avail} of {total}"),
    );
    report.row(
        "available at midpoint (serializing action)",
        format!("{serializing_avail} of {total}"),
    );
    report.row(
        "available at midpoint (glued, |P| = 3)",
        format!("{glued_avail} of {total}"),
    );
    report.check(
        "ordering: atomic = serializing = 0 < glued",
        atomic_avail == 0 && serializing_avail == 0 && glued_avail == total - handover,
    );
    report
}

/// §2: two-phase commit atomicity and settle time under message loss.
#[must_use]
pub fn a3_tpc_under_faults() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "A3",
        "two-phase commit under message loss and crashes",
        "transactions settle with all-or-nothing installation despite \
         lost/duplicated messages and a participant crash",
    );
    for loss in [0.0, 0.1, 0.3] {
        let seeds = 30u64;
        let mut commits = 0u32;
        let mut violations = 0u32;
        let mut in_doubt = 0u32;
        let mut settle: Vec<Duration> = Vec::new();
        for seed in 0..seeds {
            let mut sim = Sim::new(seed);
            sim.net.loss = loss;
            sim.net.duplication = loss / 2.0;
            let coord = sim.add_node();
            let p1 = sim.add_node();
            let p2 = sim.add_node();
            let txn = sim.begin_transaction(
                coord,
                vec![
                    (
                        p1,
                        vec![Write {
                            object: ObjectId::from_raw(1),
                            state: chroma_store::StoreBytes::from(vec![1]),
                        }],
                    ),
                    (
                        p2,
                        vec![Write {
                            object: ObjectId::from_raw(2),
                            state: chroma_store::StoreBytes::from(vec![2]),
                        }],
                    ),
                ],
            );
            if seed % 3 == 0 {
                sim.schedule_crash(p2, 40_000);
                sim.schedule_recover(p2, 600_000);
            }
            sim.run_to_quiescence();
            let i1 = sim.node(p1).store.read(ObjectId::from_raw(1)).is_some();
            let i2 = sim.node(p2).store.read(ObjectId::from_raw(2)).is_some();
            if i1 != i2 {
                violations += 1;
            }
            if sim.node(p1).in_doubt(txn) || sim.node(p2).in_doubt(txn) {
                in_doubt += 1;
            }
            if sim.coordinator_outcome(coord, txn) == Some(true) {
                commits += 1;
            }
            settle.push(Duration::from_micros(sim.now()));
        }
        let summary = Summary::from_durations(&settle);
        report.row(
            format!("loss={loss:.1}: commit rate"),
            format!("{commits}/{seeds}"),
        );
        report.row(
            format!("loss={loss:.1}: settle time (virtual)"),
            format!("mean {:.0}µs p95 {:.0}µs", summary.mean_us, summary.p95_us),
        );
        report.check(
            &format!("loss={loss:.1}: zero atomicity violations"),
            violations == 0,
        );
        report.check(
            &format!("loss={loss:.1}: nobody left in doubt"),
            in_doubt == 0,
        );
        if loss == 0.0 {
            report.check("loss=0: every transaction commits", commits == seeds as u32);
        }
    }
    report
}

/// §2: replication raises read availability under crashes.
#[must_use]
pub fn a4_replication_availability() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "A4",
        "replicated name server availability",
        "replicating the name server keeps lookups available while \
         individual object stores crash and recover",
    );
    for replicas in [1usize, 2, 3] {
        let mut sim = Sim::new(99);
        let nodes: Vec<_> = (0..replicas).map(|_| sim.add_node()).collect();
        let ns =
            chroma_apps::ReplicatedNameServer::create(&mut sim, ObjectId::from_raw(700), &nodes);
        assert!(ns.register(&mut sim, "svc", "loc"));
        sim.run_to_quiescence();
        // Crash schedule: knock each member out in turn; probe after
        // each crash (before recovery).
        let mut probes = 0u32;
        let mut available = 0u32;
        for (i, &node) in nodes.iter().enumerate() {
            sim.schedule_crash(node, 0);
            sim.run_to_quiescence();
            probes += 1;
            if ns.lookup(&sim, "svc").is_some() {
                available += 1;
            }
            sim.schedule_recover(node, 0);
            sim.run_to_quiescence();
            let _ = i;
        }
        report.row(
            format!("{replicas} replica(s): lookups served during single-node downtime"),
            format!("{available}/{probes}"),
        );
        if replicas == 1 {
            report.check("1 replica: unavailable during its downtime", available == 0);
        }
        if replicas == 3 {
            report.check("3 replicas: always available", available == probes);
        }
    }
    report
}

/// §5.2: the coloured rules cost essentially nothing over the classic
/// rules (a quick wall-clock comparison; the rigorous version is the
/// criterion bench `ablation_lock_overhead`).
#[must_use]
pub fn a5_lock_manager_overhead() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "A5",
        "coloured vs classic lock manager overhead",
        "the coloured rules require only minor modifications to the \
         conventional rules — overhead should be within noise",
    );
    let ancestry = FlatAncestry::new();
    let iterations = 50_000u64;
    let time_policy = |coloured: bool| -> Duration {
        let begun = Instant::now();
        if coloured {
            let table = LockTable::new(ColouredPolicy);
            for i in 0..iterations {
                let action = chroma_base::ActionId::from_raw(i % 8);
                let object = ObjectId::from_raw(i % 32);
                let _ = table.try_acquire(
                    &ancestry,
                    action,
                    object,
                    chroma_base::Colour::from_index(0),
                    if i % 4 == 0 {
                        LockMode::Write
                    } else {
                        LockMode::Read
                    },
                );
                if i % 16 == 15 {
                    table.discard_action(action);
                }
            }
        } else {
            let table = LockTable::new(ClassicPolicy);
            for i in 0..iterations {
                let action = chroma_base::ActionId::from_raw(i % 8);
                let object = ObjectId::from_raw(i % 32);
                let _ = table.try_acquire(
                    &ancestry,
                    action,
                    object,
                    chroma_base::Colour::from_index(0),
                    if i % 4 == 0 {
                        LockMode::Write
                    } else {
                        LockMode::Read
                    },
                );
                if i % 16 == 15 {
                    table.discard_action(action);
                }
            }
        }
        begun.elapsed()
    };
    // Warm up, then measure.
    let _ = time_policy(false);
    let _ = time_policy(true);
    let classic = time_policy(false);
    let coloured = time_policy(true);
    let ratio = coloured.as_secs_f64() / classic.as_secs_f64().max(1e-9);
    report.row("iterations", iterations);
    report.row(
        "classic ns/op",
        format!("{:.0}", classic.as_nanos() as f64 / iterations as f64),
    );
    report.row(
        "coloured ns/op",
        format!("{:.0}", coloured.as_nanos() as f64 / iterations as f64),
    );
    report.row("coloured/classic", format!("{ratio:.2}x"));
    report.check("overhead below 2x (expected ~1x)", ratio < 2.0);
    report
}

/// §6 future work: the distributed version — the coloured runtime with
/// permanence through 2PC over partitioned, replicated object stores.
#[must_use]
pub fn a6_distributed_runtime() -> ExperimentReport {
    use chroma_dist::PartitionedStore;
    let mut report = ExperimentReport::new(
        "A6",
        "the distributed version (paper §6 future work)",
        "the same coloured runtime, with permanence of effect provided \
         by two-phase commit over replicated simulated object stores; \
         storage-node crashes neither lose committed effects nor break \
         atomicity",
    );
    let store = Arc::new(PartitionedStore::new(606, 4, 2));
    let rt = Runtime::builder()
        .config(RuntimeConfig::default())
        .backend(store.clone())
        .build();
    let objects: Vec<ObjectId> = (0..8)
        .map(|_| rt.create_object(&0i64).expect("create"))
        .collect();

    // Commits land through 2PC; latency per commit is measurable.
    let begun = Instant::now();
    let commits = 50u32;
    for i in 0..commits {
        rt.atomic(|a| a.write(objects[(i as usize) % objects.len()], &i64::from(i)))
            .expect("commit");
    }
    let per_commit = begun.elapsed() / commits;
    report.row("storage nodes / replication", "4 / 2");
    report.row("distributed commits", commits);
    report.row(
        "wall time per commit (incl. simulated 2PC)",
        format!("{per_commit:?}"),
    );

    // Crash one storage node: committed state remains readable, new
    // commits continue, and the node catches up on recovery.
    store.crash_node(0);
    let readable = objects.iter().all(|&o| rt.read_committed::<i64>(o).is_ok());
    report.check("all committed state readable with a node down", readable);
    rt.atomic(|a| a.write(objects[0], &999i64))
        .expect("commit during outage");
    store.recover_node(0);
    report.check(
        "commits continue during downtime and recovery catches up",
        rt.read_committed::<i64>(objects[0]).expect("read") == 999,
    );

    // Total outage: the commit FAILS VISIBLY (the action stays abortable
    // or retryable) and succeeds after recovery.
    for i in 0..4 {
        store.crash_node(i);
    }
    let blocked = rt.atomic(|a| a.write(objects[1], &7i64));
    report.check(
        "total outage surfaces as a backend error (never silent loss)",
        matches!(blocked, Err(ActionError::Backend(_))),
    );
    chroma_core::PermanenceBackend::recover(&*store);
    rt.atomic(|a| a.write(objects[1], &7i64))
        .expect("after recovery");
    report.check(
        "the retried commit succeeds after storage recovery",
        rt.read_committed::<i64>(objects[1]).expect("read") == 7,
    );
    report
}

/// §2 enhancement: type-specific concurrency control increases
/// concurrency (escrow counter vs a single-object counter).
#[must_use]
pub fn a7_type_specific_concurrency() -> ExperimentReport {
    use chroma_typed::EscrowCounter;
    let mut report = ExperimentReport::new(
        "A7",
        "type-specific concurrency control (§2 enhancement)",
        "exploiting operation semantics (commuting add/subtract; \
         per-entry directory access) permits concurrent write/write \
         access that plain read/write locking would serialize",
    );
    // Strict two-phase locking holds locks until commit: the cost of a
    // plain shared counter is that every *action* touching it
    // serializes for its whole duration, not just for the increment.
    let threads = 4usize;
    let actions_per_thread = 6usize;
    let action_work = Duration::from_millis(4);

    // Baseline: one shared counter object — whole actions serialize.
    let naive = {
        let rt = Runtime::builder().build();
        let counter = rt.create_object(&0i64).expect("create");
        let begun = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let rt = rt.clone();
                scope.spawn(move || {
                    for _ in 0..actions_per_thread {
                        rt.atomic(|a| {
                            a.modify(counter, |v: &mut i64| *v += 1)?;
                            std::thread::sleep(action_work); // rest of the action
                            Ok(())
                        })
                        .expect("add");
                    }
                });
            }
        });
        let elapsed = begun.elapsed();
        assert_eq!(
            rt.read_committed::<i64>(counter).expect("read"),
            (threads * actions_per_thread) as i64
        );
        elapsed
    };

    // Typed: an escrow counter — adds land on distinct stripes, so the
    // actions overlap fully.
    let typed = {
        let rt = Runtime::builder().build();
        let counter = Arc::new(EscrowCounter::create(&rt, threads * 2).expect("create"));
        let begun = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let rt = rt.clone();
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..actions_per_thread {
                        rt.atomic(|a| {
                            counter.add(a, 1)?;
                            std::thread::sleep(action_work);
                            Ok(())
                        })
                        .expect("add");
                    }
                });
            }
        });
        let elapsed = begun.elapsed();
        assert_eq!(
            counter.committed_value(&rt).expect("read"),
            (threads * actions_per_thread) as i64
        );
        elapsed
    };

    let ratio = naive.as_secs_f64() / typed.as_secs_f64().max(1e-9);
    report.row(
        "threads × actions (each holds the counter ~4ms)",
        format!("{threads} × {actions_per_thread}"),
    );
    report.row("single-object counter", format!("{naive:?}"));
    report.row("escrow counter (striped)", format!("{typed:?}"));
    report.row("speedup", format!("{ratio:.2}x"));
    report.check("no lost updates in either variant", true);
    report.check(
        "commuting adds let whole actions overlap (>2x)",
        ratio > 2.0,
    );
    report
}

static EXPERIMENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Returns a process-unique sequence number (used by callers generating
/// experiment artefacts in parallel).
#[must_use]
pub fn next_sequence() -> u64 {
    EXPERIMENT_SEQ.fetch_add(1, Ordering::Relaxed)
}
