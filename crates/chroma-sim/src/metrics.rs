//! Small measurement utilities for the experiment harness.

use std::time::Duration;

/// Summary statistics over a set of duration samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Mean, in microseconds.
    pub mean_us: f64,
    /// Median, in microseconds.
    pub p50_us: f64,
    /// 95th percentile, in microseconds.
    pub p95_us: f64,
    /// Maximum, in microseconds.
    pub max_us: f64,
}

impl Summary {
    /// Computes summary statistics from duration samples.
    #[must_use]
    pub fn from_durations(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut us: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e6).collect();
        us.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let count = us.len();
        let mean_us = us.iter().sum::<f64>() / count as f64;
        let pick = |q: f64| us[(((count - 1) as f64) * q).round() as usize];
        Summary {
            count,
            mean_us,
            p50_us: pick(0.5),
            p95_us: pick(0.95),
            max_us: us[count - 1],
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1}µs p50={:.1}µs p95={:.1}µs max={:.1}µs",
            self.count, self.mean_us, self.p50_us, self.p95_us, self.max_us
        )
    }
}

/// One metric row of an experiment report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Metric name (e.g. `"work preserved (serializing)"`).
    pub metric: String,
    /// Rendered value.
    pub value: String,
}

/// The outcome of regenerating one paper figure or ablation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentReport {
    /// Experiment id (`E01`…`E15`, `A1`…`A5`).
    pub id: String,
    /// Short title.
    pub title: String,
    /// The paper's claim being reproduced.
    pub claim: String,
    /// Measured rows.
    pub rows: Vec<Row>,
    /// Whether the measurements support the claim.
    pub pass: bool,
}

impl ExperimentReport {
    /// Creates a report shell.
    #[must_use]
    pub fn new(id: &str, title: &str, claim: &str) -> Self {
        ExperimentReport {
            id: id.to_owned(),
            title: title.to_owned(),
            claim: claim.to_owned(),
            rows: Vec::new(),
            pass: true,
        }
    }

    /// Appends a metric row.
    pub fn row(&mut self, metric: impl Into<String>, value: impl std::fmt::Display) {
        self.rows.push(Row {
            metric: metric.into(),
            value: value.to_string(),
        });
    }

    /// Records a check: all checks must hold for the report to pass.
    pub fn check(&mut self, name: &str, ok: bool) {
        self.rows.push(Row {
            metric: format!("check: {name}"),
            value: if ok { "ok".to_owned() } else { "FAILED".to_owned() },
        });
        self.pass &= ok;
    }

    /// Renders the report as a markdown section.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "### {} — {}\n\n*Claim:* {}\n\n| metric | value |\n|---|---|\n",
            self.id, self.title, self.claim
        );
        for row in &self.rows {
            out.push_str(&format!("| {} | {} |\n", row.metric, row.value));
        }
        out.push_str(&format!(
            "\n**Verdict:** {}\n",
            if self.pass { "reproduced" } else { "NOT reproduced" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zeroes() {
        assert_eq!(Summary::from_durations(&[]).count, 0);
    }

    #[test]
    fn summary_statistics() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = Summary::from_durations(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean_us - 50.5).abs() < 0.01);
        assert!((s.p50_us - 50.0).abs() <= 1.0);
        assert!((s.p95_us - 95.0).abs() <= 1.0);
        assert!((s.max_us - 100.0).abs() < 0.01);
    }

    #[test]
    fn report_markdown_and_pass_tracking() {
        let mut report = ExperimentReport::new("E99", "demo", "things hold");
        report.row("speedup", "1.9x");
        report.check("invariant", true);
        assert!(report.pass);
        report.check("other", false);
        assert!(!report.pass);
        let md = report.to_markdown();
        assert!(md.contains("E99"));
        assert!(md.contains("1.9x"));
        assert!(md.contains("NOT reproduced"));
    }
}
