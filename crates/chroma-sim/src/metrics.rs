//! Small measurement utilities for the experiment harness.

/// Summary statistics over a set of duration samples.
///
/// Lives in `chroma-obs` (the shared observability vocabulary);
/// re-exported here for the experiment harness's convenience.
pub use chroma_obs::Summary;

/// One metric row of an experiment report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Metric name (e.g. `"work preserved (serializing)"`).
    pub metric: String,
    /// Rendered value.
    pub value: String,
}

/// The outcome of regenerating one paper figure or ablation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentReport {
    /// Experiment id (`E01`…`E15`, `A1`…`A5`).
    pub id: String,
    /// Short title.
    pub title: String,
    /// The paper's claim being reproduced.
    pub claim: String,
    /// Measured rows.
    pub rows: Vec<Row>,
    /// Whether the measurements support the claim.
    pub pass: bool,
}

impl ExperimentReport {
    /// Creates a report shell.
    #[must_use]
    pub fn new(id: &str, title: &str, claim: &str) -> Self {
        ExperimentReport {
            id: id.to_owned(),
            title: title.to_owned(),
            claim: claim.to_owned(),
            rows: Vec::new(),
            pass: true,
        }
    }

    /// Appends a metric row.
    pub fn row(&mut self, metric: impl Into<String>, value: impl std::fmt::Display) {
        self.rows.push(Row {
            metric: metric.into(),
            value: value.to_string(),
        });
    }

    /// Records a check: all checks must hold for the report to pass.
    pub fn check(&mut self, name: &str, ok: bool) {
        self.rows.push(Row {
            metric: format!("check: {name}"),
            value: if ok {
                "ok".to_owned()
            } else {
                "FAILED".to_owned()
            },
        });
        self.pass &= ok;
    }

    /// Renders the report as a markdown section.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "### {} — {}\n\n*Claim:* {}\n\n| metric | value |\n|---|---|\n",
            self.id, self.title, self.claim
        );
        for row in &self.rows {
            out.push_str(&format!("| {} | {} |\n", row.metric, row.value));
        }
        out.push_str(&format!(
            "\n**Verdict:** {}\n",
            if self.pass {
                "reproduced"
            } else {
                "NOT reproduced"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn summary_of_empty_is_zeroes() {
        assert_eq!(Summary::from_durations(&[]).count, 0);
    }

    #[test]
    fn summary_statistics() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = Summary::from_durations(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean_us - 50.5).abs() < 0.01);
        assert!((s.p50_us - 50.0).abs() <= 1.0);
        assert!((s.p95_us - 95.0).abs() <= 1.0);
        assert!((s.max_us - 100.0).abs() < 0.01);
    }

    #[test]
    fn report_markdown_and_pass_tracking() {
        let mut report = ExperimentReport::new("E99", "demo", "things hold");
        report.row("speedup", "1.9x");
        report.check("invariant", true);
        assert!(report.pass);
        report.check("other", false);
        assert!(!report.pass);
        let md = report.to_markdown();
        assert!(md.contains("E99"));
        assert!(md.contains("1.9x"));
        assert!(md.contains("NOT reproduced"));
    }
}
