//! Commit-throughput benchmark for the group-committed intentions log.
//!
//! Drives the full `Runtime` → `DiskBackend` → `DiskStore` commit path
//! with 1/2/4/8 concurrent committer threads, each running top-level
//! atomic actions against its own object, and reports per thread-count:
//!
//! * `commits_per_sec` — committed top-level actions per second;
//! * `fsyncs_per_commit` — log fsyncs amortized over commits (the
//!   ungrouped protocol pays exactly 2.0; group commit shares both the
//!   intents fsync and the marker fsync across a whole group);
//! * `mean_group_size` / `max_group_size` — from the
//!   `store.group_size` histogram.
//!
//! A final recovery-replay probe commits a long history through small
//! segments with periodic checkpoints, reopens the store, and gates on
//! recovery replaying no more than the manifest's live suffix — never
//! the total history.
//!
//! Results are written as JSON to `BENCH_commit.json` (override with
//! `--out <path>`). `--smoke` shrinks the workload for CI. Exits
//! non-zero if the 8-thread run fails to amortize fsyncs below 2.0 per
//! commit or the replay bound is breached, so CI catches a regression
//! in either.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use chroma_bench::report::{Obj, Report};
use chroma_core::{DiskBackend, Runtime, RuntimeConfig};
use chroma_obs::{EventBus, Obs, Observable};
use chroma_store::{DiskStore, DiskStoreOptions, StoreBytes};

/// Committer-thread counts benchmarked, in order.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The fsyncs-per-commit ceiling the most-contended run must beat.
const FSYNC_BUDGET_AT_8: f64 = 2.0;

struct RunResult {
    threads: usize,
    commits: u64,
    elapsed: Duration,
    fsyncs: u64,
    mean_group_size: f64,
    max_group_size: f64,
}

impl RunResult {
    fn commits_per_sec(&self) -> f64 {
        self.commits as f64 / self.elapsed.as_secs_f64()
    }

    fn fsyncs_per_commit(&self) -> f64 {
        self.fsyncs as f64 / self.commits as f64
    }
}

fn bench_dir(threads: usize) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "chroma-commit-bench-{}-{}-{}",
        std::process::id(),
        threads,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One benchmark run: `threads` committers, `iters` commits each.
fn run(threads: usize, iters: u64) -> RunResult {
    let dir = bench_dir(threads);
    std::fs::remove_dir_all(&dir).ok();
    let backend = Arc::new(DiskBackend::open(&dir).expect("open disk backend"));
    let rt = Arc::new(
        Runtime::builder()
            .config(RuntimeConfig {
                lock_timeout: Some(Duration::from_secs(10)),
            })
            .backend(backend.clone())
            .build(),
    );
    let bus = Arc::new(EventBus::new());
    rt.install_obs(Obs::new(bus.clone()));

    // Distinct objects: the benchmark measures the commit path, not
    // lock contention.
    let objects: Vec<_> = (0..threads)
        .map(|_| rt.create_object(&0u64).expect("create object"))
        .collect();
    let fsyncs_before = backend.store().log_fsync_count();

    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = objects
        .into_iter()
        .map(|object| {
            let rt = Arc::clone(&rt);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..iters {
                    rt.atomic(|a| a.modify(object, |v: &mut u64| *v += 1))
                        .expect("commit");
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().expect("committer thread");
    }
    let elapsed = started.elapsed();

    let fsyncs = backend.store().log_fsync_count() - fsyncs_before;
    let group = bus
        .snapshot()
        .histogram("store.group_size")
        .expect("group_size histogram populated");
    std::fs::remove_dir_all(&dir).ok();
    RunResult {
        threads,
        commits: threads as u64 * iters,
        elapsed,
        fsyncs,
        mean_group_size: group.mean_us,
        max_group_size: group.max_us,
    }
}

struct ReplayProbe {
    total_batches: u64,
    live_suffix_batches: u64,
    replayed_batches: u64,
    replayed_records: u64,
}

/// Commits `total` single-object batches through a store sealing 4 KiB
/// segments, checkpointing every 128 commits, then reopens it and
/// measures how many batches recovery actually replayed. With bounded
/// recovery that is at most the live suffix (the commits since the
/// last checkpoint); a regression to full-history replay shows up as
/// `replayed == total`.
fn replay_probe(total: u64) -> ReplayProbe {
    let dir = bench_dir(0);
    std::fs::remove_dir_all(&dir).ok();
    let opts = DiskStoreOptions {
        segment_bytes: 4096,
        auto_checkpoint: false,
    };
    let live_suffix_batches = {
        let store = DiskStore::open_with(&dir, opts).expect("open probe store");
        for i in 0..total {
            store
                .commit_batch(vec![(
                    chroma_base::ObjectId::from_raw(i % 64 + 1),
                    StoreBytes::from(vec![(i % 251) as u8; 32]),
                )])
                .expect("probe commit");
            if i % 128 == 127 {
                store.checkpoint_now().expect("probe checkpoint");
            }
        }
        store.checkpoint_backlog()
    };
    let store = DiskStore::open_with(&dir, opts).expect("reopen probe store");
    let stats = store.replay_stats();
    std::fs::remove_dir_all(&dir).ok();
    ReplayProbe {
        total_batches: total,
        live_suffix_batches,
        replayed_batches: stats.batches,
        replayed_records: stats.records,
    }
}

fn render_report(results: &[RunResult], probe: &ReplayProbe) -> Report {
    results
        .iter()
        .fold(Report::new("commit_throughput"), |report, r| {
            report.run(
                Obj::new()
                    .field("threads", r.threads)
                    .field("commits", r.commits)
                    .field("elapsed_ms", r.elapsed.as_secs_f64() * 1000.0)
                    .field("commits_per_sec", r.commits_per_sec())
                    .field("fsyncs", r.fsyncs)
                    .field("fsyncs_per_commit", r.fsyncs_per_commit())
                    .field("mean_group_size", r.mean_group_size)
                    .field("max_group_size", r.max_group_size),
            )
        })
        .run(
            Obj::new()
                .field("probe", "recovery_replay")
                .field("total_batches", probe.total_batches)
                .field("live_suffix_batches", probe.live_suffix_batches)
                .field("replayed_batches", probe.replayed_batches)
                .field("replayed_records", probe.replayed_records),
        )
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_commit.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: commit_bench [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    let iters: u64 = if smoke { 200 } else { 2000 };

    let results: Vec<RunResult> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let r = run(threads, iters);
            println!(
                "threads={:2}  commits={:6}  {:9.1} commits/s  {:.4} fsyncs/commit  \
                 mean group {:.2} (max {:.0})",
                r.threads,
                r.commits,
                r.commits_per_sec(),
                r.fsyncs_per_commit(),
                r.mean_group_size,
                r.max_group_size,
            );
            r
        })
        .collect();

    let probe = replay_probe(if smoke { 300 } else { 1500 });
    println!(
        "recovery replay: {} of {} batches (live suffix {}) — {} records",
        probe.replayed_batches,
        probe.total_batches,
        probe.live_suffix_batches,
        probe.replayed_records,
    );

    render_report(&results, &probe)
        .write(&out_path)
        .expect("write results");
    println!("wrote {out_path}");

    let at_8 = results
        .iter()
        .find(|r| r.threads == 8)
        .expect("8-thread run present");
    if at_8.fsyncs_per_commit() >= FSYNC_BUDGET_AT_8 {
        eprintln!(
            "FAIL: {:.4} fsyncs/commit at 8 threads (budget < {FSYNC_BUDGET_AT_8}) — \
             group commit is not amortizing",
            at_8.fsyncs_per_commit()
        );
        std::process::exit(1);
    }
    if probe.replayed_batches > probe.live_suffix_batches
        || probe.live_suffix_batches >= probe.total_batches
    {
        eprintln!(
            "FAIL: recovery replayed {} batches against a live suffix of {} (total history {}) — \
             replay work is not bounded by the checkpoint watermark",
            probe.replayed_batches, probe.live_suffix_batches, probe.total_batches
        );
        std::process::exit(1);
    }
}
