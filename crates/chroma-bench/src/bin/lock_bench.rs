//! Lock-manager scalability benchmark for the sharded lock table.
//!
//! Drives `LockTable` directly (no runtime, no disk) with 1/2/4/8
//! threads under two workloads:
//!
//! * `disjoint` — every thread locks its own objects; with the table
//!   partitioned into shards these acquisitions should never contend
//!   and throughput should scale with threads;
//! * `hot` — every thread hammers one shared object, measuring the
//!   serialized worst case (reported, not gated).
//!
//! Each iteration is a full action lifetime: fresh `ActionId`, eight
//! `Write` acquisitions, `release_colour`, `retire_action` — the same
//! sequence the runtime's commit path performs.
//!
//! A second section drives the full `Runtime` with a **readers vs
//! writers** workload: 1/2/4/8 writer threads each hammering their own
//! disjoint key range while one scanner thread continuously reads every
//! key. The scanner runs twice — as a conventional read-locking action
//! (`rw_locked`) and as a declared read-only snapshot (`rw_snapshot`).
//! Writers' key ranges are disjoint, so the scanner is the *only*
//! possible source of lock waits; the snapshot runs must therefore
//! record exactly zero waits, and the benchmark exits non-zero if they
//! don't — the MVCC read path touching the lock table is a regression.
//! Every readers-vs-writers run also carries the streaming watchdog on
//! its event bus; any online R1–R10 violation fails the benchmark.
//!
//! Results are written as JSON to `BENCH_locks.json` (override with
//! `--out <path>`). `--smoke` shrinks the workload for CI. Exits
//! non-zero if the disjoint workload ever parks a waiter, or if
//! 8-thread disjoint throughput fails to reach 2× the 1-thread run,
//! so CI catches a sharding regression that re-serializes independent
//! lock traffic. A host without ≥ 2 CPUs cannot exhibit wall-clock
//! scaling no matter how well the table shards, so there the scaling
//! floor degrades to a no-regression check (8 threads must stay within
//! noise of the serial run).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use chroma_base::{ActionId, Colour, LockMode, ObjectId};
use chroma_bench::report::{Obj, Report};
use chroma_core::Runtime;
use chroma_locks::{ColouredPolicy, FlatAncestry, LockTable};
use chroma_obs::{EventBus, Obs, Observable, Watchdog};

/// Lock-client thread counts benchmarked, in order.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Objects each action locks before releasing.
const OBJECTS_PER_ACTION: u64 = 8;

/// The disjoint workload's required speed-up of 8 threads over 1,
/// on hosts with at least two CPUs.
const SCALING_FLOOR_AT_8: f64 = 2.0;

/// On a single-CPU host, 8 threads can at best tie the serial run;
/// only guard against a collapse below it (scheduling noise allowed).
const SINGLE_CORE_FLOOR: f64 = 0.6;

#[derive(Clone, Copy)]
enum Workload {
    Disjoint,
    Hot,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Disjoint => "disjoint",
            Workload::Hot => "hot",
        }
    }
}

struct RunResult {
    workload: &'static str,
    threads: usize,
    acquires: u64,
    elapsed: Duration,
    waits: u64,
}

impl RunResult {
    fn acquires_per_sec(&self) -> f64 {
        self.acquires as f64 / self.elapsed.as_secs_f64()
    }
}

/// One benchmark run: `threads` clients, `iters` actions each.
fn run(workload: Workload, threads: usize, iters: u64) -> RunResult {
    let table = Arc::new(LockTable::new(ColouredPolicy));
    let ctx = FlatAncestry::new();
    let colour = Colour::from_index(0);
    let waits_before = table.wait_stats().waits;

    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads as u64)
        .map(|t| {
            let table = Arc::clone(&table);
            let ctx = ctx.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..iters {
                    // Action ids must be unique across threads and
                    // iterations; object ids overlap only when hot.
                    let action = ActionId::from_raw(1 + t * iters + i);
                    for k in 0..OBJECTS_PER_ACTION {
                        let object = match workload {
                            Workload::Disjoint => {
                                ObjectId::from_raw(1 + (t * OBJECTS_PER_ACTION) + k)
                            }
                            Workload::Hot => ObjectId::from_raw(1 + k),
                        };
                        table
                            .acquire(
                                &ctx,
                                action,
                                object,
                                colour,
                                LockMode::Write,
                                Some(Duration::from_secs(30)),
                            )
                            .expect("acquire");
                    }
                    table.release_colour(action, colour);
                    table.retire_action(action);
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().expect("lock client thread");
    }
    let elapsed = started.elapsed();

    RunResult {
        workload: workload.name(),
        threads,
        acquires: threads as u64 * iters * OBJECTS_PER_ACTION,
        elapsed,
        waits: table.wait_stats().waits - waits_before,
    }
}

/// Keys each writer owns in the readers-vs-writers workload.
const RW_KEYS_PER_WRITER: u64 = 64;

#[derive(Clone, Copy, PartialEq)]
enum ScanMode {
    /// The scanner is a normal action taking read locks (2PL).
    Locked,
    /// The scanner is a declared read-only snapshot (no locks).
    Snapshot,
}

impl ScanMode {
    fn name(self) -> &'static str {
        match self {
            ScanMode::Locked => "rw_locked",
            ScanMode::Snapshot => "rw_snapshot",
        }
    }
}

struct RwResult {
    mode: &'static str,
    writers: usize,
    commits: u64,
    scans: u64,
    elapsed: Duration,
    /// Lock waits during the run. Writers' ranges are disjoint, so any
    /// wait involves the scanner; in snapshot mode this must be zero.
    waits: u64,
    /// Online watchdog violations observed during the run; any value
    /// above zero fails the benchmark — a protocol bug under load.
    violations: u64,
}

/// One readers-vs-writers run: `writers` threads each committing
/// `iters` single-key modifications on their own key range, racing one
/// scanner thread that reads every key until the writers finish.
fn run_rw(mode: ScanMode, writers: usize, iters: u64) -> RwResult {
    let rt = Runtime::builder().build();
    // Every rw run is watchdog-audited: the streaming R1–R10 checks
    // ride the event bus in-line, so a locking or snapshot-visibility
    // bug under real thread contention fails the benchmark outright.
    let bus = Arc::new(EventBus::new());
    let watchdog = Watchdog::attach(&bus);
    rt.install_obs(Obs::new(bus));
    let objects: Vec<ObjectId> = (0..writers as u64 * RW_KEYS_PER_WRITER)
        .map(|_| rt.create_object(&0u64).expect("create key"))
        .collect();
    let objects = Arc::new(objects);
    let waits_before = rt.lock_wait_stats().waits;
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(writers + 2));

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let rt = rt.clone();
            let objects = Arc::clone(&objects);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let range = &objects
                    [w * RW_KEYS_PER_WRITER as usize..(w + 1) * RW_KEYS_PER_WRITER as usize];
                barrier.wait();
                for i in 0..iters {
                    let object = range[(i % RW_KEYS_PER_WRITER) as usize];
                    rt.atomic(|a| a.modify::<u64, _>(object, |v| *v += 1))
                        .expect("writer commit");
                }
            })
        })
        .collect();

    let scanner = {
        let rt = rt.clone();
        let objects = Arc::clone(&objects);
        let barrier = Arc::clone(&barrier);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            barrier.wait();
            let mut scans = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match mode {
                    ScanMode::Locked => {
                        rt.atomic(|a| {
                            let mut sum = 0u64;
                            for &object in objects.iter() {
                                sum += a.read::<u64>(object)?;
                            }
                            Ok(sum)
                        })
                        .expect("locked scan");
                    }
                    ScanMode::Snapshot => {
                        let snap = rt.begin_read_only();
                        for &object in objects.iter() {
                            snap.read::<u64>(object).expect("snapshot scan");
                        }
                        snap.end();
                    }
                }
                scans += 1;
            }
            scans
        })
    };

    barrier.wait();
    let started = Instant::now();
    for h in writer_handles {
        h.join().expect("writer thread");
    }
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    let scans = scanner.join().expect("scanner thread");

    RwResult {
        mode: mode.name(),
        writers,
        commits: writers as u64 * iters,
        scans,
        elapsed,
        waits: rt.lock_wait_stats().waits - waits_before,
        violations: watchdog.violations(),
    }
}

fn render_report(results: &[RunResult], rw_results: &[RwResult]) -> Report {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let waits_in = |mode: &str| {
        rw_results
            .iter()
            .filter(|r| r.mode == mode)
            .map(|r| r.waits)
            .sum::<u64>()
    };
    let report = Report::new("lock_scalability")
        .field("cores", cores)
        .field("writer_waits_without_snapshots", waits_in("rw_locked"))
        .field("writer_waits_with_snapshots", waits_in("rw_snapshot"));
    let report = results.iter().fold(report, |report, r| {
        report.run(
            Obj::new()
                .field("workload", r.workload)
                .field("threads", r.threads)
                .field("acquires", r.acquires)
                .field("elapsed_ms", r.elapsed.as_secs_f64() * 1000.0)
                .field("acquires_per_sec", r.acquires_per_sec())
                .field("waits", r.waits),
        )
    });
    rw_results.iter().fold(report, |report, r| {
        report.run(
            Obj::new()
                .field("workload", r.mode)
                .field("threads", r.writers)
                .field("commits", r.commits)
                .field("scans", r.scans)
                .field("elapsed_ms", r.elapsed.as_secs_f64() * 1000.0)
                .field(
                    "commits_per_sec",
                    r.commits as f64 / r.elapsed.as_secs_f64(),
                )
                .field("waits", r.waits)
                .field("watchdog_violations", r.violations),
        )
    })
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_locks.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: lock_bench [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    let iters: u64 = if smoke { 20_000 } else { 200_000 };

    let mut results = Vec::new();
    for workload in [Workload::Disjoint, Workload::Hot] {
        for &threads in &THREAD_COUNTS {
            let r = run(workload, threads, iters);
            println!(
                "{:8}  threads={:2}  acquires={:8}  {:12.1} acquires/s  waits={}",
                r.workload,
                r.threads,
                r.acquires,
                r.acquires_per_sec(),
                r.waits,
            );
            results.push(r);
        }
    }

    let rw_iters: u64 = if smoke { 2_000 } else { 20_000 };
    let mut rw_results = Vec::new();
    for mode in [ScanMode::Locked, ScanMode::Snapshot] {
        for &writers in &THREAD_COUNTS {
            let r = run_rw(mode, writers, rw_iters);
            println!(
                "{:12}  writers={:2}  commits={:8}  scans={:6}  {:10.1} commits/s  waits={}",
                r.mode,
                r.writers,
                r.commits,
                r.scans,
                r.commits as f64 / r.elapsed.as_secs_f64(),
                r.waits,
            );
            rw_results.push(r);
        }
    }

    render_report(&results, &rw_results)
        .write(&out_path)
        .expect("write results");
    println!("wrote {out_path}");

    let snapshot_waits: u64 = rw_results
        .iter()
        .filter(|r| r.mode == "rw_snapshot")
        .map(|r| r.waits)
        .sum();
    let rw_violations: u64 = rw_results.iter().map(|r| r.violations).sum();
    if rw_violations > 0 {
        eprintln!(
            "FAIL: {rw_violations} online watchdog violation(s) during the \
             readers-vs-writers runs — the locking or snapshot protocol \
             broke under contention",
        );
        std::process::exit(1);
    }
    println!("watchdog silent across all readers-vs-writers runs");

    if snapshot_waits > 0 {
        eprintln!(
            "FAIL: {snapshot_waits} lock waits with a snapshot scanner — \
             writers' key ranges are disjoint, so the read-only scanner \
             must be the culprit; snapshot reads are touching the lock \
             table",
        );
        std::process::exit(1);
    }
    println!("snapshot scanner caused 0 writer waits across all writer counts");

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let floor = if cores >= 2 {
        SCALING_FLOOR_AT_8
    } else {
        SINGLE_CORE_FLOOR
    };
    let disjoint_at = |threads: usize| {
        results
            .iter()
            .find(|r| r.workload == "disjoint" && r.threads == threads)
            .expect("disjoint run present")
    };
    let baseline = disjoint_at(1).acquires_per_sec();
    let at_8 = disjoint_at(8);
    let scaling = at_8.acquires_per_sec() / baseline;
    if at_8.waits > 0 {
        eprintln!(
            "FAIL: {} waits in the disjoint workload — sharded acquires \
             are contending on unrelated objects",
            at_8.waits
        );
        std::process::exit(1);
    }
    if scaling < floor {
        eprintln!(
            "FAIL: disjoint throughput at 8 threads is only {scaling:.2}× the \
             1-thread run (floor {floor}× on {cores} CPU(s)) — lock sharding \
             is not scaling",
        );
        std::process::exit(1);
    }
    println!("disjoint scaling at 8 threads: {scaling:.2}× (floor {floor}× on {cores} CPU(s))");
}
