//! Lock-manager scalability benchmark for the sharded lock table.
//!
//! Drives `LockTable` directly (no runtime, no disk) with 1/2/4/8
//! threads under two workloads:
//!
//! * `disjoint` — every thread locks its own objects; with the table
//!   partitioned into shards these acquisitions should never contend
//!   and throughput should scale with threads;
//! * `hot` — every thread hammers one shared object, measuring the
//!   serialized worst case (reported, not gated).
//!
//! Each iteration is a full action lifetime: fresh `ActionId`, eight
//! `Write` acquisitions, `release_colour`, `retire_action` — the same
//! sequence the runtime's commit path performs.
//!
//! Results are written as JSON to `BENCH_locks.json` (override with
//! `--out <path>`). `--smoke` shrinks the workload for CI. Exits
//! non-zero if the disjoint workload ever parks a waiter, or if
//! 8-thread disjoint throughput fails to reach 2× the 1-thread run,
//! so CI catches a sharding regression that re-serializes independent
//! lock traffic. A host without ≥ 2 CPUs cannot exhibit wall-clock
//! scaling no matter how well the table shards, so there the scaling
//! floor degrades to a no-regression check (8 threads must stay within
//! noise of the serial run).

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use chroma_base::{ActionId, Colour, LockMode, ObjectId};
use chroma_bench::report::{Obj, Report};
use chroma_locks::{ColouredPolicy, FlatAncestry, LockTable};

/// Lock-client thread counts benchmarked, in order.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Objects each action locks before releasing.
const OBJECTS_PER_ACTION: u64 = 8;

/// The disjoint workload's required speed-up of 8 threads over 1,
/// on hosts with at least two CPUs.
const SCALING_FLOOR_AT_8: f64 = 2.0;

/// On a single-CPU host, 8 threads can at best tie the serial run;
/// only guard against a collapse below it (scheduling noise allowed).
const SINGLE_CORE_FLOOR: f64 = 0.6;

#[derive(Clone, Copy)]
enum Workload {
    Disjoint,
    Hot,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Disjoint => "disjoint",
            Workload::Hot => "hot",
        }
    }
}

struct RunResult {
    workload: &'static str,
    threads: usize,
    acquires: u64,
    elapsed: Duration,
    waits: u64,
}

impl RunResult {
    fn acquires_per_sec(&self) -> f64 {
        self.acquires as f64 / self.elapsed.as_secs_f64()
    }
}

/// One benchmark run: `threads` clients, `iters` actions each.
fn run(workload: Workload, threads: usize, iters: u64) -> RunResult {
    let table = Arc::new(LockTable::new(ColouredPolicy));
    let ctx = FlatAncestry::new();
    let colour = Colour::from_index(0);
    let waits_before = table.wait_stats().waits;

    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads as u64)
        .map(|t| {
            let table = Arc::clone(&table);
            let ctx = ctx.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..iters {
                    // Action ids must be unique across threads and
                    // iterations; object ids overlap only when hot.
                    let action = ActionId::from_raw(1 + t * iters + i);
                    for k in 0..OBJECTS_PER_ACTION {
                        let object = match workload {
                            Workload::Disjoint => {
                                ObjectId::from_raw(1 + (t * OBJECTS_PER_ACTION) + k)
                            }
                            Workload::Hot => ObjectId::from_raw(1 + k),
                        };
                        table
                            .acquire(
                                &ctx,
                                action,
                                object,
                                colour,
                                LockMode::Write,
                                Some(Duration::from_secs(30)),
                            )
                            .expect("acquire");
                    }
                    table.release_colour(action, colour);
                    table.retire_action(action);
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join().expect("lock client thread");
    }
    let elapsed = started.elapsed();

    RunResult {
        workload: workload.name(),
        threads,
        acquires: threads as u64 * iters * OBJECTS_PER_ACTION,
        elapsed,
        waits: table.wait_stats().waits - waits_before,
    }
}

fn render_report(results: &[RunResult]) -> Report {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    results.iter().fold(
        Report::new("lock_scalability").field("cores", cores),
        |report, r| {
            report.run(
                Obj::new()
                    .field("workload", r.workload)
                    .field("threads", r.threads)
                    .field("acquires", r.acquires)
                    .field("elapsed_ms", r.elapsed.as_secs_f64() * 1000.0)
                    .field("acquires_per_sec", r.acquires_per_sec())
                    .field("waits", r.waits),
            )
        },
    )
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_locks.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: lock_bench [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    let iters: u64 = if smoke { 20_000 } else { 200_000 };

    let mut results = Vec::new();
    for workload in [Workload::Disjoint, Workload::Hot] {
        for &threads in &THREAD_COUNTS {
            let r = run(workload, threads, iters);
            println!(
                "{:8}  threads={:2}  acquires={:8}  {:12.1} acquires/s  waits={}",
                r.workload,
                r.threads,
                r.acquires,
                r.acquires_per_sec(),
                r.waits,
            );
            results.push(r);
        }
    }

    render_report(&results)
        .write(&out_path)
        .expect("write results");
    println!("wrote {out_path}");

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let floor = if cores >= 2 {
        SCALING_FLOOR_AT_8
    } else {
        SINGLE_CORE_FLOOR
    };
    let disjoint_at = |threads: usize| {
        results
            .iter()
            .find(|r| r.workload == "disjoint" && r.threads == threads)
            .expect("disjoint run present")
    };
    let baseline = disjoint_at(1).acquires_per_sec();
    let at_8 = disjoint_at(8);
    let scaling = at_8.acquires_per_sec() / baseline;
    if at_8.waits > 0 {
        eprintln!(
            "FAIL: {} waits in the disjoint workload — sharded acquires \
             are contending on unrelated objects",
            at_8.waits
        );
        std::process::exit(1);
    }
    if scaling < floor {
        eprintln!(
            "FAIL: disjoint throughput at 8 threads is only {scaling:.2}× the \
             1-thread run (floor {floor}× on {cores} CPU(s)) — lock sharding \
             is not scaling",
        );
        std::process::exit(1);
    }
    println!("disjoint scaling at 8 threads: {scaling:.2}× (floor {floor}× on {cores} CPU(s))");
}
