//! Shared helpers for the criterion benchmark harness.
//!
//! The benchmarks live in `benches/`, one group per paper figure
//! (`fig01`…`fig15`) plus the ablations (`ablation_*`); see
//! `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md` for the
//! measured results. Run with:
//!
//! ```text
//! cargo bench -p chroma-bench
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use chroma_core::{Runtime, RuntimeConfig};
use std::time::Duration;

/// A runtime configured with short lock timeouts, suitable for
/// benchmark bodies that never contend pathologically.
#[must_use]
pub fn bench_runtime() -> Runtime {
    Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_secs(2)),
        })
        .build()
}
