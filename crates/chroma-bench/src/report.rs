//! The unified `BENCH_*.json` report schema and writer.
//!
//! Every gating benchmark binary (`lock_bench`, `commit_bench`,
//! `load_bench`) emits the same top-level shape so CI artifacts and
//! trend tooling can consume them uniformly (see `DESIGN.md` §5.3):
//!
//! ```json
//! {
//!   "benchmark": "<name>",
//!   "schema_version": 1,
//!   "<metadata field>": ...,          // scalar run metadata (seed, cores, ...)
//!   "runs": [ { ...one measured configuration... }, ... ]
//! }
//! ```
//!
//! The build environment has no `serde_json`, so this module carries a
//! deliberately small JSON value model: enough to render the reports,
//! nothing more. Field order is preserved (insertion order), floats are
//! rendered with a fixed, locale-independent format, and strings go
//! through [`chroma_obs::escape_json_str`].

use std::io;
use std::path::Path;

use chroma_obs::escape_json_str;

/// Schema version stamped into every report.
pub const SCHEMA_VERSION: u64 = 1;

/// A JSON value, restricted to what the benchmark reports need.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An unsigned integer.
    U64(u64),
    /// A float, rendered with up to four fractional digits.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// A nested object.
    Object(Obj),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Obj> for Value {
    fn from(v: Obj) -> Self {
        Value::Object(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Vec<Obj>> for Value {
    fn from(v: Vec<Obj>) -> Self {
        Value::Array(v.into_iter().map(Value::Object).collect())
    }
}

/// Renders a float the way every report does: fixed four fractional
/// digits with trailing zeros trimmed, so diffs between runs are
/// byte-stable and `12.0` renders as `12.0`, not `12.0000`.
fn render_f64(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; benchmarks treat them as absent
        // measurements.
        return "null".to_owned();
    }
    let s = format!("{v:.4}");
    let dot = s.find('.').expect("{v:.4} always has a fraction");
    // Trim trailing fractional zeros, keeping at least one digit after
    // the dot (so integers render as `12.0`, unambiguously a float).
    let mut end = s.len();
    while end > dot + 2 && s.as_bytes()[end - 1] == b'0' {
        end -= 1;
    }
    s[..end].to_owned()
}

impl Value {
    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => out.push_str(&render_f64(*v)),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(v) => {
                out.push('"');
                out.push_str(&escape_json_str(v));
                out.push('"');
            }
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Object(obj) => obj.render_into(out, indent),
        }
    }
}

/// An insertion-ordered JSON object under construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Obj(Vec<(String, Value)>);

impl Obj {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Obj::default()
    }

    /// Appends one field (builder style).
    #[must_use]
    pub fn field(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.0.push((name.to_owned(), value.into()));
        self
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        if self.0.is_empty() {
            out.push_str("{}");
            return;
        }
        out.push_str("{\n");
        for (i, (name, value)) in self.0.iter().enumerate() {
            out.push_str(&"  ".repeat(indent + 1));
            out.push('"');
            out.push_str(&escape_json_str(name));
            out.push_str("\": ");
            value.render_into(out, indent + 1);
            if i + 1 < self.0.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&"  ".repeat(indent));
        out.push('}');
    }

    /// Renders the object as pretty-printed JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }
}

/// One `BENCH_*.json` report: `benchmark` + `schema_version`, scalar
/// metadata fields in insertion order, and a `runs` array of measured
/// configurations.
#[derive(Clone, Debug)]
pub struct Report {
    fields: Obj,
    runs: Vec<Obj>,
}

impl Report {
    /// Starts a report for the named benchmark.
    #[must_use]
    pub fn new(benchmark: &str) -> Self {
        Report {
            fields: Obj::new()
                .field("benchmark", benchmark)
                .field("schema_version", SCHEMA_VERSION),
            runs: Vec::new(),
        }
    }

    /// Appends one metadata field (seed, cores, flags, nested
    /// aggregates...).
    #[must_use]
    pub fn field(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.fields = self.fields.field(name, value);
        self
    }

    /// Appends one measured run.
    #[must_use]
    pub fn run(mut self, run: Obj) -> Self {
        self.runs.push(run);
        self
    }

    /// Renders the full report as JSON (trailing newline included).
    #[must_use]
    pub fn render(&self) -> String {
        let whole = self.fields.clone().field("runs", self.runs.clone());
        let mut out = whole.render();
        out.push('\n');
        out
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_unified_envelope() {
        let text = Report::new("demo")
            .field("seed", 42u64)
            .run(
                Obj::new()
                    .field("threads", 8u64)
                    .field("ops_per_sec", 123.456_f64),
            )
            .render();
        assert!(text.starts_with("{\n  \"benchmark\": \"demo\""));
        assert!(text.contains("\"schema_version\": 1"));
        assert!(text.contains("\"seed\": 42"));
        assert!(text.contains("\"runs\": ["));
        assert!(text.contains("\"ops_per_sec\": 123.456"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn floats_render_stably() {
        assert_eq!(render_f64(12.0), "12.0");
        assert_eq!(render_f64(0.5), "0.5");
        assert_eq!(render_f64(1.23456), "1.2346");
        assert_eq!(render_f64(f64::NAN), "null");
        assert_eq!(render_f64(f64::INFINITY), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let text = Obj::new().field("label", "a\"b\\c").render();
        assert!(text.contains("\"a\\\"b\\\\c\""), "{text}");
    }

    #[test]
    fn empty_collections_render_compact() {
        let text = Obj::new()
            .field("arr", Vec::<Value>::new())
            .field("obj", Obj::new())
            .render();
        assert!(text.contains("\"arr\": []"));
        assert!(text.contains("\"obj\": {}"));
    }

    #[test]
    fn nested_runs_and_arrays_round_trip_shape() {
        let classes = vec![
            Obj::new().field("class", "read").field("p99_us", 15.0_f64),
            Obj::new()
                .field("class", "write")
                .field("p99_us", 2047.0_f64),
        ];
        let text = Report::new("load_harness")
            .run(
                Obj::new()
                    .field("phase", "closed_kv")
                    .field("classes", classes),
            )
            .render();
        assert!(text.contains("\"phase\": \"closed_kv\""));
        assert!(text.contains("\"class\": \"write\""));
        // two-space indentation, nesting grows monotonically: run
        // objects sit two levels deep, class objects four
        assert!(text.contains("\n    {"), "{text}");
        assert!(text.contains("\n        {"), "{text}");
    }
}
