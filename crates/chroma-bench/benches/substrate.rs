//! Benchmarks of the substrates: the lock managers (ablation A5/A1),
//! the codec, the stable store, and the contention workload (A2's
//! quantitative companion).

use chroma_base::{ActionId, Colour, LockMode, ObjectId};
use chroma_bench::bench_runtime;
use chroma_locks::{ClassicPolicy, ColouredPolicy, FlatAncestry, LockTable};
use chroma_sim::{run_contention, WorkloadConfig};
use chroma_store::codec::{from_bytes, to_bytes};
use chroma_store::{StableStore, StoreBytes};
use chroma_typed::{EscrowCounter, KeyedDirectory};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use serde::{Deserialize, Serialize};

/// A5: grant-path cost, classic vs coloured rules — the paper's "minor
/// modifications to the conventional rules" quantified.
fn ablation_lock_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lock_overhead");
    let ancestry = FlatAncestry::new();
    let colour = Colour::from_index(0);
    group.bench_function("classic_read_grant_release", |b| {
        let table = LockTable::new(ClassicPolicy);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let action = ActionId::from_raw(i % 4);
            table
                .try_acquire(
                    &ancestry,
                    action,
                    ObjectId::from_raw(i % 16),
                    colour,
                    LockMode::Read,
                )
                .unwrap();
            if i.is_multiple_of(8) {
                table.discard_action(action);
            }
        });
    });
    group.bench_function("coloured_read_grant_release", |b| {
        let table = LockTable::new(ColouredPolicy);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let action = ActionId::from_raw(i % 4);
            table
                .try_acquire(
                    &ancestry,
                    action,
                    ObjectId::from_raw(i % 16),
                    colour,
                    LockMode::Read,
                )
                .unwrap();
            if i.is_multiple_of(8) {
                table.discard_action(action);
            }
        });
    });
    group.bench_function("coloured_write_deny_path", |b| {
        let table = LockTable::new(ColouredPolicy);
        table
            .try_acquire(
                &ancestry,
                ActionId::from_raw(99),
                ObjectId::from_raw(0),
                colour,
                LockMode::Write,
            )
            .unwrap();
        b.iter(|| {
            let _ = table.try_acquire(
                &ancestry,
                ActionId::from_raw(1),
                ObjectId::from_raw(0),
                Colour::from_index(1),
                LockMode::Write,
            );
        });
    });
    group.finish();
}

#[derive(Serialize, Deserialize)]
struct BenchRecord {
    name: String,
    values: Vec<u64>,
    tags: Vec<(String, i64)>,
}

/// Codec throughput (every object state crosses this path).
fn substrate_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_codec");
    let record = BenchRecord {
        name: "payments-shard-7".to_owned(),
        values: (0..64).collect(),
        tags: (0..8).map(|i| (format!("tag{i}"), i)).collect(),
    };
    let bytes = to_bytes(&record).unwrap();
    group.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| b.iter(|| to_bytes(&record).unwrap()));
    group.bench_function("decode", |b| {
        b.iter(|| from_bytes::<BenchRecord>(&bytes).unwrap())
    });
    group.finish();
}

/// Intentions-list commit and recovery cost.
fn substrate_stable_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_stable_store");
    group.bench_function("commit_batch_8_objects", |b| {
        let store = StableStore::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let updates: Vec<(ObjectId, StoreBytes)> = (0..8)
                .map(|k| {
                    (
                        ObjectId::from_raw(k),
                        StoreBytes::from(i.to_le_bytes().to_vec()),
                    )
                })
                .collect();
            store.commit_batch(updates);
        });
    });
    group.bench_function("recover_after_mid_commit_crash", |b| {
        b.iter_batched(
            || {
                let store = StableStore::new();
                let updates: Vec<(ObjectId, StoreBytes)> = (0..8)
                    .map(|k| (ObjectId::from_raw(k), StoreBytes::from(vec![k as u8])))
                    .collect();
                let _ = store.commit_batch_with_crash(
                    updates,
                    chroma_store::CommitCrashPoint::AfterCommitRecord,
                );
                store
            },
            |store| store.recover(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// A2's quantitative companion: end-to-end workload throughput at two
/// contention levels.
fn ablation_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_workload");
    group.sample_size(10);
    for (name, hot) in [("uniform", 0.0f64), ("hotspot_50pct", 0.5)] {
        group.bench_function(format!("contention_{name}"), |b| {
            b.iter_batched(
                bench_runtime,
                |rt| {
                    run_contention(
                        &rt,
                        &WorkloadConfig {
                            objects: 16,
                            threads: 4,
                            actions_per_thread: 50,
                            ops_per_action: 2,
                            write_ratio: 0.5,
                            hot_ratio: hot,
                            seed: 1,
                        },
                    )
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// A7's quantitative companion: typed objects vs naive objects under
/// multi-threaded contention.
fn ablation_typed_objects(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_typed_objects");
    group.sample_size(10);
    group.bench_function("naive_counter_4_threads", |b| {
        b.iter_batched(
            || {
                let rt = bench_runtime();
                let o = rt.create_object(&0i64).unwrap();
                (rt, o)
            },
            |(rt, o)| {
                std::thread::scope(|scope| {
                    for _ in 0..4 {
                        let rt = rt.clone();
                        scope.spawn(move || {
                            for _ in 0..25 {
                                rt.atomic(|a| a.modify(o, |v: &mut i64| *v += 1)).unwrap();
                            }
                        });
                    }
                });
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("escrow_counter_4_threads", |b| {
        b.iter_batched(
            || {
                let rt = bench_runtime();
                let counter = std::sync::Arc::new(EscrowCounter::create(&rt, 8).unwrap());
                (rt, counter)
            },
            |(rt, counter)| {
                std::thread::scope(|scope| {
                    for _ in 0..4 {
                        let rt = rt.clone();
                        let counter = std::sync::Arc::clone(&counter);
                        scope.spawn(move || {
                            for _ in 0..25 {
                                rt.atomic(|a| counter.add(a, 1)).unwrap();
                            }
                        });
                    }
                });
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("keyed_directory_insert_lookup", |b| {
        let rt = bench_runtime();
        let dir: KeyedDirectory<u64> = KeyedDirectory::create(&rt, 16).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("k{}", i % 64);
            rt.atomic(|a| {
                dir.insert(a, &key, &i)?;
                dir.lookup(a, &key)
            })
            .unwrap();
        });
    });
    group.finish();
}

criterion_group!(
    substrate,
    ablation_lock_overhead,
    substrate_codec,
    substrate_stable_store,
    ablation_workload,
    ablation_typed_objects,
);
criterion_main!(substrate);
