//! Benchmarks regenerating figs. 1–7 and 10–15: the action structures
//! and their coloured implementations.
//!
//! Each group name carries the figure id from `DESIGN.md` §5. The
//! interesting output is the *relative* shape: how much a structure
//! costs over a plain action, and that the coloured implementation of a
//! structure costs the same as the hand scripted colour scheme.

use chroma_base::{ColourSet, LockMode};
use chroma_bench::bench_runtime;
use chroma_core::{ActionError, Runtime};
use chroma_structures::compiler::{assign, Structure};
use chroma_structures::{
    independent_async, independent_sync, GluedChain, GluedGroup, SerializingAction,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// fig. 1 / baseline: plain top-level atomic actions, and one- and
/// two-deep nesting.
fn fig01_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig01_nested");
    let rt = bench_runtime();
    let o = rt.create_object(&0i64).unwrap();
    group.bench_function("top_level_action", |b| {
        b.iter(|| {
            rt.atomic(|a| a.modify(o, |v: &mut i64| *v += 1)).unwrap();
        });
    });
    group.bench_function("one_nested_level", |b| {
        b.iter(|| {
            rt.atomic(|a| a.nested(|n| n.modify(o, |v: &mut i64| *v += 1)))
                .unwrap();
        });
    });
    group.bench_function("two_nested_levels", |b| {
        b.iter(|| {
            rt.atomic(|a| a.nested(|n| n.nested(|m| m.modify(o, |v: &mut i64| *v += 1))))
                .unwrap();
        });
    });
    group.finish();
}

/// fig. 2: the cost of an abort that undoes a nested action's work.
fn fig02_motivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig02_motivation");
    let rt = bench_runtime();
    let objects: Vec<_> = (0..8).map(|_| rt.create_object(&0i64).unwrap()).collect();
    group.bench_function("abort_undoing_nested_work", |b| {
        b.iter(|| {
            let result: Result<(), ActionError> = rt.atomic(|a| {
                a.nested(|n| {
                    for &o in &objects {
                        n.write(o, &1i64)?;
                    }
                    Ok(())
                })?;
                Err(ActionError::failed("A aborts"))
            });
            assert!(result.is_err());
        });
    });
    group.finish();
}

/// fig. 3 / fig. 11: serializing action step throughput vs a plain
/// top-level action doing the same work.
fn fig03_serializing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03_serializing");
    let rt = bench_runtime();
    let o = rt.create_object(&0i64).unwrap();
    group.bench_function("plain_action_per_unit", |b| {
        b.iter(|| {
            rt.atomic(|a| a.modify(o, |v: &mut i64| *v += 1)).unwrap();
        });
    });
    group.bench_function("serializing_step_per_unit", |b| {
        b.iter_batched(
            || SerializingAction::begin(&rt).unwrap(),
            |sa| {
                sa.step(|s| s.modify(o, |v: &mut i64| *v += 1)).unwrap();
                sa.end().unwrap();
            },
            BatchSize::PerIteration,
        );
    });
    group.bench_function("serializing_4_steps", |b| {
        b.iter_batched(
            || SerializingAction::begin(&rt).unwrap(),
            |sa| {
                for _ in 0..4 {
                    sa.step(|s| s.modify(o, |v: &mut i64| *v += 1)).unwrap();
                }
                sa.end().unwrap();
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

/// fig. 4: the rejected baselines, timed for completeness.
fn fig04_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04_baselines");
    let rt = bench_runtime();
    let objects: Vec<_> = (0..8).map(|_| rt.create_object(&0i64).unwrap()).collect();
    group.bench_function("two_top_level_actions", |b| {
        b.iter(|| {
            rt.atomic(|a| {
                for &o in &objects {
                    a.write(o, &1i64)?;
                }
                Ok(())
            })
            .unwrap();
            rt.atomic(|a| a.modify(objects[0], |v: &mut i64| *v += 1))
                .unwrap();
        });
    });
    group.bench_function("serializing_pair", |b| {
        b.iter(|| {
            let sa = SerializingAction::begin(&rt).unwrap();
            sa.step(|s| {
                for &o in &objects {
                    s.write(o, &1i64)?;
                }
                Ok(())
            })
            .unwrap();
            sa.step(|s| s.modify(objects[0], |v: &mut i64| *v += 1))
                .unwrap();
            sa.end().unwrap();
        });
    });
    group.finish();
}

/// fig. 5 / fig. 12: glued chain step cost, including the hand-over.
fn fig05_glued(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05_glued");
    let rt = bench_runtime();
    let objects: Vec<_> = (0..8).map(|_| rt.create_object(&0i64).unwrap()).collect();
    group.bench_function("glued_pair_with_handover", |b| {
        b.iter(|| {
            let chain = GluedChain::begin(&rt, 2).unwrap();
            chain
                .step(|s| {
                    for &o in &objects {
                        s.write(o, &1i64)?;
                    }
                    s.hand_over(objects[0])
                })
                .unwrap();
            chain
                .step(|s| s.modify(objects[0], |v: &mut i64| *v += 1))
                .unwrap();
            chain.end().unwrap();
        });
    });
    group.bench_function("chain_begin_end_overhead", |b| {
        b.iter(|| {
            GluedChain::begin(&rt, 4).unwrap().end().unwrap();
        });
    });
    group.finish();
}

/// fig. 6: concurrent glued group throughput.
fn fig06_concurrent_glued(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_concurrent_glued");
    group.sample_size(20);
    let rt = bench_runtime();
    let objects: Vec<_> = (0..4).map(|_| rt.create_object(&0i64).unwrap()).collect();
    group.bench_function("contribute_receive_x4", |b| {
        b.iter(|| {
            let group = GluedGroup::begin(&rt).unwrap();
            for &o in &objects {
                group
                    .contribute(|s| {
                        s.modify(o, |v: &mut i64| *v += 1)?;
                        s.hand_over(o)
                    })
                    .unwrap();
            }
            for &o in &objects {
                group
                    .receive(|s| s.modify(o, |v: &mut i64| *v += 1))
                    .unwrap();
            }
            group.end().unwrap();
        });
    });
    group.finish();
}

/// fig. 7 / fig. 13: independent invocation overhead (sync and async).
fn fig07_independent(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_independent");
    group.sample_size(30);
    let rt = bench_runtime();
    let ledger = rt.create_object(&0i64).unwrap();
    group.bench_function("sync_independent_from_action", |b| {
        b.iter(|| {
            rt.atomic(|a| independent_sync(a, |i| i.modify(ledger, |v: &mut i64| *v += 1)))
                .unwrap();
        });
    });
    group.bench_function("async_independent_spawn_join", |b| {
        b.iter(|| {
            independent_async(&rt, move |i| i.modify(ledger, |v: &mut i64| *v += 1))
                .join()
                .unwrap();
        });
    });
    group.finish();
}

/// fig. 10: the coloured runtime primitive operations.
fn fig10_coloured_basics(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_coloured_basics");
    let rt = bench_runtime();
    let red = rt.universe().colour("red");
    let blue = rt.universe().colour("blue");
    let o_red = rt.create_object(&0i32).unwrap();
    let o_blue = rt.create_object(&0i32).unwrap();
    group.bench_function("two_colour_nested_commit_abort", |b| {
        b.iter(|| {
            let a = rt.begin_top(ColourSet::single(blue)).unwrap();
            let bb = rt
                .begin_nested(a, ColourSet::from_iter([red, blue]))
                .unwrap();
            {
                let scope = rt.scope(bb).unwrap();
                scope.write_in(red, o_red, &1i32).unwrap();
                scope.write_in(blue, o_blue, &1i32).unwrap();
            }
            rt.commit(bb).unwrap();
            rt.abort(a);
        });
    });
    group.bench_function("single_colour_nested_commit_abort", |b| {
        b.iter(|| {
            let a = rt.begin_top(ColourSet::single(blue)).unwrap();
            let bb = rt.begin_nested(a, ColourSet::single(blue)).unwrap();
            rt.scope(bb).unwrap().write_in(blue, o_blue, &1i32).unwrap();
            rt.commit(bb).unwrap();
            rt.abort(a);
        });
    });
    group.finish();
}

/// figs. 11/12: the structure APIs vs hand-scripted colour schemes.
fn fig11_12_structure_vs_script(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_12_structure_vs_script");
    let rt = bench_runtime();
    let o = rt.create_object(&0i64).unwrap();
    group.bench_function("serializing_via_structure", |b| {
        b.iter(|| {
            let sa = SerializingAction::begin(&rt).unwrap();
            sa.step(|s| s.write(o, &1i64)).unwrap();
            sa.end().unwrap();
        });
    });
    group.bench_function("serializing_via_raw_colours", |b| {
        b.iter(|| {
            let fence = rt.universe().fresh().unwrap();
            let update = rt.universe().fresh().unwrap();
            let control = rt.begin_top(ColourSet::single(fence)).unwrap();
            rt.run_nested(
                control,
                ColourSet::from_iter([fence, update]),
                update,
                |s| {
                    s.lock(fence, o, LockMode::ExclusiveRead)?;
                    s.write_in(update, o, &1i64)
                },
            )
            .unwrap();
            rt.commit(control).unwrap();
            rt.universe().release(fence);
            rt.universe().release(update);
        });
    });
    group.finish();
}

/// figs. 14/15: compiling and executing the n-level structure.
fn fig14_15_compiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_15_compiler");
    group.sample_size(30);
    let structure = Structure::top(
        "A",
        vec![
            Structure::work("D"),
            Structure::action(
                "B",
                vec![
                    Structure::independent("C", 2, vec![Structure::work("C.body")]),
                    Structure::independent("E", 1, vec![Structure::work("E.body")]),
                ],
            ),
            Structure::independent("F", 1, vec![Structure::work("F.body")]),
        ],
    );
    group.bench_function("assign_colours", |b| {
        b.iter(|| assign(&structure).unwrap());
    });
    let plan = assign(&structure).unwrap();
    group.bench_function("execute_fig14_plan", |b| {
        b.iter_batched(
            || Runtime::builder().build(),
            |rt| plan.execute(&rt, &|_| true).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("predict_survival_matrix", |b| {
        b.iter(|| {
            for work in ["D", "C.body", "E.body", "F.body"] {
                for aborter in ["A", "B", "C", "E", "F"] {
                    let _ = plan.undone_by(work, aborter);
                }
            }
        });
    });
    group.finish();
}

criterion_group!(
    structures,
    fig01_nested,
    fig02_motivation,
    fig03_serializing,
    fig04_baselines,
    fig05_glued,
    fig06_concurrent_glued,
    fig07_independent,
    fig10_coloured_basics,
    fig11_12_structure_vs_script,
    fig14_15_compiler,
);
criterion_main!(structures);
