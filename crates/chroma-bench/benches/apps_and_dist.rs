//! Benchmarks regenerating figs. 8–9 (the applications) and the
//! distributed-substrate ablations (A3, A4): two-phase commit and
//! replication.

use chroma_apps::{schedule_meeting, Diary, DistMake, Makefile, ReplicatedNameServer};
use chroma_base::ObjectId;
use chroma_bench::bench_runtime;
use chroma_dist::{Sim, Write};
use chroma_store::StoreBytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

const WIDE_MAKEFILE: &str = "app: m0.o m1.o m2.o m3.o\n\
                             \tld app\n\
                             m0.o: m0.c\n\tcc m0\n\
                             m1.o: m1.c\n\tcc m1\n\
                             m2.o: m2.c\n\tcc m2\n\
                             m3.o: m3.c\n\tcc m3\n";

fn fresh_make() -> (chroma_core::Runtime, DistMake) {
    let rt = bench_runtime();
    let make = DistMake::new(&rt, Makefile::parse(WIDE_MAKEFILE).unwrap()).unwrap();
    for i in 0..4 {
        make.write_source(&format!("m{i}.c"), "src").unwrap();
    }
    (rt, make)
}

/// fig. 8: distributed make — full build, incremental no-op, and the
/// retry-after-failure comparison against the monolithic baseline.
fn fig08_dmake(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_dmake");
    group.sample_size(20);
    group.bench_function("full_build_serializing", |b| {
        b.iter_batched(
            fresh_make,
            |(_rt, make)| make.make("app").unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("full_build_monolithic", |b| {
        b.iter_batched(
            fresh_make,
            |(_rt, make)| make.make_monolithic("app").unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("incremental_noop", |b| {
        let (_rt, make) = fresh_make();
        make.make("app").unwrap();
        b.iter(|| make.make("app").unwrap());
    });
    group.bench_function("retry_after_link_failure_serializing", |b| {
        b.iter_batched(
            || {
                let (rt, make) = fresh_make();
                make.inject_failure("app");
                let _ = make.make("app");
                make.clear_failure("app");
                (rt, make)
            },
            |(_rt, make)| make.make("app").unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("retry_after_link_failure_monolithic", |b| {
        b.iter_batched(
            || {
                let (rt, make) = fresh_make();
                make.inject_failure("app");
                let _ = make.make_monolithic("app");
                make.clear_failure("app");
                (rt, make)
            },
            |(_rt, make)| make.make_monolithic("app").unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// fig. 9: scheduling a meeting across diaries.
fn fig09_diary(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_diary");
    group.sample_size(20);
    for participants in [2usize, 4, 8] {
        group.bench_function(format!("schedule_{participants}_participants"), |b| {
            b.iter_batched(
                || {
                    let rt = bench_runtime();
                    let diaries: Vec<Diary> = (0..participants)
                        .map(|i| Diary::create(&rt, &format!("p{i}"), 8).unwrap())
                        .collect();
                    // Every participant is busy in a distinct early slot.
                    for (i, d) in diaries.iter().enumerate() {
                        d.book(&rt, i % 8, "busy").unwrap();
                    }
                    (rt, diaries)
                },
                |(rt, diaries)| schedule_meeting(&rt, &diaries, "kickoff").unwrap(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// A3: one two-phase commit round over the simulated network, clean and
/// lossy.
fn ablation_tpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tpc");
    group.sample_size(30);
    for (name, loss) in [("clean", 0.0), ("loss_20pct", 0.2)] {
        group.bench_function(format!("commit_3_participants_{name}"), |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    let mut sim = Sim::new(seed);
                    sim.net.loss = loss;
                    let coord = sim.add_node();
                    let p1 = sim.add_node();
                    let p2 = sim.add_node();
                    (sim, coord, p1, p2)
                },
                |(mut sim, coord, p1, p2)| {
                    sim.begin_transaction(
                        coord,
                        vec![
                            (
                                p1,
                                vec![Write {
                                    object: ObjectId::from_raw(1),
                                    state: StoreBytes::from(vec![1]),
                                }],
                            ),
                            (
                                p2,
                                vec![Write {
                                    object: ObjectId::from_raw(2),
                                    state: StoreBytes::from(vec![2]),
                                }],
                            ),
                        ],
                    );
                    sim.run_to_quiescence();
                    sim.now()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// A4: replicated reads and writes as replica count grows.
fn ablation_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_replication");
    group.sample_size(30);
    for replicas in [1usize, 3, 5] {
        group.bench_function(format!("write_read_{replicas}_replicas"), |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    let mut sim = Sim::new(seed);
                    let nodes: Vec<_> = (0..replicas).map(|_| sim.add_node()).collect();
                    let ns = ReplicatedNameServer::create(&mut sim, ObjectId::from_raw(1), &nodes);
                    (sim, ns)
                },
                |(mut sim, ns)| {
                    assert!(ns.register(&mut sim, "svc", "loc"));
                    sim.run_to_quiescence();
                    ns.lookup(&sim, "svc")
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    apps_and_dist,
    fig08_dmake,
    fig09_diary,
    ablation_tpc,
    ablation_replication,
);
criterion_main!(apps_and_dist);
