//! Fault-injection tests for the on-disk store: kill the WAL at random
//! crash points and tear it at random byte offsets (power loss
//! mid-flush), then prove recovery restores a state the trace auditor
//! accepts — committed batches durable, uncommitted ones rolled back,
//! never a mix.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chroma_base::ObjectId;
use chroma_obs::{EventBus, MemorySink, Obs, Observable, TraceAuditor};
use chroma_store::{DiskCrashPoint, DiskError, DiskStore, StoreBytes};
use proptest::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Baseline objects committed (durably) before every injected fault.
const BASELINE_OBJECTS: u64 = 4;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chroma-crash-test-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn o(n: u64) -> ObjectId {
    ObjectId::from_raw(n)
}

/// The active (newest) live segment of a closed store directory — the
/// file a torn-power-loss test mutilates.
fn active_segment(dir: &std::path::Path) -> PathBuf {
    DiskStore::live_segment_paths(dir)
        .unwrap()
        .last()
        .cloned()
        .expect("an opened store always has a live segment")
}

fn bytes(v: &[u8]) -> StoreBytes {
    StoreBytes::from(v.to_vec())
}

/// Commits `[i, 0]` to objects `1..=BASELINE_OBJECTS` — the durable
/// state every fault-injection round must preserve.
fn seed_baseline(store: &DiskStore) {
    let updates: Vec<(ObjectId, StoreBytes)> = (1..=BASELINE_OBJECTS)
        .map(|i| (o(i), bytes(&[i as u8, 0])))
        .collect();
    store.commit_batch(updates).unwrap();
}

/// Batch overwriting objects `1..=batch_size` with `[i, 1]`.
fn overwrite_batch(batch_size: u64) -> Vec<(ObjectId, StoreBytes)> {
    (1..=batch_size)
        .map(|i| (o(i), bytes(&[i as u8, 1])))
        .collect()
}

/// Asserts the post-recovery store: objects `1..=batch_size` hold the
/// new value iff `survives`, the rest of the baseline is untouched.
fn assert_all_or_nothing(store: &DiskStore, batch_size: u64, survives: bool) {
    for i in 1..=batch_size {
        let expect = [i as u8, u8::from(survives)];
        assert_eq!(
            store.read(o(i)).unwrap().as_deref(),
            Some(&expect[..]),
            "object {i} torn (batch_size={batch_size}, survives={survives})"
        );
    }
    for i in batch_size + 1..=BASELINE_OBJECTS {
        assert_eq!(
            store.read(o(i)).unwrap().as_deref(),
            Some(&[i as u8, 0][..]),
            "baseline object {i} damaged"
        );
    }
}

/// splitmix64 — the deterministic per-seed stream for the torture
/// matrix (CI sweeps `CHROMA_TORTURE_SEED`).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn torture_seed() -> u64 {
    std::env::var("CHROMA_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash after the commit point, then tear the log at a random byte
    /// offset before reopening. Recovery must be all-or-nothing: the
    /// batch survives exactly when the tear spared the commit marker
    /// (the final record), and the baseline survives regardless.
    #[test]
    fn truncated_wal_recovers_all_or_nothing(
        batch_size in 1u64..=BASELINE_OBJECTS,
        cut_permille in 0u64..=1000,
    ) {
        let dir = temp_dir();
        {
            let store = DiskStore::open(&dir).unwrap();
            seed_baseline(&store);
            // Fold the baseline into objects/ so the active segment
            // holds exactly the batch the tear targets.
            store.checkpoint_now().unwrap();
            let err = store
                .commit_batch_with_crash(
                    overwrite_batch(batch_size),
                    DiskCrashPoint::AfterCommitRecord,
                )
                .unwrap_err();
            prop_assert!(matches!(
                err,
                DiskError::Crashed(DiskCrashPoint::AfterCommitRecord)
            ));
        }
        let log_path = active_segment(&dir);
        let log = std::fs::read(&log_path).unwrap();
        prop_assert!(!log.is_empty(), "crash left no log to tear");
        let cut = usize::try_from(log.len() as u64 * cut_permille / 1000).unwrap();
        std::fs::write(&log_path, &log[..cut]).unwrap();
        // The commit marker is the last log record, so any tear short of
        // the full length removes it and the batch must roll back.
        let survives = cut == log.len();

        let store = DiskStore::open(&dir).unwrap();
        assert_all_or_nothing(&store, batch_size, survives);
        // The store stays live after recovery.
        store.commit_batch(vec![(o(9), bytes(&[9, 9]))]).unwrap();
        prop_assert_eq!(store.read(o(9)).unwrap().as_deref(), Some(&[9u8, 9][..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Kill the commit at each injection point; recovery lands on the
    /// correct side of the commit point every time.
    #[test]
    fn every_crash_point_recovers_cleanly(
        crash_idx in 0usize..8,
        batch_size in 1u64..=BASELINE_OBJECTS,
    ) {
        let points = [
            DiskCrashPoint::BeforeIntents,
            DiskCrashPoint::AfterIntents,
            DiskCrashPoint::AfterCommitRecord,
            DiskCrashPoint::AfterInstall,
            DiskCrashPoint::SealBeforeManifest,
            DiskCrashPoint::AfterSeal,
            DiskCrashPoint::CheckpointBeforeManifest,
            DiskCrashPoint::CheckpointBeforeGc,
        ];
        let point = points[crash_idx];
        let dir = temp_dir();
        {
            let store = DiskStore::open(&dir).unwrap();
            seed_baseline(&store);
            let err = store
                .commit_batch_with_crash(overwrite_batch(batch_size), point)
                .unwrap_err();
            prop_assert!(matches!(err, DiskError::Crashed(p) if p == point));
        }
        let store = DiskStore::open(&dir).unwrap();
        // The commit point is the marker fsync: every stage at or past
        // `AfterCommitRecord` (including the seal and checkpoint
        // stages, which run after the flush) keeps the batch.
        let survives = !matches!(
            point,
            DiskCrashPoint::BeforeIntents | DiskCrashPoint::AfterIntents
        );
        assert_all_or_nothing(&store, batch_size, survives);
        // Batch ids continue past the recovered log; commits still work.
        store.commit_batch(vec![(o(9), bytes(&[9, 9]))]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The log's byte ranges where a flip may legally degrade to silent
/// all-or-nothing truncation instead of checksum detection: the format
/// magic and each record's length prefix (damage there derails framing
/// before any checksum can be read). Every other byte — record payloads
/// and the checksums themselves — is CRC-protected and a flip *must* be
/// detected.
fn unprotected_ranges(log: &[u8]) -> Vec<std::ops::Range<usize>> {
    let mut ranges: Vec<std::ops::Range<usize>> = Vec::new();
    ranges.push(0..8); // the `CHLOG001` magic
    let mut pos = 8;
    while pos + 4 <= log.len() {
        ranges.push(pos..pos + 4); // this record's length prefix
        let len = u32::from_le_bytes(log[pos..pos + 4].try_into().expect("four bytes")) as usize;
        pos += 4 + len + 4; // len prefix + payload + crc
    }
    ranges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flip one bit anywhere in a log holding a committed-but-not-yet
    /// installed batch. A flip in CRC-protected bytes must fail `open`
    /// with `CorruptLog`; a flip in the framing (magic, length
    /// prefixes) may instead truncate silently, but recovery must then
    /// be all-or-nothing with the batch rolled back and the baseline
    /// intact.
    #[test]
    fn flipped_log_bytes_are_detected_or_rolled_back(
        batch_size in 1u64..=BASELINE_OBJECTS,
        flip_pos_seed in any::<u64>(),
        flip_bit in 0u32..8,
    ) {
        let dir = temp_dir();
        {
            let store = DiskStore::open(&dir).unwrap();
            seed_baseline(&store);
            // Fold the baseline away so the flip always lands in the
            // segment holding the committed-but-uncheckpointed batch.
            store.checkpoint_now().unwrap();
            store
                .commit_batch_with_crash(
                    overwrite_batch(batch_size),
                    DiskCrashPoint::AfterCommitRecord,
                )
                .unwrap_err();
        }
        let log_path = active_segment(&dir);
        let mut log = std::fs::read(&log_path).unwrap();
        let pos = usize::try_from(flip_pos_seed % log.len() as u64).unwrap();
        log[pos] ^= 1 << flip_bit;
        std::fs::write(&log_path, &log).unwrap();
        let framing_damage = unprotected_ranges(&log).iter().any(|r| r.contains(&pos));

        match DiskStore::open(&dir) {
            Err(DiskError::CorruptLog(_)) => {} // detected — always acceptable
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
            Ok(store) => {
                prop_assert!(
                    framing_damage,
                    "flip at byte {pos} hit CRC-protected data but went undetected"
                );
                // Framing damage tears the log at or before the flipped
                // record, which removes the commit marker too: the
                // batch rolls back whole and the baseline survives.
                assert_all_or_nothing(&store, batch_size, false);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deterministic torture matrix: CI sweeps `CHROMA_TORTURE_SEED` over a
/// fixed set of seeds; each seed drives a splitmix64 stream of batch
/// sizes and tear offsets. Recovery is traced, its events must pass the
/// auditor, and fsync latency must appear in the metrics.
#[test]
fn seed_matrix_truncation_torture() {
    let mut state = torture_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0DE;
    for round in 0..16u64 {
        let batch_size = splitmix(&mut state) % BASELINE_OBJECTS + 1;
        let dir = temp_dir();
        {
            let store = DiskStore::open(&dir).unwrap();
            seed_baseline(&store);
            store.checkpoint_now().unwrap();
            store
                .commit_batch_with_crash(
                    overwrite_batch(batch_size),
                    DiskCrashPoint::AfterCommitRecord,
                )
                .unwrap_err();
        }
        let log_path = active_segment(&dir);
        let log = std::fs::read(&log_path).unwrap();
        let cut = usize::try_from(splitmix(&mut state) % (log.len() as u64 + 1)).unwrap();
        std::fs::write(&log_path, &log[..cut]).unwrap();
        let survives = cut == log.len();

        let store = DiskStore::open(&dir).unwrap();
        let bus = Arc::new(EventBus::new());
        let sink = Arc::new(MemorySink::new(10_000));
        bus.add_sink(sink.clone());
        store.install_obs(Obs::new(bus.clone()));

        assert_all_or_nothing(&store, batch_size, survives);
        if survives {
            // Replay installed the batch; the deferred event surfaced
            // when tracing was attached.
            assert_eq!(bus.counter("disk_replay"), 1, "round {round}");
        }

        // A post-recovery commit emits the disk vocabulary and times its
        // fsyncs; an explicit checkpoint then walks the full segment
        // lifecycle (seal → fold → GC) under the same trace.
        store.commit_batch(vec![(o(9), bytes(&[9, 9]))]).unwrap();
        assert_eq!(bus.counter("disk_append"), 1, "round {round}");
        store.checkpoint_now().unwrap();
        assert_eq!(bus.counter("segment_seal"), 1, "round {round}");
        assert_eq!(bus.counter("checkpoint_end"), 1, "round {round}");
        assert!(bus.counter("segment_gc") >= 1, "round {round}");
        assert!(bus.snapshot().histogram("store.fsync_us").is_some());

        // The whole traced recovery + commit is clean under audit.
        assert_eq!(sink.dropped(), 0);
        let report = TraceAuditor::audit_events(&sink.events());
        assert!(report.is_clean(), "round {round} audit failed:\n{report}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Seeded multi-threaded group-commit torture: committer threads race
/// into shared group flushes while one of them injects a crash at each
/// `DiskCrashPoint`. Reopening must recover every batch all-or-nothing
/// (a committer that got `Ok` keeps its whole batch; a crashed one
/// keeps all of it or none), and the combined trace — group flushes,
/// crash, deferred replay, post-recovery commit — must audit clean
/// under R1–R11.
#[test]
fn seed_matrix_group_commit_crash_torture() {
    use std::sync::Barrier;

    const COMMITTERS: u64 = 6;
    let points = [
        DiskCrashPoint::BeforeIntents,
        DiskCrashPoint::AfterIntents,
        DiskCrashPoint::AfterCommitRecord,
        DiskCrashPoint::AfterInstall,
    ];
    let mut state = torture_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6C0A;
    for (round, &point) in points.iter().enumerate() {
        let dir = temp_dir();
        let bus = Arc::new(EventBus::new());
        let sink = Arc::new(MemorySink::new(100_000));
        bus.add_sink(sink.clone());

        let store = Arc::new(DiskStore::open(&dir).unwrap());
        store.install_obs(Obs::new(bus.clone()));
        let crasher = splitmix(&mut state) % COMMITTERS;
        let marker = (splitmix(&mut state) % 0xFF) as u8 + 1;
        let barrier = Arc::new(Barrier::new(COMMITTERS as usize));
        let handles: Vec<_> = (0..COMMITTERS)
            .map(|i| {
                let store = Arc::clone(&store);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    // Two objects per batch, so a torn batch is visible.
                    let updates = vec![
                        (o(100 + 2 * i), bytes(&[i as u8, marker])),
                        (o(101 + 2 * i), bytes(&[i as u8, marker])),
                    ];
                    barrier.wait();
                    if i == crasher {
                        store.commit_batch_with_crash(updates, point)
                    } else {
                        store.commit_batch(updates)
                    }
                })
            })
            .collect();
        let committed: Vec<bool> = handles
            .into_iter()
            .map(|h| match h.join().unwrap() {
                Ok(()) => true,
                Err(DiskError::Crashed(_)) => false,
                Err(e) => panic!("round {round}: unexpected commit error: {e}"),
            })
            .collect();
        assert!(
            !committed[crasher as usize],
            "round {round}: the crashing committer cannot succeed"
        );
        drop(store);

        // Restart: recovery replays into the same trace (the deferred
        // DiskReplay must balance the group-fsynced, unchecked markers
        // for R9).
        let store = DiskStore::open(&dir).unwrap();
        store.install_obs(Obs::new(bus.clone()));
        for i in 0..COMMITTERS {
            let first = store.read(o(100 + 2 * i)).unwrap();
            let second = store.read(o(101 + 2 * i)).unwrap();
            let expect = [i as u8, marker];
            if committed[i as usize] {
                assert_eq!(
                    first.as_deref(),
                    Some(&expect[..]),
                    "round {round}: acknowledged batch {i} lost"
                );
            }
            match (first, second) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.as_ref(), &expect[..], "round {round}: batch {i} torn");
                    assert_eq!(b.as_ref(), &expect[..], "round {round}: batch {i} torn");
                }
                (None, None) => {}
                _ => panic!("round {round}: batch {i} recovered half-installed"),
            }
        }
        // The store is live again and keeps emitting the group-commit
        // vocabulary.
        store.commit_batch(vec![(o(999), bytes(&[9, 9]))]).unwrap();
        assert!(
            bus.counter("disk_group_commit") >= 1,
            "round {round}: no group flush was traced"
        );
        assert!(
            bus.snapshot().histogram("store.group_size").is_some(),
            "round {round}: group sizes not observed"
        );

        assert_eq!(sink.dropped(), 0, "round {round}");
        let report = TraceAuditor::audit_events(&sink.events());
        assert!(report.is_clean(), "round {round} audit failed:\n{report}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
