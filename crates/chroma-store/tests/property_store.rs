//! Property tests for the storage layer: codec round-trips on random
//! data and intentions-list recovery under crashes at every point.

use std::collections::HashMap;

use chroma_base::ObjectId;
use chroma_store::codec::{from_bytes, to_bytes};
use chroma_store::{CommitCrashPoint, StableStore, StoreBytes};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum Tree {
    Leaf(i64),
    Pair(Box<Tree>, Box<Tree>),
    Tagged { label: String, values: Vec<u32> },
    Nothing,
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Tree::Leaf),
        Just(Tree::Nothing),
        (".{0,12}", prop::collection::vec(any::<u32>(), 0..5))
            .prop_map(|(label, values)| Tree::Tagged { label, values }),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| Tree::Pair(Box::new(a), Box::new(b)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_round_trips_random_trees(tree in tree_strategy()) {
        let bytes = to_bytes(&tree).expect("encode");
        let back: Tree = from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, tree);
    }

    #[test]
    fn codec_round_trips_random_maps(
        map in prop::collection::hash_map(".{0,8}", any::<(bool, Option<i32>)>(), 0..16)
    ) {
        let bytes = to_bytes(&map).expect("encode");
        let back: HashMap<String, (bool, Option<i32>)> = from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, map);
    }

    #[test]
    fn codec_rejects_truncations(tree in tree_strategy()) {
        let bytes = to_bytes(&tree).expect("encode");
        if bytes.len() > 1 {
            // Any strict prefix must fail, never panic or loop.
            let cut = bytes.len() / 2;
            prop_assert!(from_bytes::<Tree>(&bytes[..cut]).is_err());
        }
    }

    /// Crash a random subset of batches at random points; after
    /// recovery, exactly the batches that reached their commit record
    /// are installed — each in full.
    #[test]
    fn intentions_recovery_is_all_or_nothing(
        batches in prop::collection::vec(
            (
                prop::collection::vec((0..6u64, any::<u8>()), 1..4),
                prop_oneof![
                    Just(None),
                    Just(Some(CommitCrashPoint::BeforeIntents)),
                    Just(Some(CommitCrashPoint::AfterIntents)),
                    Just(Some(CommitCrashPoint::AfterCommitRecord)),
                    Just(Some(CommitCrashPoint::AfterInstall)),
                ],
            ),
            1..10,
        )
    ) {
        let store = StableStore::new();
        // Model of what must survive: replay writes of batches that
        // reached the commit record, in order.
        let mut model: HashMap<ObjectId, u8> = HashMap::new();
        for (writes, crash) in &batches {
            let updates: Vec<(ObjectId, StoreBytes)> = writes
                .iter()
                .map(|&(o, v)| (ObjectId::from_raw(o), StoreBytes::from(vec![v])))
                .collect();
            let survives = !matches!(
                crash,
                Some(CommitCrashPoint::BeforeIntents) | Some(CommitCrashPoint::AfterIntents)
            );
            let _ = store.commit_batch_with_crash(updates, *crash);
            // A crash interrupts everything after it; recovery completes
            // committed batches. We recover after every batch to model
            // the node coming back before the next one.
            store.recover();
            if survives {
                for &(o, v) in writes {
                    model.insert(ObjectId::from_raw(o), v);
                }
            }
        }
        store.recover(); // idempotent
        for object in 0..6u64 {
            let expected = model
                .get(&ObjectId::from_raw(object))
                .map(|&v| StoreBytes::from(vec![v]));
            prop_assert_eq!(store.read(ObjectId::from_raw(object)), expected);
        }
        prop_assert_eq!(store.log_len(), 0);
    }
}
