//! Property tests for the segmented intentions log: many small
//! segments, interleaved checkpoints, and restarts must behave exactly
//! like one in-memory map — and recovery must replay only the
//! manifest's live suffix (bounded work), never the full history.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chroma_base::ObjectId;
use chroma_obs::{EventBus, MemorySink, Obs, Observable, TraceAuditor};
use chroma_store::{DiskStore, DiskStoreOptions, StoreBytes};
use proptest::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chroma-seg-test-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn o(n: u64) -> ObjectId {
    ObjectId::from_raw(n)
}

/// One scripted step against the store.
#[derive(Clone, Debug)]
enum Step {
    /// Commit `[(object, value)]` pairs (values are derived bytes).
    Commit(Vec<(u64, u8)>),
    /// Force a fold of everything committed so far.
    Checkpoint,
    /// Drop the store and reopen it (a clean restart).
    Reopen,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => proptest::collection::vec((1u64..=24, any::<u8>()), 1..5).prop_map(Step::Commit),
        1 => Just(Step::Checkpoint),
        1 => Just(Step::Reopen),
    ]
}

/// The value bytes a (object, tag) pair commits: big enough that a
/// tiny `segment_bytes` threshold seals constantly, exercising many
/// segments per run.
fn value(object: u64, tag: u8) -> StoreBytes {
    let mut v = vec![object as u8, tag];
    v.extend(std::iter::repeat_n(tag, 24));
    StoreBytes::from(v)
}

fn tiny() -> DiskStoreOptions {
    DiskStoreOptions {
        // Every commit overflows the active segment, so runs cross
        // many seal boundaries.
        segment_bytes: 64,
        auto_checkpoint: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A random script of commits, checkpoints and restarts over a
    /// store sealing every ~64 bytes matches a plain `HashMap` model,
    /// and every restart's replay is bounded by the batches committed
    /// since the last checkpoint — not total history.
    #[test]
    fn multi_segment_script_matches_model(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        let dir = temp_dir();
        let mut store = DiskStore::open_with(&dir, tiny()).unwrap();
        let mut model: std::collections::HashMap<u64, StoreBytes> =
            std::collections::HashMap::new();
        let mut total_batches = 0u64;

        for step in &steps {
            match step {
                Step::Commit(pairs) => {
                    let updates: Vec<(ObjectId, StoreBytes)> = pairs
                        .iter()
                        .map(|&(object, tag)| (o(object), value(object, tag)))
                        .collect();
                    store.commit_batch(updates).unwrap();
                    for &(object, tag) in pairs {
                        model.insert(object, value(object, tag));
                    }
                    total_batches += 1;
                }
                Step::Checkpoint => {
                    store.checkpoint_now().unwrap();
                    prop_assert_eq!(store.checkpoint_backlog(), 0);
                }
                Step::Reopen => {
                    let live_batches = store.checkpoint_backlog();
                    drop(store);
                    store = DiskStore::open_with(&dir, tiny()).unwrap();
                    // Bounded recovery: replay covers the live suffix
                    // only, never the `total_batches` full history.
                    let replayed = store.replay_stats().batches;
                    prop_assert!(
                        replayed <= live_batches,
                        "replayed {replayed} batches but only {live_batches} were uncheckpointed \
                         ({total_batches} committed in total)"
                    );
                }
            }
            // The store always answers like the model, whatever mix of
            // tail, fold and replay currently backs each object.
            for (&object, expect) in &model {
                prop_assert_eq!(
                    store.read(o(object)).unwrap().as_deref(),
                    Some(&expect[..])
                );
            }
        }

        // Final restart: everything survives, and the ids the store
        // reports are exactly the model's keys.
        drop(store);
        let store = DiskStore::open_with(&dir, tiny()).unwrap();
        let mut ids: Vec<u64> = store
        .object_ids()
        .unwrap()
        .into_iter()
        .map(|id| id.as_raw())
        .collect();
        ids.sort_unstable();
        let mut expect: Vec<u64> = model.keys().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(ids, expect);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A traced full segment lifecycle — commits spilling over many seals,
/// a checkpoint folding and GC-ing them, a restart replaying the live
/// suffix — audits clean under R1–R11.
#[test]
fn traced_segment_lifecycle_audits_clean() {
    let dir = temp_dir();
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(100_000));
    bus.add_sink(sink.clone());

    {
        let store = DiskStore::open_with(&dir, tiny()).unwrap();
        store.install_obs(Obs::new(bus.clone()));
        for i in 1..=12u64 {
            store.commit_batch(vec![(o(i), value(i, i as u8))]).unwrap();
        }
        assert!(bus.counter("segment_seal") >= 3, "tiny segments must seal");
        store.checkpoint_now().unwrap();
        assert_eq!(bus.counter("checkpoint_end"), 1);
        assert!(
            bus.counter("segment_gc") >= 3,
            "folded segments must be GC'd"
        );
        // A couple more commits stay in the live suffix for the
        // restart below to replay.
        store.commit_batch(vec![(o(1), value(1, 0xEE))]).unwrap();
        store.commit_batch(vec![(o(2), value(2, 0xEF))]).unwrap();
    }

    let store = DiskStore::open_with(&dir, tiny()).unwrap();
    store.install_obs(Obs::new(bus.clone()));
    assert_eq!(
        store.read(o(1)).unwrap().as_deref(),
        Some(&value(1, 0xEE)[..])
    );
    assert_eq!(
        store.read(o(12)).unwrap().as_deref(),
        Some(&value(12, 12)[..])
    );

    assert_eq!(sink.dropped(), 0);
    let report = TraceAuditor::audit_events(&sink.events());
    assert!(report.is_clean(), "lifecycle audit failed:\n{report}");
    std::fs::remove_dir_all(&dir).ok();
}
