//! A generic crash-surviving append-only log.

use chroma_obs::{EventKind, Obs, ObsCell, Observable};
use parking_lot::Mutex;

/// An append-only log that lives on a node's stable storage.
///
/// Used by the distributed commit protocol for prepare and decision
/// records: a participant that logged `Prepared` before crashing must be
/// able to rediscover its obligation on recovery. In the simulation,
/// "stable" simply means a node crash never clears this structure —
/// contrast [`VolatileStore::crash`](crate::VolatileStore::crash).
///
/// # Examples
///
/// ```
/// use chroma_store::DurableLog;
///
/// let log: DurableLog<&str> = DurableLog::new();
/// log.append("prepared t1");
/// log.append("commit t1");
/// assert_eq!(log.entries(), vec!["prepared t1", "commit t1"]);
/// ```
#[derive(Debug)]
pub struct DurableLog<T> {
    records: Mutex<Vec<T>>,
    obs: ObsCell,
}

impl<T> Default for DurableLog<T> {
    fn default() -> Self {
        DurableLog {
            records: Mutex::new(Vec::new()),
            obs: ObsCell::new(),
        }
    }
}

impl<T> DurableLog<T> {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        DurableLog::default()
    }

    /// Appends a record; the append is atomic and durable.
    pub fn append(&self, record: T) {
        self.records.lock().push(record);
        self.obs.get().emit(EventKind::WalAppend { records: 1 });
    }

    /// Returns the number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Returns `true` if the log holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Truncates the log (all obligations recorded in it are resolved).
    pub fn truncate(&self) {
        self.records.lock().clear();
    }

    /// Removes the records for which `keep` returns `false`.
    pub fn retain(&self, keep: impl FnMut(&T) -> bool) {
        self.records.lock().retain(keep);
    }
}

impl<T> Observable for DurableLog<T> {
    /// Installs an observability handle; appends emit `WalAppend`.
    fn install_obs(&self, obs: Obs) {
        self.obs.set(obs);
    }
}

impl<T: Clone> DurableLog<T> {
    /// Returns a snapshot of all records in append order.
    #[must_use]
    pub fn entries(&self) -> Vec<T> {
        self.records.lock().clone()
    }

    /// Returns the most recent record matching `pred`, if any.
    #[must_use]
    pub fn rfind(&self, pred: impl FnMut(&&T) -> bool) -> Option<T> {
        self.records.lock().iter().rev().find(pred).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_preserves_order() {
        let log = DurableLog::new();
        log.append(1);
        log.append(2);
        log.append(3);
        assert_eq!(log.entries(), vec![1, 2, 3]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn rfind_finds_latest_match() {
        let log = DurableLog::new();
        log.append(("t1", "prepared"));
        log.append(("t1", "commit"));
        let last = log.rfind(|(txn, _)| *txn == "t1").unwrap();
        assert_eq!(last.1, "commit");
    }

    #[test]
    fn retain_and_truncate() {
        let log = DurableLog::new();
        log.append(1);
        log.append(2);
        log.retain(|&r| r > 1);
        assert_eq!(log.entries(), vec![2]);
        log.truncate();
        assert!(log.is_empty());
    }
}
