//! The volatile (crash-losable) half of a node's storage.

use std::collections::HashMap;

use chroma_base::ObjectId;
use parking_lot::RwLock;

use crate::StoreBytes;

/// In-memory object states: the working copies actions read and write.
///
/// A [`crash`](VolatileStore::crash) wipes everything, modelling the
/// paper's assumption that "all of the data stored on volatile storage is
/// lost when a crash occurs". After a crash, the owning node re-populates
/// working state lazily from its [`StableStore`](crate::StableStore).
///
/// # Examples
///
/// ```
/// use chroma_base::ObjectId;
/// use chroma_store::{StoreBytes, VolatileStore};
///
/// let store = VolatileStore::new();
/// let o = ObjectId::from_raw(9);
/// store.write(o, StoreBytes::from(vec![1]));
/// assert!(store.read(o).is_some());
/// store.crash();
/// assert!(store.read(o).is_none());
/// ```
#[derive(Debug, Default)]
pub struct VolatileStore {
    states: RwLock<HashMap<ObjectId, StoreBytes>>,
}

impl VolatileStore {
    /// Creates an empty volatile store.
    #[must_use]
    pub fn new() -> Self {
        VolatileStore::default()
    }

    /// Returns the current state of `object`, if present.
    #[must_use]
    pub fn read(&self, object: ObjectId) -> Option<StoreBytes> {
        self.states.read().get(&object).cloned()
    }

    /// Sets the state of `object`, returning the previous state if any.
    pub fn write(&self, object: ObjectId, state: StoreBytes) -> Option<StoreBytes> {
        self.states.write().insert(object, state)
    }

    /// Removes `object`, returning its state if it was present.
    pub fn remove(&self, object: ObjectId) -> Option<StoreBytes> {
        self.states.write().remove(&object)
    }

    /// Returns `true` if `object` has a state.
    #[must_use]
    pub fn contains(&self, object: ObjectId) -> bool {
        self.states.read().contains_key(&object)
    }

    /// Returns the identifiers of all stored objects, unordered.
    #[must_use]
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.states.read().keys().copied().collect()
    }

    /// Returns the number of stored objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.read().len()
    }

    /// Returns `true` if no objects are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.read().is_empty()
    }

    /// Drops every state: the node crashed.
    pub fn crash(&self) {
        self.states.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn write_read_remove() {
        let store = VolatileStore::new();
        assert!(store.write(o(1), StoreBytes::from(vec![1])).is_none());
        assert_eq!(
            store.write(o(1), StoreBytes::from(vec![2])).as_deref(),
            Some(&[1u8][..])
        );
        assert_eq!(store.read(o(1)).as_deref(), Some(&[2u8][..]));
        assert_eq!(store.remove(o(1)).as_deref(), Some(&[2u8][..]));
        assert!(store.read(o(1)).is_none());
    }

    #[test]
    fn crash_clears_everything() {
        let store = VolatileStore::new();
        store.write(o(1), StoreBytes::from(vec![1]));
        store.write(o(2), StoreBytes::from(vec![2]));
        assert_eq!(store.len(), 2);
        store.crash();
        assert!(store.is_empty());
        assert!(!store.contains(o(1)));
    }

    #[test]
    fn object_ids_lists_all() {
        let store = VolatileStore::new();
        store.write(o(1), StoreBytes::from(vec![1]));
        store.write(o(2), StoreBytes::from(vec![2]));
        let mut ids = store.object_ids();
        ids.sort();
        assert_eq!(ids, vec![o(1), o(2)]);
    }
}
