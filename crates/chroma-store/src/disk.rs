//! A disk-backed stable store: the same intentions-list protocol as
//! [`StableStore`](crate::StableStore), persisted to a real directory
//! as a **segmented intentions log** under a tiny manifest.
//!
//! The in-memory [`StableStore`] *models* stable storage for simulation
//! and fault-injection; `DiskStore` *is* stable storage: updates go
//! through a write-ahead intentions log that is fsynced before the
//! commit marker, and [`DiskStore::open`] replays the log — completing
//! committed batches and discarding uncommitted ones — so a process
//! crash at any point leaves an all-or-nothing outcome.
//!
//! # Segments and the manifest
//!
//! The log is a sequence of immutable *segments*. Appends go to the
//! single active segment; when it passes
//! [`DiskStoreOptions::segment_bytes`] it is *sealed*: a fresh segment
//! file is created and fsynced, and the `MANIFEST` file — the
//! authoritative, ordered list of live segments — is atomically
//! rewritten (write temp, fsync, rename, fsync directory) to include
//! it. A segment is in the manifest before any commit lands in it, and
//! a batch's intents and marker never span segments (seals happen only
//! between group flushes), so every segment carries a self-contained
//! set of committed batches.
//!
//! # Checkpointing and GC
//!
//! Object installs are **off the commit path**. A committed batch's
//! states are published to an in-memory tail map (reads consult it
//! first); a background checkpointer thread folds fully-committed
//! sealed segments into `objects/` — write-temp + rename per object,
//! then one `objects/` directory fsync — and commits the fold by
//! rewriting the manifest without them. Only then are the segment
//! files deleted, so GC always trails the checkpoint watermark: a
//! crash anywhere leaves either segments the manifest still owns
//! (recovery re-replays them, idempotently) or orphan files the
//! manifest never meant (swept on open, never replayed).
//!
//! Recovery therefore replays **exactly the manifest's live suffix**,
//! segment by segment through a bounded-buffer reader, then collapses
//! to a single fresh active segment — replay work is bounded by what
//! was committed since the last checkpoint, not by history.
//!
//! # Group commit
//!
//! Concurrent committers do not serialise through two fsyncs each.
//! Arriving batches join a *pending group*; the first arrival becomes
//! the leader and drains the whole queue, appending every batch's
//! intents, paying **one** intents-fsync, appending one commit marker
//! *per batch* (so the commit point stays per-batch and recovery stays
//! all-or-nothing for each), then paying **one** marker-fsync for the
//! lot. Followers park on a condvar until the leader posts their
//! batch's outcome. Under contention the amortised fsync cost per
//! batch approaches 2/N; a lone committer pays exactly the old two.
//! Each flushed group emits a `DiskGroupCommit` event and feeds the
//! `store.group_size` histogram.
//!
//! # Log format
//!
//! Every segment opens with the 8-byte magic `CHLOG001`; each record
//! is then framed `[len: u32 LE][payload][crc32: u32 LE]`, the
//! checksum taken over length prefix and payload (CRC-32/IEEE, zlib
//! convention). A complete record whose checksum mismatches is
//! corruption within the committed prefix and fails `open`; an
//! incomplete record at the tail is a torn append and is discarded.
//! A pre-segment store (a single `log` file, with or without the
//! magic) is still opened: its committed batches are folded into
//! `objects/` once and the directory is migrated to the manifest
//! layout.
//!
//! Layout inside the store directory:
//!
//! ```text
//! store/
//! ├── MANIFEST              the ordered live-segment list (atomic
//! │                         temp + rename + dir-fsync)
//! ├── segments/
//! │   └── seg-<seq>.log     CRC-framed intentions (magic CHLOG001)
//! └── objects/
//!     └── o<id>.bin         checkpointed state of each object
//! ```

use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use chroma_base::ObjectId;
use chroma_obs::{EventKind, Obs, ObsCell, Observable};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};

use crate::codec;
use crate::crc32::crc32;
use crate::StoreBytes;

/// Magic prefix identifying the checksummed log format.
const LOG_MAGIC: &[u8; 8] = b"CHLOG001";

/// First line of the `MANIFEST` file.
const MANIFEST_MAGIC: &str = "CHMAN001";

/// Errors from the disk store.
#[derive(Debug)]
#[non_exhaustive]
pub enum DiskError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The log or manifest contained a record that failed to decode or
    /// checksum (corruption past the last valid record is tolerated
    /// and truncated; this is corruption *within* the committed
    /// prefix).
    CorruptLog(String),
    /// A fault-injection commit stopped at the requested crash point
    /// ([`DiskStore::commit_batch_with_crash`]); the directory is left
    /// exactly as a process crash there would leave it.
    Crashed(DiskCrashPoint),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "disk store I/O failure: {e}"),
            DiskError::CorruptLog(what) => write!(f, "corrupt intentions log: {what}"),
            DiskError::Crashed(point) => write!(f, "simulated crash at {point:?}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io(e) => Some(e),
            DiskError::CorruptLog(_) | DiskError::Crashed(_) => None,
        }
    }
}

/// Where [`DiskStore::commit_batch_with_crash`] abandons the commit,
/// mirroring [`CommitCrashPoint`](crate::CommitCrashPoint) on the
/// in-memory model store. The store is left on disk exactly as a
/// process crash at that point would leave it; re-`open`ing runs
/// recovery.
///
/// Because committers share group flushes, an injected crash fails the
/// *whole* group (every batch sharing the flush gets
/// [`DiskError::Crashed`]) and poisons the store: subsequent commits
/// fail too, as they would against a dead process.
///
/// The seal and checkpoint points force the corresponding maintenance
/// step right after the batch commits, then die inside it — the batch
/// itself is durable at all of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskCrashPoint {
    /// Before any intent reaches the log: the batch simply never
    /// happened.
    BeforeIntents,
    /// After the intents are appended and fsynced but before the
    /// commit marker: recovery must discard the batch.
    AfterIntents,
    /// After the commit marker is fsynced (the commit point) but
    /// before the committed states are published to the in-memory
    /// tail: recovery must complete the batch.
    AfterCommitRecord,
    /// After the committed states are published to the tail (the end
    /// of the commit path): recovery re-installs idempotently.
    AfterInstall,
    /// Mid-seal: the next segment file exists and is synced, but the
    /// manifest still ends at the old active segment — the new file is
    /// an orphan recovery must sweep, never replay.
    SealBeforeManifest,
    /// After a seal completed (the manifest lists the new active
    /// segment).
    AfterSeal,
    /// Mid-checkpoint: folded states are installed in `objects/`, but
    /// the manifest still lists the folded segments — recovery
    /// re-replays them idempotently.
    CheckpointBeforeManifest,
    /// After the manifest dropped the folded segments but before their
    /// files were deleted: the files are orphans recovery must sweep
    /// without replaying.
    CheckpointBeforeGc,
}

/// Commit-protocol stage order, for picking the earliest injected
/// crash in a group.
fn crash_stage(point: DiskCrashPoint) -> u8 {
    match point {
        DiskCrashPoint::BeforeIntents => 0,
        DiskCrashPoint::AfterIntents => 1,
        DiskCrashPoint::AfterCommitRecord => 2,
        DiskCrashPoint::AfterInstall => 3,
        DiskCrashPoint::SealBeforeManifest => 4,
        DiskCrashPoint::AfterSeal => 5,
        DiskCrashPoint::CheckpointBeforeManifest => 6,
        DiskCrashPoint::CheckpointBeforeGc => 7,
    }
}

impl From<io::Error> for DiskError {
    fn from(e: io::Error) -> Self {
        DiskError::Io(e)
    }
}

/// Tuning knobs for [`DiskStore::open_with`].
#[derive(Clone, Copy, Debug)]
pub struct DiskStoreOptions {
    /// Seal the active segment once its record payload passes this
    /// many bytes.
    pub segment_bytes: u64,
    /// Run the background checkpointer thread. Disable for tests and
    /// benchmarks that want deterministic, explicit
    /// [`DiskStore::checkpoint_now`] calls.
    pub auto_checkpoint: bool,
}

impl Default for DiskStoreOptions {
    fn default() -> Self {
        DiskStoreOptions {
            segment_bytes: 1 << 20,
            auto_checkpoint: true,
        }
    }
}

/// What [`DiskStore::open`] replayed from the manifest's live suffix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Committed batches (re)installed.
    pub batches: u64,
    /// Log records decoded (committed or not).
    pub records: u64,
    /// Object states installed into `objects/`.
    pub objects: u64,
}

/// One framed record in the on-disk intentions log.
#[derive(Debug, Serialize, Deserialize)]
enum DiskRecord {
    Intent {
        batch: u64,
        object: u64,
        state: Vec<u8>,
    },
    Commit {
        batch: u64,
    },
}

/// A batch waiting in the pending group for a leader to flush it.
struct PendingBatch {
    id: u64,
    updates: Vec<(ObjectId, StoreBytes)>,
    crash: Option<DiskCrashPoint>,
}

/// How a flushed batch fared — clonable so one flush outcome fans out
/// to every follower in the group.
#[derive(Clone)]
enum GroupOutcome {
    Done,
    Crashed(DiskCrashPoint),
    Io(String),
    Corrupt(String),
}

impl GroupOutcome {
    fn into_result(self) -> Result<(), DiskError> {
        match self {
            GroupOutcome::Done => Ok(()),
            GroupOutcome::Crashed(point) => Err(DiskError::Crashed(point)),
            GroupOutcome::Io(msg) => Err(DiskError::Io(io::Error::other(msg))),
            GroupOutcome::Corrupt(msg) => Err(DiskError::CorruptLog(msg)),
        }
    }
}

/// The pending-group state committers coordinate through.
struct GroupState {
    /// Next batch id to hand out.
    next_batch: u64,
    /// Batches enqueued and not yet flushed.
    queue: Vec<PendingBatch>,
    /// Flush outcomes awaiting pickup, by batch id.
    results: HashMap<u64, GroupOutcome>,
    /// A leader is currently draining the queue.
    leader_active: bool,
    /// An injected crash killed the store; every later commit fails.
    poisoned: Option<DiskCrashPoint>,
}

impl std::fmt::Debug for GroupState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupState")
            .field("next_batch", &self.next_batch)
            .field("queued", &self.queue.len())
            .field("leader_active", &self.leader_active)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

/// One live segment's bookkeeping.
#[derive(Clone, Copy, Debug)]
struct SegmentInfo {
    seq: u64,
    /// Batches committed into this segment.
    batches: u64,
    /// Record payload bytes appended (past the magic).
    bytes: u64,
    /// Highest batch id committed into this segment.
    max_batch: u64,
}

/// Segment + manifest state. The group-commit leader holds this across
/// a flush; the checkpointer takes it briefly to rewrite the manifest.
#[derive(Debug)]
struct WalState {
    /// Live segments in manifest order; the last is the active one.
    segments: Vec<SegmentInfo>,
    /// Append handle to the active segment.
    active: File,
}

/// Checkpointer wakeup state.
#[derive(Debug)]
struct CkptState {
    shutdown: bool,
    kicks: u64,
}

/// Everything the store and its checkpointer thread share.
#[derive(Debug)]
struct Shared {
    dir: PathBuf,
    opts: DiskStoreOptions,
    /// Group-commit coordination: queue, outcomes, leader election.
    group: Mutex<GroupState>,
    /// Followers park here until the leader posts their outcome.
    group_changed: Condvar,
    wal: Mutex<WalState>,
    /// Committed-but-not-yet-checkpointed newest state per object,
    /// tagged with the committing batch id.
    tail: Mutex<HashMap<u64, (u64, StoreBytes)>>,
    /// Serialises checkpoints (background thread vs `checkpoint_now`).
    ckpt_run: Mutex<()>,
    ckpt: Mutex<CkptState>,
    /// Wakes the checkpointer on seal or shutdown.
    ckpt_signal: Condvar,
    /// Batches committed but not yet folded behind the watermark.
    backlog: AtomicU64,
    /// Fsyncs paid on the active segment (two per flushed group).
    log_fsyncs: AtomicU64,
    /// Directory fsyncs (manifest renames, segment creation, object
    /// installs).
    dir_fsyncs: AtomicU64,
    obs: ObsCell,
    /// Replay stats from `open`, kept for inspection.
    recovered: ReplayStats,
    /// Replay stats held until tracing is installed — recovery runs
    /// before any bus can exist.
    pending_replay: Mutex<Option<ReplayStats>>,
}

/// A crash-safe object store on the local filesystem.
///
/// # Examples
///
/// ```
/// use chroma_base::ObjectId;
/// use chroma_store::{DiskStore, StoreBytes};
///
/// # fn main() -> Result<(), chroma_store::DiskError> {
/// let dir = std::env::temp_dir().join(format!("chroma-doc-{}", std::process::id()));
/// let store = DiskStore::open(&dir)?;
/// let o = ObjectId::from_raw(1);
/// store.commit_batch(vec![(o, StoreBytes::from(vec![7]))])?;
///
/// // Re-open (as after a process restart): the state is still there.
/// drop(store);
/// let store = DiskStore::open(&dir)?;
/// assert_eq!(store.read(o)?.as_deref(), Some(&[7u8][..]));
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DiskStore {
    shared: Arc<Shared>,
    /// Background checkpointer, joined on drop.
    checkpointer: Option<JoinHandle<()>>,
}

impl DiskStore {
    /// Opens (creating if necessary) a store in `dir` with default
    /// options, running crash recovery on the manifest's live suffix.
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption within a live segment's committed
    /// prefix.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DiskError> {
        Self::open_with(dir, DiskStoreOptions::default())
    }

    /// [`open`](DiskStore::open) with explicit [`DiskStoreOptions`].
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption within a live segment's committed
    /// prefix.
    pub fn open_with(dir: impl AsRef<Path>, opts: DiskStoreOptions) -> Result<Self, DiskError> {
        let dir = dir.as_ref().to_path_buf();
        let recovered = recover(&dir)?;
        let shared = Arc::new(Shared {
            dir,
            opts,
            group: Mutex::new(GroupState {
                next_batch: recovered.max_batch + 1,
                queue: Vec::new(),
                results: HashMap::new(),
                leader_active: false,
                poisoned: None,
            }),
            group_changed: Condvar::new(),
            wal: Mutex::new(WalState {
                segments: vec![recovered.active],
                active: recovered.active_file,
            }),
            tail: Mutex::new(HashMap::new()),
            ckpt_run: Mutex::new(()),
            ckpt: Mutex::new(CkptState {
                shutdown: false,
                kicks: 0,
            }),
            ckpt_signal: Condvar::new(),
            backlog: AtomicU64::new(0),
            log_fsyncs: AtomicU64::new(0),
            dir_fsyncs: AtomicU64::new(recovered.dir_fsyncs),
            obs: ObsCell::new(),
            recovered: recovered.stats,
            pending_replay: Mutex::new((recovered.stats.records > 0).then_some(recovered.stats)),
        });
        let checkpointer = if opts.auto_checkpoint {
            let thread_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("chroma-checkpointer".into())
                    .spawn(move || checkpointer_loop(&thread_shared))
                    .map_err(DiskError::Io)?,
            )
        } else {
            None
        };
        Ok(DiskStore {
            shared,
            checkpointer,
        })
    }

    /// Total fsyncs paid on the active segment since `open` — two per
    /// flushed group, so `log_fsync_count() / commits` is the
    /// amortised cost group commit exists to shrink. Seal, manifest
    /// and install fsyncs are not counted (see
    /// [`dir_fsync_count`](DiskStore::dir_fsync_count)).
    #[must_use]
    pub fn log_fsync_count(&self) -> u64 {
        self.shared.log_fsyncs.load(Ordering::Relaxed)
    }

    /// Directory fsyncs paid since `open`: after every manifest
    /// rename, segment-file creation, and batch of object installs —
    /// the metadata syncs that make renames durable across power loss.
    #[must_use]
    pub fn dir_fsync_count(&self) -> u64 {
        self.shared.dir_fsyncs.load(Ordering::Relaxed)
    }

    /// Batches currently queued behind the group-commit leader — the
    /// instantaneous depth of the follower queue, 0 when the log is
    /// idle.
    #[must_use]
    pub fn group_queue_depth(&self) -> u64 {
        self.shared.group.lock().queue.len() as u64
    }

    /// Batches committed but not yet folded into `objects/` behind the
    /// checkpoint watermark — the recovery replay debt a crash right
    /// now would pay.
    #[must_use]
    pub fn checkpoint_backlog(&self) -> u64 {
        self.shared.backlog.load(Ordering::Relaxed)
    }

    /// What `open` replayed from the manifest's live suffix (zeros for
    /// a fresh or fully-checkpointed store).
    #[must_use]
    pub fn replay_stats(&self) -> ReplayStats {
        self.shared.recovered
    }

    /// The manifest's live segment files for the store at `dir`,
    /// oldest first — the last is the active segment. Works without an
    /// open store (e.g. against a crashed directory); empty if no
    /// manifest exists yet.
    ///
    /// # Errors
    ///
    /// I/O failures, or a corrupt manifest.
    pub fn live_segment_paths(dir: impl AsRef<Path>) -> Result<Vec<PathBuf>, DiskError> {
        let dir = dir.as_ref();
        let seqs = read_manifest(dir)?.unwrap_or_default();
        Ok(seqs
            .into_iter()
            .map(|seq| dir.join("segments").join(segment_file_name(seq)))
            .collect())
    }

    /// Reads the newest committed state of `object` — from the
    /// in-memory tail if the batch is not yet checkpointed, else from
    /// `objects/`.
    ///
    /// # Errors
    ///
    /// I/O failures other than not-found.
    pub fn read(&self, object: ObjectId) -> Result<Option<StoreBytes>, DiskError> {
        if let Some((_, state)) = self.shared.tail.lock().get(&object.as_raw()) {
            return Ok(Some(state.clone()));
        }
        match fs::read(self.shared.object_path(object)) {
            Ok(bytes) => Ok(Some(StoreBytes::from(bytes))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Returns `true` if `object` has a committed state.
    #[must_use]
    pub fn contains(&self, object: ObjectId) -> bool {
        if self.shared.tail.lock().contains_key(&object.as_raw()) {
            return true;
        }
        self.shared.object_path(object).exists()
    }

    /// Returns the ids of all committed objects (checkpointed or still
    /// in the tail), unordered.
    ///
    /// # Errors
    ///
    /// I/O failures listing the objects directory.
    pub fn object_ids(&self) -> Result<Vec<ObjectId>, DiskError> {
        let mut ids: HashSet<u64> = self.shared.tail.lock().keys().copied().collect();
        for entry in fs::read_dir(self.shared.dir.join("objects"))? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(raw) = name
                .strip_prefix('o')
                .and_then(|rest| rest.strip_suffix(".bin"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                ids.insert(raw);
            }
        }
        Ok(ids.into_iter().map(ObjectId::from_raw).collect())
    }

    /// Atomically commits a batch of updates: intents are appended and
    /// fsynced, the commit marker is appended and fsynced (the commit
    /// point), then the states are published to the in-memory tail —
    /// installs into `objects/` happen later, on the checkpointer.
    /// Concurrent callers share those fsyncs via group commit (see the
    /// module docs); each batch keeps its own commit marker, so
    /// atomicity is still per-batch. An empty batch is vacuously
    /// durable and pays no fsyncs at all.
    ///
    /// # Errors
    ///
    /// I/O failures; on error before the commit marker the batch is
    /// guaranteed absent after recovery.
    pub fn commit_batch(&self, updates: Vec<(ObjectId, StoreBytes)>) -> Result<(), DiskError> {
        self.shared.commit_batch_inner(updates, None)
    }

    /// [`commit_batch`](DiskStore::commit_batch), abandoned at `crash`
    /// for fault-injection tests. Returns [`DiskError::Crashed`] with
    /// the directory left exactly as a process crash there would leave
    /// it; the store is poisoned (later commits fail like calls into a
    /// dead process) and any batch sharing the group flush crashes
    /// with it. Re-[`open`](DiskStore::open)ing the directory runs
    /// recovery. Seal and checkpoint points force the corresponding
    /// maintenance step after the commit and die inside it.
    ///
    /// # Errors
    ///
    /// Always [`DiskError::Crashed`] unless a real I/O failure strikes
    /// first.
    pub fn commit_batch_with_crash(
        &self,
        updates: Vec<(ObjectId, StoreBytes)>,
        crash: DiskCrashPoint,
    ) -> Result<(), DiskError> {
        self.shared.commit_batch_inner(updates, Some(crash))
    }

    /// Seals the active segment (if it holds any batches) and folds
    /// every sealed segment into `objects/` synchronously. Returns
    /// whether anything was folded. Mostly for tests and benchmarks;
    /// with [`DiskStoreOptions::auto_checkpoint`] the background
    /// thread does this on its own.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`DiskError::Crashed`] on a poisoned store.
    pub fn checkpoint_now(&self) -> Result<bool, DiskError> {
        let shared = &self.shared;
        if let Some(point) = shared.group.lock().poisoned {
            return Err(DiskError::Crashed(point));
        }
        {
            let mut wal = shared.wal.lock();
            if wal.segments.last().is_some_and(|active| active.batches > 0) {
                let obs = shared.obs.get();
                shared.seal_active(&mut wal, None, &obs)?;
            }
        }
        shared.checkpoint_inner(None)
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        if let Some(handle) = self.checkpointer.take() {
            self.shared.ckpt.lock().shutdown = true;
            self.shared.ckpt_signal.notify_all();
            let _ = handle.join();
        }
    }
}

impl Observable for DiskStore {
    /// Installs a tracing handle. Fsync latency flows into the
    /// `store.fsync_us` histogram, group sizes into
    /// `store.group_size`, and log/segment activity is emitted as
    /// `DiskAppend`/`DiskGroupCommit`/`SegmentSeal`/`CheckpointBegin`/
    /// `CheckpointEnd`/`SegmentGc` events; if `open` replayed the
    /// live suffix, the deferred `DiskReplay` event is emitted now.
    fn install_obs(&self, obs: Obs) {
        self.shared.obs.set(obs.clone());
        if let Some(stats) = self.shared.pending_replay.lock().take() {
            obs.emit(EventKind::DiskReplay {
                batches: stats.batches,
                objects: stats.objects,
            });
        }
    }
}

/// The background checkpointer: waits for seals, folds sealed
/// segments, drains once more on shutdown so restarts replay little.
fn checkpointer_loop(shared: &Shared) {
    loop {
        {
            let mut st = shared.ckpt.lock();
            while !st.shutdown && st.kicks == 0 {
                shared.ckpt_signal.wait(&mut st);
            }
            if st.shutdown {
                break;
            }
            st.kicks = 0;
        }
        if shared.checkpoint_inner(None).is_err() {
            // A real I/O failure in the background: leave the segments
            // in place (recovery will fold them) and stop
            // checkpointing; commits stay durable without us.
            return;
        }
    }
    let _ = shared.checkpoint_inner(None);
}

impl Shared {
    fn object_path(&self, object: ObjectId) -> PathBuf {
        self.dir
            .join("objects")
            .join(format!("o{}.bin", object.as_raw()))
    }

    fn commit_batch_inner(
        &self,
        updates: Vec<(ObjectId, StoreBytes)>,
        crash: Option<DiskCrashPoint>,
    ) -> Result<(), DiskError> {
        let mut group = self.group.lock();
        if let Some(point) = group.poisoned {
            return Err(DiskError::Crashed(point));
        }
        if updates.is_empty() && crash.is_none() {
            // Vacuously durable: nothing needs logging, so the batch
            // must not pay (or make a whole group pay) any fsyncs.
            return Ok(());
        }
        let id = group.next_batch;
        group.next_batch += 1;
        group.queue.push(PendingBatch { id, updates, crash });

        if group.leader_active {
            // Follower: a leader is flushing; it will drain our batch
            // in its next group and post the outcome.
            loop {
                if let Some(outcome) = group.results.remove(&id) {
                    return outcome.into_result();
                }
                self.group_changed.wait(&mut group);
            }
        }

        // Leader: drain groups until the queue stays empty.
        group.leader_active = true;
        while !group.queue.is_empty() {
            let drained = std::mem::take(&mut group.queue);
            drop(group);
            let flushed = match self.flush_group(&drained) {
                Ok(()) => GroupOutcome::Done,
                Err(DiskError::Crashed(point)) => GroupOutcome::Crashed(point),
                Err(DiskError::Io(e)) => GroupOutcome::Io(e.to_string()),
                Err(DiskError::CorruptLog(msg)) => GroupOutcome::Corrupt(msg),
            };
            group = self.group.lock();
            if let GroupOutcome::Crashed(point) = flushed {
                group.poisoned = Some(point);
            }
            for batch in &drained {
                group.results.insert(batch.id, flushed.clone());
            }
            if let Some(point) = group.poisoned {
                // The "process" died mid-flush: batches that queued up
                // behind us die with it, un-flushed.
                let orphaned = std::mem::take(&mut group.queue);
                for batch in orphaned {
                    group.results.insert(batch.id, GroupOutcome::Crashed(point));
                }
            }
            self.group_changed.notify_all();
        }
        group.leader_active = false;
        let outcome = group
            .results
            .remove(&id)
            .expect("leader's own batch outcome was posted");
        drop(group);
        outcome.into_result()
    }

    /// Flushes one drained group: all intents, one fsync, one commit
    /// marker per batch, one fsync, publish to the tail, seal the
    /// active segment if it is full. Injected crashes take effect at
    /// the *earliest* stage requested by any batch in the group.
    #[allow(clippy::too_many_lines)]
    fn flush_group(&self, group: &[PendingBatch]) -> Result<(), DiskError> {
        let obs = self.obs.get();
        let crash = group
            .iter()
            .filter_map(|b| b.crash)
            .min_by_key(|p| crash_stage(*p));
        if crash == Some(DiskCrashPoint::BeforeIntents) {
            return Err(DiskError::Crashed(DiskCrashPoint::BeforeIntents));
        }

        let mut wal = self.wal.lock();
        // 1-2. Log every batch's intents, fsync once; then every
        // batch's commit marker, fsync once (the group's commit point,
        // inside the active segment).
        let mut batch_bytes = vec![0u64; group.len()];
        for (i, batch) in group.iter().enumerate() {
            for (object, state) in &batch.updates {
                batch_bytes[i] += append_record(
                    &mut wal.active,
                    &DiskRecord::Intent {
                        batch: batch.id,
                        object: object.as_raw(),
                        state: state.to_vec(),
                    },
                )?;
            }
        }
        self.log_fsync(&wal.active, &obs)?;
        if crash == Some(DiskCrashPoint::AfterIntents) {
            return Err(DiskError::Crashed(DiskCrashPoint::AfterIntents));
        }
        for (i, batch) in group.iter().enumerate() {
            batch_bytes[i] +=
                append_record(&mut wal.active, &DiskRecord::Commit { batch: batch.id })?;
        }
        self.log_fsync(&wal.active, &obs)?;
        let mut records = 0u64;
        let mut bytes = 0u64;
        for (i, batch) in group.iter().enumerate() {
            let batch_records = batch.updates.len() as u64 + 1;
            records += batch_records;
            bytes += batch_bytes[i];
            obs.emit(EventKind::DiskAppend {
                records: batch_records,
                bytes: batch_bytes[i],
            });
        }
        obs.emit(EventKind::DiskGroupCommit {
            batches: group.len() as u64,
            records,
            bytes,
        });
        obs.observe("store.group_size", group.len() as u64);
        {
            let info = wal.segments.last_mut().expect("live list never empty");
            info.batches += group.len() as u64;
            info.bytes += bytes;
            info.max_batch = group.last().expect("group is non-empty").id;
        }
        if crash == Some(DiskCrashPoint::AfterCommitRecord) {
            return Err(DiskError::Crashed(DiskCrashPoint::AfterCommitRecord));
        }

        // 3. Publish committed state to the in-memory tail; the
        // checkpointer folds it into objects/ off the commit path.
        {
            let mut tail = self.tail.lock();
            for batch in group {
                for (object, state) in &batch.updates {
                    tail.insert(object.as_raw(), (batch.id, state.clone()));
                }
            }
        }
        self.backlog
            .fetch_add(group.len() as u64, Ordering::Relaxed);
        if crash == Some(DiskCrashPoint::AfterInstall) {
            return Err(DiskError::Crashed(DiskCrashPoint::AfterInstall));
        }

        // 4. Seal when the active segment is full (an injected seal or
        // checkpoint crash forces one so the point is reachable).
        let forced = matches!(
            crash,
            Some(
                DiskCrashPoint::SealBeforeManifest
                    | DiskCrashPoint::AfterSeal
                    | DiskCrashPoint::CheckpointBeforeManifest
                    | DiskCrashPoint::CheckpointBeforeGc
            )
        );
        let full = wal
            .segments
            .last()
            .is_some_and(|active| active.bytes >= self.opts.segment_bytes);
        let mut sealed = false;
        if forced || full {
            let seal_crash = crash.filter(|p| {
                matches!(
                    p,
                    DiskCrashPoint::SealBeforeManifest | DiskCrashPoint::AfterSeal
                )
            });
            self.seal_active(&mut wal, seal_crash, &obs)?;
            sealed = true;
        }
        drop(wal);
        if sealed {
            self.kick_checkpointer();
        }
        if let Some(point) = crash.filter(|p| {
            matches!(
                p,
                DiskCrashPoint::CheckpointBeforeManifest | DiskCrashPoint::CheckpointBeforeGc
            )
        }) {
            // Die inside the forced checkpoint; the batch itself is
            // already durable.
            return match self.checkpoint_inner(Some(point)) {
                Ok(_) => Err(DiskError::Crashed(point)),
                Err(e) => Err(e),
            };
        }
        Ok(())
    }

    /// Seals the active segment: create + fsync the next segment file,
    /// fsync the segments directory, then commit it into the manifest.
    /// The new segment is in the manifest *before* any record lands in
    /// it.
    fn seal_active(
        &self,
        wal: &mut WalState,
        crash: Option<DiskCrashPoint>,
        obs: &Obs,
    ) -> Result<(), DiskError> {
        let next_seq = wal.segments.last().expect("live list never empty").seq + 1;
        let segments_dir = self.dir.join("segments");
        let mut file = File::create(segments_dir.join(segment_file_name(next_seq)))?;
        file.write_all(LOG_MAGIC)?;
        file.sync_all()?;
        self.fsync_dir_counted(&segments_dir)?;
        if crash == Some(DiskCrashPoint::SealBeforeManifest) {
            return Err(DiskError::Crashed(DiskCrashPoint::SealBeforeManifest));
        }
        let seqs: Vec<u64> = wal
            .segments
            .iter()
            .map(|s| s.seq)
            .chain([next_seq])
            .collect();
        self.write_manifest_counted(&seqs)?;
        let old = *wal.segments.last().expect("live list never empty");
        wal.segments.push(SegmentInfo {
            seq: next_seq,
            batches: 0,
            bytes: 0,
            max_batch: 0,
        });
        wal.active = file;
        obs.emit(EventKind::SegmentSeal {
            segment: old.seq,
            batches: old.batches,
            bytes: old.bytes,
        });
        if crash == Some(DiskCrashPoint::AfterSeal) {
            return Err(DiskError::Crashed(DiskCrashPoint::AfterSeal));
        }
        Ok(())
    }

    /// Folds every sealed segment into `objects/` and garbage-collects
    /// it behind the checkpoint watermark. The manifest rewrite is the
    /// fold's commit point: a crash before it re-replays (idempotent),
    /// a crash after it leaves only orphan files (swept, not
    /// replayed).
    fn checkpoint_inner(&self, crash: Option<DiskCrashPoint>) -> Result<bool, DiskError> {
        let _run = self.ckpt_run.lock();
        if self.group.lock().poisoned.is_some() {
            // A crashed "process" does no more disk work.
            return Ok(false);
        }
        let obs = self.obs.get();
        let folds: Vec<SegmentInfo> = {
            let wal = self.wal.lock();
            wal.segments[..wal.segments.len() - 1].to_vec()
        };
        if folds.is_empty() {
            // An injected checkpoint crash still dies here even with
            // nothing to fold.
            return match crash {
                Some(point) => Err(DiskError::Crashed(point)),
                None => Ok(false),
            };
        }
        let batches: u64 = folds.iter().map(|s| s.batches).sum();
        let watermark = folds.iter().map(|s| s.max_batch).max().unwrap_or(0);
        obs.emit(EventKind::CheckpointBegin {
            segments: folds.len() as u64,
            batches,
        });
        // Install the newest tail state of every object the folded
        // batches cover. Newer-than-watermark states stay in the tail:
        // their batches are still in the live suffix.
        let covered: Vec<(u64, StoreBytes)> = self
            .tail
            .lock()
            .iter()
            .filter(|&(_, &(batch, _))| batch <= watermark)
            .map(|(object, (_, state))| (*object, state.clone()))
            .collect();
        let objects_dir = self.dir.join("objects");
        for (object, state) in &covered {
            install_object(&objects_dir, *object, state)?;
        }
        if !covered.is_empty() {
            self.fsync_dir_counted(&objects_dir)?;
        }
        if crash == Some(DiskCrashPoint::CheckpointBeforeManifest) {
            return Err(DiskError::Crashed(DiskCrashPoint::CheckpointBeforeManifest));
        }
        let upto = folds.last().expect("folds is non-empty").seq;
        {
            let mut wal = self.wal.lock();
            wal.segments.retain(|s| s.seq > upto);
            let seqs: Vec<u64> = wal.segments.iter().map(|s| s.seq).collect();
            self.write_manifest_counted(&seqs)?;
        }
        obs.emit(EventKind::CheckpointEnd {
            upto,
            batches,
            objects: covered.len() as u64,
        });
        if crash == Some(DiskCrashPoint::CheckpointBeforeGc) {
            return Err(DiskError::Crashed(DiskCrashPoint::CheckpointBeforeGc));
        }
        let segments_dir = self.dir.join("segments");
        for seg in &folds {
            fs::remove_file(segments_dir.join(segment_file_name(seg.seq)))?;
            obs.emit(EventKind::SegmentGc {
                segment: seg.seq,
                bytes: seg.bytes,
            });
        }
        self.tail.lock().retain(|_, (batch, _)| *batch > watermark);
        self.backlog.fetch_sub(batches, Ordering::Relaxed);
        Ok(true)
    }

    fn kick_checkpointer(&self) {
        self.ckpt.lock().kicks += 1;
        self.ckpt_signal.notify_all();
    }

    fn write_manifest_counted(&self, seqs: &[u64]) -> Result<(), DiskError> {
        let mut fsyncs = 0u64;
        let result = write_manifest(&self.dir, seqs, &mut fsyncs);
        self.dir_fsyncs.fetch_add(fsyncs, Ordering::Relaxed);
        result
    }

    fn fsync_dir_counted(&self, dir: &Path) -> Result<(), DiskError> {
        let mut fsyncs = 0u64;
        let result = fsync_dir(dir, &mut fsyncs);
        self.dir_fsyncs.fetch_add(fsyncs, Ordering::Relaxed);
        result
    }

    /// An intentions-log fsync: counted (for the amortised-cost
    /// metric) and timed.
    fn log_fsync(&self, file: &File, obs: &Obs) -> Result<(), DiskError> {
        self.log_fsyncs.fetch_add(1, Ordering::Relaxed);
        fsync_timed(file, obs)
    }
}

/// `sync_all` with its latency recorded into `store.fsync_us`.
fn fsync_timed(file: &File, obs: &Obs) -> Result<(), DiskError> {
    let started = obs.enabled().then(Instant::now);
    file.sync_all()?;
    if let Some(started) = started {
        obs.observe(
            "store.fsync_us",
            u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
        );
    }
    Ok(())
}

fn append_record(log: &mut File, record: &DiskRecord) -> Result<u64, DiskError> {
    let bytes = codec::to_bytes(record).map_err(|e| DiskError::CorruptLog(e.to_string()))?;
    let len =
        u32::try_from(bytes.len()).map_err(|_| DiskError::CorruptLog("record too large".into()))?;
    let mut frame = Vec::with_capacity(bytes.len() + 8);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&bytes);
    let crc = crc32(&frame);
    log.write_all(&frame)?;
    log.write_all(&crc.to_le_bytes())?;
    Ok(frame.len() as u64 + 4)
}

fn segment_file_name(seq: u64) -> String {
    format!("seg-{seq:08}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")
        .and_then(|rest| rest.strip_suffix(".log"))
        .and_then(|digits| digits.parse::<u64>().ok())
}

/// Fsyncs a directory so renames/creations/removals inside it survive
/// power loss, counting into `fsyncs`.
fn fsync_dir(dir: &Path, fsyncs: &mut u64) -> Result<(), DiskError> {
    File::open(dir)?.sync_all()?;
    *fsyncs += 1;
    Ok(())
}

/// Atomically replaces the manifest: write `MANIFEST.tmp`, fsync it,
/// rename over `MANIFEST`, fsync the directory.
fn write_manifest(dir: &Path, seqs: &[u64], fsyncs: &mut u64) -> Result<(), DiskError> {
    let mut text = String::with_capacity(16 + seqs.len() * 16);
    text.push_str(MANIFEST_MAGIC);
    text.push('\n');
    for seq in seqs {
        text.push_str("seg ");
        text.push_str(&seq.to_string());
        text.push('\n');
    }
    let tmp = dir.join("MANIFEST.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, dir.join("MANIFEST"))?;
    fsync_dir(dir, fsyncs)
}

/// Parses the manifest's live segment list; `Ok(None)` when no
/// manifest exists (a fresh or pre-segment store).
fn read_manifest(dir: &Path) -> Result<Option<Vec<u64>>, DiskError> {
    let raw = match fs::read_to_string(dir.join("MANIFEST")) {
        Ok(raw) => raw,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut lines = raw.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(DiskError::CorruptLog("manifest missing magic".into()));
    }
    let mut seqs: Vec<u64> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let seq = line
            .strip_prefix("seg ")
            .and_then(|digits| digits.parse::<u64>().ok())
            .ok_or_else(|| DiskError::CorruptLog(format!("bad manifest line {line:?}")))?;
        if seqs.last().is_some_and(|&last| last >= seq) {
            return Err(DiskError::CorruptLog(
                "manifest segments out of order".into(),
            ));
        }
        seqs.push(seq);
    }
    Ok(Some(seqs))
}

/// Installs one object state: write-temp, fsync, rename. The caller
/// batches the `objects/` directory fsync.
fn install_object(objects_dir: &Path, object: u64, state: &[u8]) -> Result<(), DiskError> {
    let final_path = objects_dir.join(format!("o{object}.bin"));
    let tmp_path = final_path.with_extension("tmp");
    {
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(state)?;
        tmp.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    Ok(())
}

/// Streams CRC-framed records out of a log file while holding at most
/// one frame in memory — recovery cost is bounded by the largest
/// record, not the log length.
struct FrameReader {
    src: io::BufReader<File>,
    checksummed: bool,
    /// Bytes left in the file; a frame promising more is a torn tail.
    remaining: u64,
    /// Reusable frame buffer: `[len: u32 LE][payload]`, the
    /// checksummed span.
    frame: Vec<u8>,
}

impl FrameReader {
    /// Opens `path`, consuming the format magic if present (its
    /// absence selects the pre-checksum `[len][payload]` framing).
    /// `Ok(None)` means the file does not exist.
    fn open(path: &Path) -> Result<Option<FrameReader>, DiskError> {
        let file = match File::open(path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut remaining = file.metadata()?.len();
        let mut src = io::BufReader::new(file);
        let mut magic = [0u8; 8];
        let checksummed = remaining >= LOG_MAGIC.len() as u64 && {
            src.read_exact(&mut magic)?;
            if &magic == LOG_MAGIC {
                remaining -= LOG_MAGIC.len() as u64;
                true
            } else {
                src.seek(io::SeekFrom::Start(0))?;
                false
            }
        };
        Ok(Some(FrameReader {
            src,
            checksummed,
            remaining,
            frame: Vec::new(),
        }))
    }

    /// The next record; `Ok(None)` at a clean EOF or a torn tail.
    fn next(&mut self) -> Result<Option<DiskRecord>, DiskError> {
        let mut len_bytes = [0u8; 4];
        if self.remaining < 4 {
            return Ok(None); // torn tail (or clean EOF)
        }
        self.src.read_exact(&mut len_bytes)?;
        let len = u64::from(u32::from_le_bytes(len_bytes));
        let trailer = if self.checksummed { 4 } else { 0 };
        if self.remaining < 4 + len + trailer {
            return Ok(None); // torn record: discard from here
        }
        self.remaining -= 4 + len + trailer;
        self.frame.clear();
        self.frame.extend_from_slice(&len_bytes);
        self.frame.resize(4 + len as usize, 0);
        self.src.read_exact(&mut self.frame[4..])?;
        if self.checksummed {
            let mut crc_bytes = [0u8; 4];
            self.src.read_exact(&mut crc_bytes)?;
            let stored = u32::from_le_bytes(crc_bytes);
            let computed = crc32(&self.frame);
            if stored != computed {
                return Err(DiskError::CorruptLog(format!(
                    "record checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )));
            }
        }
        codec::from_bytes::<DiskRecord>(&self.frame[4..])
            .map(Some)
            .map_err(|e| DiskError::CorruptLog(e.to_string()))
    }
}

/// Replays one log file in two streaming passes: collect the committed
/// batch set, then install committed intents. Returns the number of
/// records decoded in the file.
fn replay_file(
    path: &Path,
    objects_dir: &Path,
    stats: &mut ReplayStats,
    max_batch: &mut u64,
) -> Result<u64, DiskError> {
    let Some(mut reader) = FrameReader::open(path)? else {
        return Ok(0);
    };
    let mut committed: HashSet<u64> = HashSet::new();
    let mut records = 0u64;
    while let Some(record) = reader.next()? {
        records += 1;
        match record {
            DiskRecord::Commit { batch } => {
                committed.insert(batch);
                *max_batch = (*max_batch).max(batch);
            }
            DiskRecord::Intent { batch, .. } => {
                *max_batch = (*max_batch).max(batch);
            }
        }
    }
    if !committed.is_empty() {
        let mut reader = FrameReader::open(path)?.expect("file existed a moment ago");
        while let Some(record) = reader.next()? {
            if let DiskRecord::Intent {
                batch,
                object,
                state,
            } = record
            {
                if committed.contains(&batch) {
                    install_object(objects_dir, object, &state)?;
                    stats.objects += 1;
                }
            }
        }
    }
    stats.batches += committed.len() as u64;
    stats.records += records;
    Ok(records)
}

/// What `recover` hands back to `open_with`.
struct Recovered {
    active: SegmentInfo,
    active_file: File,
    max_batch: u64,
    stats: ReplayStats,
    dir_fsyncs: u64,
}

/// Crash recovery: sweep temp orphans, replay exactly the manifest's
/// live suffix (or migrate a pre-segment `log`), sweep segment files
/// the manifest never committed to, then collapse to a single fresh
/// active segment.
#[allow(clippy::too_many_lines)]
fn recover(dir: &Path) -> Result<Recovered, DiskError> {
    let objects_dir = dir.join("objects");
    let segments_dir = dir.join("segments");
    fs::create_dir_all(&objects_dir)?;
    fs::create_dir_all(&segments_dir)?;
    let mut dir_fsyncs = 0u64;

    // Sweep leftovers from a crash mid-install or mid-manifest-write:
    // temp files are invisible to the protocol until renamed, so they
    // must never be read — or reported by `object_ids`.
    for entry in fs::read_dir(&objects_dir)? {
        let entry = entry?;
        if entry.file_name().to_string_lossy().ends_with(".tmp") {
            fs::remove_file(entry.path())?;
        }
    }
    if dir.join("MANIFEST.tmp").exists() {
        fs::remove_file(dir.join("MANIFEST.tmp"))?;
    }

    let manifest = read_manifest(dir)?;
    let legacy_log = dir.join("log");
    let mut stats = ReplayStats::default();
    let mut max_batch = 0u64;
    let live: Vec<u64> = match &manifest {
        Some(seqs) => {
            // The manifest is authoritative. A legacy `log` alongside
            // it is a stale leftover (e.g. resurrected bytes from the
            // pre-segment format's unsynced truncate): never replay
            // it.
            if legacy_log.exists() {
                fs::remove_file(&legacy_log)?;
            }
            seqs.clone()
        }
        None => {
            // Pre-segment store: stream the old single log once, fold
            // it into objects/, then adopt the manifest layout below.
            if legacy_log.exists() {
                replay_file(&legacy_log, &objects_dir, &mut stats, &mut max_batch)?;
            }
            Vec::new()
        }
    };

    // Replay exactly the live suffix, oldest segment first.
    let mut last_segment_records = 0u64;
    for &seq in &live {
        let path = segments_dir.join(segment_file_name(seq));
        if !path.exists() {
            return Err(DiskError::CorruptLog(format!(
                "manifest lists segment {seq} but its file is missing"
            )));
        }
        last_segment_records = replay_file(&path, &objects_dir, &mut stats, &mut max_batch)?;
    }
    if stats.objects > 0 {
        fsync_dir(&objects_dir, &mut dir_fsyncs)?;
    }

    // Segment files the manifest does not own are dead by definition:
    // a seal that never reached the manifest, or a fold's GC that
    // never finished. Sweep, never replay.
    for entry in fs::read_dir(&segments_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let keep =
            parse_segment_name(&name.to_string_lossy()).is_some_and(|seq| live.contains(&seq));
        if !keep {
            fs::remove_file(entry.path())?;
        }
    }

    // Fast path: a lone, empty active segment can simply be reused —
    // restarting an idle store must not churn the manifest.
    if manifest.is_some() && live.len() == 1 && last_segment_records == 0 && stats.records == 0 {
        let seq = live[0];
        let active_file = OpenOptions::new()
            .append(true)
            .open(segments_dir.join(segment_file_name(seq)))?;
        return Ok(Recovered {
            active: SegmentInfo {
                seq,
                batches: 0,
                bytes: 0,
                max_batch: 0,
            },
            active_file,
            max_batch,
            stats,
            dir_fsyncs,
        });
    }

    // Collapse: everything replayed is in objects/ now, so restart on
    // a single fresh active segment — the next recovery replays only
    // what commits after this point.
    let fresh = live.iter().max().copied().unwrap_or(0) + 1;
    let mut active_file = File::create(segments_dir.join(segment_file_name(fresh)))?;
    active_file.write_all(LOG_MAGIC)?;
    active_file.sync_all()?;
    fsync_dir(&segments_dir, &mut dir_fsyncs)?;
    write_manifest(dir, &[fresh], &mut dir_fsyncs)?;
    for &seq in &live {
        fs::remove_file(segments_dir.join(segment_file_name(seq)))?;
    }
    if manifest.is_none() && legacy_log.exists() {
        fs::remove_file(&legacy_log)?;
        fsync_dir(dir, &mut dir_fsyncs)?;
    }
    Ok(Recovered {
        active: SegmentInfo {
            seq: fresh,
            batches: 0,
            bytes: 0,
            max_batch: 0,
        },
        active_file,
        max_batch,
        stats,
        dir_fsyncs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chroma-disk-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }
    fn bytes(v: &[u8]) -> StoreBytes {
        StoreBytes::from(v.to_vec())
    }

    /// Options for tests that want deterministic seals/checkpoints:
    /// seal after every commit, no background thread.
    fn manual(segment_bytes: u64) -> DiskStoreOptions {
        DiskStoreOptions {
            segment_bytes,
            auto_checkpoint: false,
        }
    }

    /// Hand-writes a pre-segment `log` file in the checksummed format
    /// (the migration input).
    fn write_log(dir: &Path, records: &[DiskRecord]) {
        fs::create_dir_all(dir.join("objects")).unwrap();
        let mut log = File::create(dir.join("log")).unwrap();
        log.write_all(LOG_MAGIC).unwrap();
        for record in records {
            append_record(&mut log, record).unwrap();
        }
    }

    #[test]
    fn round_trip_across_reopen() {
        let dir = temp_dir();
        {
            let store = DiskStore::open(&dir).unwrap();
            store
                .commit_batch(vec![(o(1), bytes(b"one")), (o(2), bytes(b"two"))])
                .unwrap();
        }
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(store.read(o(2)).unwrap().as_deref(), Some(&b"two"[..]));
        assert!(store.contains(o(1)));
        assert!(store.read(o(9)).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn later_batches_overwrite() {
        let dir = temp_dir();
        let store = DiskStore::open(&dir).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"a"))]).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"b"))]).unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"b"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_log_without_install_replays_on_open() {
        // Simulate a crash after the commit marker but before install:
        // hand-write the log, then open.
        let dir = temp_dir();
        write_log(
            &dir,
            &[
                DiskRecord::Intent {
                    batch: 3,
                    object: 7,
                    state: b"recovered".to_vec(),
                },
                DiskRecord::Commit { batch: 3 },
            ],
        );
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(
            store.read(o(7)).unwrap().as_deref(),
            Some(&b"recovered"[..])
        );
        assert_eq!(
            store.replay_stats(),
            ReplayStats {
                batches: 1,
                records: 2,
                objects: 1,
            }
        );
        // Batch ids continue past the recovered one.
        store.commit_batch(vec![(o(8), bytes(b"next"))]).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_intents_are_discarded_on_open() {
        let dir = temp_dir();
        write_log(
            &dir,
            &[DiskRecord::Intent {
                batch: 1,
                object: 5,
                state: b"never committed".to_vec(),
            }],
        );
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.read(o(5)).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_log_tail_is_tolerated() {
        let dir = temp_dir();
        write_log(
            &dir,
            &[
                DiskRecord::Intent {
                    batch: 1,
                    object: 1,
                    state: b"full".to_vec(),
                },
                DiskRecord::Commit { batch: 1 },
            ],
        );
        // A torn append: length prefix promising more bytes than exist.
        let mut log = OpenOptions::new()
            .append(true)
            .open(dir.join("log"))
            .unwrap();
        log.write_all(&100u32.to_le_bytes()).unwrap();
        log.write_all(b"short").unwrap();
        drop(log);
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"full"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_log_without_magic_still_recovers() {
        // A log written before checksums: plain [len][payload] frames,
        // no magic. The versioned decode must replay it.
        let dir = temp_dir();
        fs::create_dir_all(dir.join("objects")).unwrap();
        let mut log = File::create(dir.join("log")).unwrap();
        for record in [
            &DiskRecord::Intent {
                batch: 2,
                object: 4,
                state: b"old format".to_vec(),
            },
            &DiskRecord::Commit { batch: 2 },
        ] {
            let payload = codec::to_bytes(record).unwrap();
            log.write_all(&(payload.len() as u32).to_le_bytes())
                .unwrap();
            log.write_all(&payload).unwrap();
        }
        drop(log);
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(
            store.read(o(4)).unwrap().as_deref(),
            Some(&b"old format"[..])
        );
        // The store is migrated to the manifest layout: the single log
        // is gone, a manifest with one fresh segment owns the dir.
        assert!(!dir.join("log").exists());
        assert_eq!(DiskStore::live_segment_paths(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_byte_in_committed_record_is_detected() {
        let dir = temp_dir();
        write_log(
            &dir,
            &[
                DiskRecord::Intent {
                    batch: 1,
                    object: 1,
                    state: b"protected".to_vec(),
                },
                DiskRecord::Commit { batch: 1 },
            ],
        );
        let log_path = dir.join("log");
        let mut raw = fs::read(&log_path).unwrap();
        // Flip one payload byte inside the first record (past magic +
        // length prefix).
        let target = LOG_MAGIC.len() + 4 + 2;
        raw[target] ^= 0x40;
        fs::write(&log_path, &raw).unwrap();
        match DiskStore::open(&dir) {
            Err(DiskError::CorruptLog(msg)) => {
                assert!(msg.contains("checksum"), "{msg}");
            }
            other => panic!("corruption not detected: {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_batch_is_fine() {
        let dir = temp_dir();
        let store = DiskStore::open(&dir).unwrap();
        store.commit_batch(Vec::new()).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_commit_batch_pays_no_fsyncs() {
        // Bugfix: an empty batch used to join a group and pay (or make
        // a whole group pay) both fsyncs for nothing.
        let dir = temp_dir();
        let store = DiskStore::open(&dir).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"real"))]).unwrap();
        let before = store.log_fsync_count();
        store.commit_batch(Vec::new()).unwrap();
        store.commit_batch(Vec::new()).unwrap();
        assert_eq!(
            store.log_fsync_count(),
            before,
            "empty batches must not fsync"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_commits_share_fsyncs_and_all_survive() {
        const THREADS: u64 = 8;
        let dir = temp_dir();
        let store = Arc::new(DiskStore::open(&dir).unwrap());
        let barrier = Arc::new(Barrier::new(THREADS as usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let store = Arc::clone(&store);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    store
                        .commit_batch(vec![(o(i), bytes(&[i as u8, 0xAB]))])
                        .unwrap();
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        // Every batch flushed in some group: between 1 group (all
        // shared) and one group per batch.
        let fsyncs = store.log_fsync_count();
        assert!(
            (2..=2 * THREADS).contains(&fsyncs),
            "implausible log fsync count {fsyncs}"
        );
        drop(store);
        let store = DiskStore::open(&dir).unwrap();
        for i in 0..THREADS {
            assert_eq!(
                store.read(o(i)).unwrap().as_deref(),
                Some(&[i as u8, 0xAB][..]),
                "batch {i} lost"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_crash_poisons_the_store() {
        let dir = temp_dir();
        let store = DiskStore::open(&dir).unwrap();
        let err = store
            .commit_batch_with_crash(vec![(o(1), bytes(b"x"))], DiskCrashPoint::AfterIntents)
            .unwrap_err();
        assert!(matches!(
            err,
            DiskError::Crashed(DiskCrashPoint::AfterIntents)
        ));
        // The "process" is dead: later commits fail the same way.
        let err = store.commit_batch(vec![(o(2), bytes(b"y"))]).unwrap_err();
        assert!(matches!(
            err,
            DiskError::Crashed(DiskCrashPoint::AfterIntents)
        ));
        drop(store);
        // Reopening (restart) recovers and revives commits.
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.read(o(1)).unwrap().is_none());
        store.commit_batch(vec![(o(2), bytes(b"y"))]).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_tmp_files_are_swept_on_open() {
        // Bugfix: a crash mid-install leaves o<id>.tmp behind; it must
        // be removed on open and never surface through object_ids.
        let dir = temp_dir();
        fs::create_dir_all(dir.join("objects")).unwrap();
        fs::write(dir.join("objects").join("o5.tmp"), b"torn install").unwrap();
        fs::write(dir.join("MANIFEST.tmp"), b"torn manifest").unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert!(!dir.join("objects").join("o5.tmp").exists());
        assert!(!dir.join("MANIFEST.tmp").exists());
        assert!(store.object_ids().unwrap().is_empty());
        assert!(!store.contains(o(5)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seal_and_checkpoint_fold_and_gc() {
        // segment_bytes: 1 seals after every commit; checkpoint_now
        // folds the sealed segments into objects/ and GCs their files.
        let dir = temp_dir();
        let store = DiskStore::open_with(&dir, manual(1)).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"a"))]).unwrap();
        store.commit_batch(vec![(o(2), bytes(b"b"))]).unwrap();
        assert!(store.checkpoint_backlog() >= 2);
        let sealed_paths = DiskStore::live_segment_paths(&dir).unwrap();
        assert!(sealed_paths.len() >= 2, "commits should have sealed");

        assert!(store.checkpoint_now().unwrap());
        assert_eq!(store.checkpoint_backlog(), 0);
        // Folded into objects/, GC'd from segments/, manifest shrunk
        // to the lone active segment.
        assert!(dir.join("objects").join("o1.bin").exists());
        assert!(dir.join("objects").join("o2.bin").exists());
        let live = DiskStore::live_segment_paths(&dir).unwrap();
        assert_eq!(live.len(), 1);
        let on_disk = fs::read_dir(dir.join("segments")).unwrap().count();
        assert_eq!(on_disk, 1, "folded segment files must be deleted");
        // Reads still serve the right values from objects/.
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"a"[..]));
        assert_eq!(store.read(o(2)).unwrap().as_deref(), Some(&b"b"[..]));
        // Nothing left to fold.
        assert!(!store.checkpoint_now().unwrap());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_preserves_newest_value() {
        // Overwrites across segments: the fold must install the newest
        // committed state, and newer-than-watermark tail entries must
        // survive the prune.
        let dir = temp_dir();
        let store = DiskStore::open_with(&dir, manual(1)).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"v1"))]).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"v2"))]).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"v3"))]).unwrap();
        store.checkpoint_now().unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"v3"[..]));
        assert_eq!(
            fs::read(dir.join("objects").join("o1.bin")).unwrap(),
            b"v3".to_vec()
        );
        drop(store);
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"v3"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lost_truncate_cannot_resurrect_stale_bytes() {
        // Bugfix regression: the old layout truncated the log with an
        // unsynced fs::write, so a crash could resurrect stale log
        // bytes under fresh appends. In the manifest layout the
        // equivalent failure is a GC'd segment file reappearing (its
        // delete never hit disk): the manifest does not list it, so
        // recovery must sweep it, not replay it.
        let dir = temp_dir();
        let store = DiskStore::open_with(&dir, manual(1)).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"stale"))]).unwrap();
        let stale_seg = DiskStore::live_segment_paths(&dir).unwrap()[0].clone();
        let stale_bytes = fs::read(&stale_seg).unwrap();
        store.checkpoint_now().unwrap();
        assert!(!stale_seg.exists(), "checkpoint should have GC'd it");
        store.commit_batch(vec![(o(1), bytes(b"fresh"))]).unwrap();
        drop(store);
        // "Lose" the truncate/delete: the stale segment file comes
        // back, exactly as an unsynced unlink would leave it.
        fs::write(&stale_seg, &stale_bytes).unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"fresh"[..]));
        assert!(!stale_seg.exists(), "unlisted segment must be swept");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_points_on_seal_and_checkpoint_recover() {
        for point in [
            DiskCrashPoint::SealBeforeManifest,
            DiskCrashPoint::AfterSeal,
            DiskCrashPoint::CheckpointBeforeManifest,
            DiskCrashPoint::CheckpointBeforeGc,
        ] {
            let dir = temp_dir();
            let store = DiskStore::open_with(&dir, manual(1 << 20)).unwrap();
            store.commit_batch(vec![(o(1), bytes(b"base"))]).unwrap();
            let err = store
                .commit_batch_with_crash(vec![(o(2), bytes(b"crash"))], point)
                .unwrap_err();
            assert!(
                matches!(err, DiskError::Crashed(p) if p == point),
                "{point:?}: {err:?}"
            );
            assert!(store.checkpoint_now().is_err(), "{point:?}: poisoned");
            drop(store);
            let store = DiskStore::open(&dir).unwrap();
            // All four points sit past the commit point: both batches
            // must survive the crash, whatever the maintenance step
            // was doing.
            assert_eq!(
                store.read(o(1)).unwrap().as_deref(),
                Some(&b"base"[..]),
                "{point:?}"
            );
            assert_eq!(
                store.read(o(2)).unwrap().as_deref(),
                Some(&b"crash"[..]),
                "{point:?}"
            );
            // Recovery collapsed to a coherent manifest: exactly the
            // live segments exist on disk, nothing else.
            let live = DiskStore::live_segment_paths(&dir).unwrap();
            for path in &live {
                assert!(path.exists(), "{point:?}: manifest lists {path:?}");
            }
            assert_eq!(
                fs::read_dir(dir.join("segments")).unwrap().count(),
                live.len(),
                "{point:?}: orphan segment files survived recovery"
            );
            store.commit_batch(vec![(o(3), bytes(b"after"))]).unwrap();
            fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn background_checkpointer_folds_automatically() {
        let dir = temp_dir();
        let store = DiskStore::open_with(
            &dir,
            DiskStoreOptions {
                segment_bytes: 1,
                auto_checkpoint: true,
            },
        )
        .unwrap();
        for i in 0..8 {
            store.commit_batch(vec![(o(i), bytes(&[i as u8]))]).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while store.checkpoint_backlog() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            store.checkpoint_backlog(),
            0,
            "checkpointer never caught up"
        );
        for i in 0..8 {
            assert!(dir.join("objects").join(format!("o{i}.bin")).exists());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_stats_match_live_suffix() {
        // Replay work is bounded by what committed since the last
        // checkpoint, not by history.
        let dir = temp_dir();
        let store = DiskStore::open_with(&dir, manual(1)).unwrap();
        for i in 0..6 {
            store.commit_batch(vec![(o(i), bytes(b"old"))]).unwrap();
        }
        store.checkpoint_now().unwrap();
        for i in 0..3 {
            store
                .commit_batch(vec![(o(100 + i), bytes(b"new"))])
                .unwrap();
        }
        let live = store.checkpoint_backlog();
        assert_eq!(live, 3);
        drop(store);
        let store = DiskStore::open(&dir).unwrap();
        let stats = store.replay_stats();
        assert_eq!(stats.batches, live, "replayed more than the live suffix");
        assert_eq!(stats.objects, 3);
        for i in 0..6 {
            assert_eq!(store.read(o(i)).unwrap().as_deref(), Some(&b"old"[..]));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_fsyncs_cover_install_and_manifest() {
        // Bugfix: installs and manifest renames must be followed by a
        // directory fsync or the rename itself can vanish on power
        // loss. Count them across a seal + checkpoint cycle.
        let dir = temp_dir();
        let store = DiskStore::open_with(&dir, manual(1)).unwrap();
        let before = store.dir_fsync_count();
        store.commit_batch(vec![(o(1), bytes(b"x"))]).unwrap();
        store.checkpoint_now().unwrap();
        let paid = store.dir_fsync_count() - before;
        // At least: segments-dir fsync at seal, dir fsync for the seal
        // manifest, objects-dir fsync for the install, dir fsync for
        // the checkpoint manifest.
        assert!(paid >= 4, "only {paid} directory fsyncs paid");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_reopen_reuses_active_segment() {
        // An idle store must not churn segments/manifest on restart.
        let dir = temp_dir();
        {
            let store = DiskStore::open(&dir).unwrap();
            store.commit_batch(vec![(o(1), bytes(b"v"))]).unwrap();
            store.checkpoint_now().unwrap();
        }
        let live_before = DiskStore::live_segment_paths(&dir).unwrap();
        drop(DiskStore::open(&dir).unwrap());
        let live_after = DiskStore::live_segment_paths(&dir).unwrap();
        assert_eq!(live_before, live_after, "idle reopen churned the manifest");
        fs::remove_dir_all(&dir).ok();
    }
}
