//! A disk-backed stable store: the same intentions-list protocol as
//! [`StableStore`](crate::StableStore), persisted to a real directory.
//!
//! The in-memory [`StableStore`] *models* stable storage for simulation
//! and fault-injection; `DiskStore` *is* stable storage: object states
//! live in one file per object, updates go through a write-ahead
//! intentions log that is fsynced before the commit marker, and
//! [`DiskStore::open`] replays the log — completing committed batches
//! and discarding uncommitted ones — so a process crash at any point
//! leaves an all-or-nothing outcome.
//!
//! Layout inside the store directory:
//!
//! ```text
//! store/
//! ├── log              the intentions log (records framed with lengths)
//! └── objects/
//!     └── o<id>.bin    installed state of each object
//! ```

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::time::Instant;

use chroma_base::ObjectId;
use chroma_obs::{EventKind, Obs, ObsCell};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::codec;
use crate::StoreBytes;

/// Errors from the disk store.
#[derive(Debug)]
#[non_exhaustive]
pub enum DiskError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The log contained a record that failed to decode (corruption
    /// past the last valid record is tolerated and truncated; this is
    /// corruption *within* the committed prefix).
    CorruptLog(String),
    /// A fault-injection commit stopped at the requested crash point
    /// ([`DiskStore::commit_batch_with_crash`]); the directory is left
    /// exactly as a process crash there would leave it.
    Crashed(DiskCrashPoint),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "disk store I/O failure: {e}"),
            DiskError::CorruptLog(what) => write!(f, "corrupt intentions log: {what}"),
            DiskError::Crashed(point) => write!(f, "simulated crash at {point:?}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io(e) => Some(e),
            DiskError::CorruptLog(_) | DiskError::Crashed(_) => None,
        }
    }
}

/// Where [`DiskStore::commit_batch_with_crash`] abandons the commit,
/// mirroring [`CommitCrashPoint`](crate::CommitCrashPoint) on the
/// in-memory model store. The store is left on disk exactly as a
/// process crash at that point would leave it; re-`open`ing runs
/// recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskCrashPoint {
    /// Before any intent reaches the log: the batch simply never
    /// happened.
    BeforeIntents,
    /// After the intents are appended and fsynced but before the
    /// commit marker: recovery must discard the batch.
    AfterIntents,
    /// After the commit marker is fsynced (the commit point) but
    /// before any state is installed: recovery must complete the
    /// batch.
    AfterCommitRecord,
    /// After the states are installed but before the log is
    /// truncated: recovery re-installs idempotently.
    AfterInstall,
}

impl From<io::Error> for DiskError {
    fn from(e: io::Error) -> Self {
        DiskError::Io(e)
    }
}

/// One framed record in the on-disk intentions log.
#[derive(Debug, Serialize, Deserialize)]
enum DiskRecord {
    Intent {
        batch: u64,
        object: u64,
        state: Vec<u8>,
    },
    Commit {
        batch: u64,
    },
}

/// A crash-safe object store on the local filesystem.
///
/// # Examples
///
/// ```
/// use chroma_base::ObjectId;
/// use chroma_store::{DiskStore, StoreBytes};
///
/// # fn main() -> Result<(), chroma_store::DiskError> {
/// let dir = std::env::temp_dir().join(format!("chroma-doc-{}", std::process::id()));
/// let store = DiskStore::open(&dir)?;
/// let o = ObjectId::from_raw(1);
/// store.commit_batch(vec![(o, StoreBytes::from(vec![7]))])?;
///
/// // Re-open (as after a process restart): the state is still there.
/// drop(store);
/// let store = DiskStore::open(&dir)?;
/// assert_eq!(store.read(o)?.as_deref(), Some(&[7u8][..]));
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    /// Serialises commits (one log writer at a time).
    commit_lock: Mutex<u64>, // next batch id
    obs: ObsCell,
    /// Replay stats from `open` (batches, object installs), held until
    /// tracing is installed — recovery runs before any bus can exist.
    pending_replay: Mutex<Option<(u64, u64)>>,
}

impl DiskStore {
    /// Opens (creating if necessary) a store in `dir`, running crash
    /// recovery on the intentions log.
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption within the log's committed prefix.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DiskError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(dir.join("objects"))?;
        let store = DiskStore {
            dir,
            commit_lock: Mutex::new(0),
            obs: ObsCell::new(),
            pending_replay: Mutex::new(None),
        };
        let max_batch = store.recover_log()?;
        *store.commit_lock.lock() = max_batch + 1;
        Ok(store)
    }

    /// Installs a tracing handle. Fsync latency flows into the
    /// `store.fsync_us` histogram and log/install activity is emitted
    /// as `DiskAppend`/`DiskCheckpoint` events; if `open` replayed the
    /// intentions log, the deferred `DiskReplay` event is emitted now.
    pub fn set_obs(&self, obs: Obs) {
        self.obs.set(obs.clone());
        if let Some((batches, objects)) = self.pending_replay.lock().take() {
            obs.emit(EventKind::DiskReplay { batches, objects });
        }
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join("log")
    }

    fn object_path(&self, object: ObjectId) -> PathBuf {
        self.dir
            .join("objects")
            .join(format!("o{}.bin", object.as_raw()))
    }

    /// Reads the installed state of `object`.
    ///
    /// # Errors
    ///
    /// I/O failures other than not-found.
    pub fn read(&self, object: ObjectId) -> Result<Option<StoreBytes>, DiskError> {
        match fs::read(self.object_path(object)) {
            Ok(bytes) => Ok(Some(StoreBytes::from(bytes))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Returns `true` if `object` has an installed state.
    #[must_use]
    pub fn contains(&self, object: ObjectId) -> bool {
        self.object_path(object).exists()
    }

    /// Returns the ids of all installed objects, unordered.
    ///
    /// # Errors
    ///
    /// I/O failures listing the objects directory.
    pub fn object_ids(&self) -> Result<Vec<ObjectId>, DiskError> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(self.dir.join("objects"))? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(raw) = name
                .strip_prefix('o')
                .and_then(|rest| rest.strip_suffix(".bin"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                ids.push(ObjectId::from_raw(raw));
            }
        }
        Ok(ids)
    }

    /// Atomically installs a batch of updates: intents are appended and
    /// fsynced, the commit marker is appended and fsynced (the commit
    /// point), then states are installed via write-to-temp + rename and
    /// the log is truncated.
    ///
    /// # Errors
    ///
    /// I/O failures; on error before the commit marker the batch is
    /// guaranteed absent after recovery.
    pub fn commit_batch(&self, updates: Vec<(ObjectId, StoreBytes)>) -> Result<(), DiskError> {
        self.commit_batch_inner(updates, None)
    }

    /// [`commit_batch`](DiskStore::commit_batch), abandoned at `crash`
    /// for fault-injection tests. Returns [`DiskError::Crashed`] with
    /// the directory left exactly as a process crash there would leave
    /// it; re-[`open`](DiskStore::open)ing the directory runs
    /// recovery.
    ///
    /// # Errors
    ///
    /// Always [`DiskError::Crashed`] unless a real I/O failure strikes
    /// first.
    pub fn commit_batch_with_crash(
        &self,
        updates: Vec<(ObjectId, StoreBytes)>,
        crash: DiskCrashPoint,
    ) -> Result<(), DiskError> {
        self.commit_batch_inner(updates, Some(crash))
    }

    fn commit_batch_inner(
        &self,
        updates: Vec<(ObjectId, StoreBytes)>,
        crash: Option<DiskCrashPoint>,
    ) -> Result<(), DiskError> {
        let mut next_batch = self.commit_lock.lock();
        let batch = *next_batch;
        *next_batch += 1;
        let obs = self.obs.get();

        if crash == Some(DiskCrashPoint::BeforeIntents) {
            return Err(DiskError::Crashed(DiskCrashPoint::BeforeIntents));
        }
        // 1-2. Log intents + commit marker, fsynced.
        let mut log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.log_path())?;
        let mut logged_bytes = 0u64;
        for (object, state) in &updates {
            logged_bytes += Self::append_record(
                &mut log,
                &DiskRecord::Intent {
                    batch,
                    object: object.as_raw(),
                    state: state.to_vec(),
                },
            )?;
        }
        Self::fsync(&log, &obs)?;
        if crash == Some(DiskCrashPoint::AfterIntents) {
            return Err(DiskError::Crashed(DiskCrashPoint::AfterIntents));
        }
        logged_bytes += Self::append_record(&mut log, &DiskRecord::Commit { batch })?;
        Self::fsync(&log, &obs)?; // the commit point
        drop(log);
        obs.emit(EventKind::DiskAppend {
            records: updates.len() as u64 + 1,
            bytes: logged_bytes,
        });
        if crash == Some(DiskCrashPoint::AfterCommitRecord) {
            return Err(DiskError::Crashed(DiskCrashPoint::AfterCommitRecord));
        }

        // 3. Install (idempotent, crash-retryable from the log).
        for (object, state) in &updates {
            self.install(*object, state)?;
        }
        if crash == Some(DiskCrashPoint::AfterInstall) {
            return Err(DiskError::Crashed(DiskCrashPoint::AfterInstall));
        }
        // 4. Truncate the log (every logged batch is installed).
        fs::write(self.log_path(), b"")?;
        obs.emit(EventKind::DiskCheckpoint {
            objects: updates.len() as u64,
        });
        Ok(())
    }

    fn install(&self, object: ObjectId, state: &[u8]) -> Result<(), DiskError> {
        let final_path = self.object_path(object);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(state)?;
            Self::fsync(&tmp, &self.obs.get())?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }

    /// `sync_all` with its latency recorded into `store.fsync_us`.
    fn fsync(file: &File, obs: &Obs) -> Result<(), DiskError> {
        let started = obs.enabled().then(Instant::now);
        file.sync_all()?;
        if let Some(started) = started {
            obs.observe(
                "store.fsync_us",
                u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            );
        }
        Ok(())
    }

    fn append_record(log: &mut File, record: &DiskRecord) -> Result<u64, DiskError> {
        let bytes = codec::to_bytes(record).map_err(|e| DiskError::CorruptLog(e.to_string()))?;
        let len = u32::try_from(bytes.len())
            .map_err(|_| DiskError::CorruptLog("record too large".into()))?;
        log.write_all(&len.to_le_bytes())?;
        log.write_all(&bytes)?;
        Ok(u64::from(len) + 4)
    }

    /// Replays the intentions log: committed batches are (re)installed,
    /// uncommitted intents are discarded, the log is truncated. Returns
    /// the highest batch id seen.
    fn recover_log(&self) -> Result<u64, DiskError> {
        let raw = match fs::read(self.log_path()) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e.into()),
        };
        let mut records = Vec::new();
        let mut cursor = &raw[..];
        loop {
            if cursor.len() < 4 {
                break; // torn tail (crash mid-append): discard
            }
            let mut len_bytes = [0u8; 4];
            (&cursor[..4]).read_exact(&mut len_bytes)?;
            let len = u32::from_le_bytes(len_bytes) as usize;
            if cursor.len() < 4 + len {
                break; // torn record
            }
            match codec::from_bytes::<DiskRecord>(&cursor[4..4 + len]) {
                Ok(record) => records.push(record),
                Err(e) => {
                    // A decodable-length but garbled record inside the
                    // prefix is real corruption.
                    return Err(DiskError::CorruptLog(e.to_string()));
                }
            }
            cursor = &cursor[4 + len..];
        }
        let committed: std::collections::HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                DiskRecord::Commit { batch } => Some(*batch),
                DiskRecord::Intent { .. } => None,
            })
            .collect();
        let mut max_batch = 0;
        let mut installed = 0u64;
        for record in &records {
            if let DiskRecord::Intent {
                batch,
                object,
                state,
            } = record
            {
                max_batch = max_batch.max(*batch);
                if committed.contains(batch) {
                    self.install(ObjectId::from_raw(*object), state)?;
                    installed += 1;
                }
            }
            if let DiskRecord::Commit { batch } = record {
                max_batch = max_batch.max(*batch);
            }
        }
        fs::write(self.log_path(), b"")?;
        if !records.is_empty() {
            // Tracing cannot be installed yet (recovery runs inside
            // `open`); remember the stats for `set_obs`.
            *self.pending_replay.lock() = Some((committed.len() as u64, installed));
        }
        Ok(max_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chroma-disk-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }
    fn bytes(v: &[u8]) -> StoreBytes {
        StoreBytes::from(v.to_vec())
    }

    #[test]
    fn round_trip_across_reopen() {
        let dir = temp_dir();
        {
            let store = DiskStore::open(&dir).unwrap();
            store
                .commit_batch(vec![(o(1), bytes(b"one")), (o(2), bytes(b"two"))])
                .unwrap();
        }
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(store.read(o(2)).unwrap().as_deref(), Some(&b"two"[..]));
        assert!(store.contains(o(1)));
        assert!(store.read(o(9)).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn later_batches_overwrite() {
        let dir = temp_dir();
        let store = DiskStore::open(&dir).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"a"))]).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"b"))]).unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"b"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_log_without_install_replays_on_open() {
        // Simulate a crash after the commit marker but before install:
        // hand-write the log, then open.
        let dir = temp_dir();
        fs::create_dir_all(dir.join("objects")).unwrap();
        let mut log = File::create(dir.join("log")).unwrap();
        DiskStore::append_record(
            &mut log,
            &DiskRecord::Intent {
                batch: 3,
                object: 7,
                state: b"recovered".to_vec(),
            },
        )
        .unwrap();
        DiskStore::append_record(&mut log, &DiskRecord::Commit { batch: 3 }).unwrap();
        drop(log);
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(
            store.read(o(7)).unwrap().as_deref(),
            Some(&b"recovered"[..])
        );
        // Batch ids continue past the recovered one.
        store.commit_batch(vec![(o(8), bytes(b"next"))]).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_intents_are_discarded_on_open() {
        let dir = temp_dir();
        fs::create_dir_all(dir.join("objects")).unwrap();
        let mut log = File::create(dir.join("log")).unwrap();
        DiskStore::append_record(
            &mut log,
            &DiskRecord::Intent {
                batch: 1,
                object: 5,
                state: b"never committed".to_vec(),
            },
        )
        .unwrap();
        drop(log);
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.read(o(5)).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_log_tail_is_tolerated() {
        let dir = temp_dir();
        fs::create_dir_all(dir.join("objects")).unwrap();
        let mut log = File::create(dir.join("log")).unwrap();
        DiskStore::append_record(
            &mut log,
            &DiskRecord::Intent {
                batch: 1,
                object: 1,
                state: b"full".to_vec(),
            },
        )
        .unwrap();
        DiskStore::append_record(&mut log, &DiskRecord::Commit { batch: 1 }).unwrap();
        // A torn append: length prefix promising more bytes than exist.
        log.write_all(&100u32.to_le_bytes()).unwrap();
        log.write_all(b"short").unwrap();
        drop(log);
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"full"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_batch_is_fine() {
        let dir = temp_dir();
        let store = DiskStore::open(&dir).unwrap();
        store.commit_batch(Vec::new()).unwrap();
        fs::remove_dir_all(&dir).ok();
    }
}
