//! A disk-backed stable store: the same intentions-list protocol as
//! [`StableStore`](crate::StableStore), persisted to a real directory.
//!
//! The in-memory [`StableStore`] *models* stable storage for simulation
//! and fault-injection; `DiskStore` *is* stable storage: object states
//! live in one file per object, updates go through a write-ahead
//! intentions log that is fsynced before the commit marker, and
//! [`DiskStore::open`] replays the log — completing committed batches
//! and discarding uncommitted ones — so a process crash at any point
//! leaves an all-or-nothing outcome.
//!
//! # Group commit
//!
//! Concurrent committers do not serialise through two fsyncs each.
//! Arriving batches join a *pending group*; the first arrival becomes
//! the leader and drains the whole queue, appending every batch's
//! intents, paying **one** intents-fsync, appending one commit marker
//! *per batch* (so the commit point stays per-batch and recovery stays
//! all-or-nothing for each), then paying **one** marker-fsync for the
//! lot. Followers park on a condvar until the leader posts their
//! batch's outcome. Under contention the amortised fsync cost per
//! batch approaches 2/N; a lone committer pays exactly the old two.
//! Each flushed group emits a `DiskGroupCommit` event and feeds the
//! `store.group_size` histogram.
//!
//! # Log format
//!
//! The log opens with the 8-byte magic `CHLOG001`; each record is then
//! framed `[len: u32 LE][payload][crc32: u32 LE]`, the checksum taken
//! over length prefix and payload (CRC-32/IEEE, zlib convention). A
//! log without the magic is decoded with the pre-checksum framing
//! (`[len][payload]`), so stores written before the format change
//! still open. A complete record whose checksum mismatches is
//! corruption within the committed prefix and fails `open`; an
//! incomplete record at the tail is a torn append and is discarded.
//!
//! Layout inside the store directory:
//!
//! ```text
//! store/
//! ├── log              the intentions log (magic + checksummed records)
//! └── objects/
//!     └── o<id>.bin    installed state of each object
//! ```

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use chroma_base::ObjectId;
use chroma_obs::{EventKind, Obs, ObsCell, Observable};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};

use crate::codec;
use crate::crc32::crc32;
use crate::StoreBytes;

/// Magic prefix identifying the checksummed log format.
const LOG_MAGIC: &[u8; 8] = b"CHLOG001";

/// Errors from the disk store.
#[derive(Debug)]
#[non_exhaustive]
pub enum DiskError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The log contained a record that failed to decode or checksum
    /// (corruption past the last valid record is tolerated and
    /// truncated; this is corruption *within* the committed prefix).
    CorruptLog(String),
    /// A fault-injection commit stopped at the requested crash point
    /// ([`DiskStore::commit_batch_with_crash`]); the directory is left
    /// exactly as a process crash there would leave it.
    Crashed(DiskCrashPoint),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "disk store I/O failure: {e}"),
            DiskError::CorruptLog(what) => write!(f, "corrupt intentions log: {what}"),
            DiskError::Crashed(point) => write!(f, "simulated crash at {point:?}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io(e) => Some(e),
            DiskError::CorruptLog(_) | DiskError::Crashed(_) => None,
        }
    }
}

/// Where [`DiskStore::commit_batch_with_crash`] abandons the commit,
/// mirroring [`CommitCrashPoint`](crate::CommitCrashPoint) on the
/// in-memory model store. The store is left on disk exactly as a
/// process crash at that point would leave it; re-`open`ing runs
/// recovery.
///
/// Because committers share group flushes, an injected crash fails the
/// *whole* group (every batch sharing the flush gets
/// [`DiskError::Crashed`]) and poisons the store: subsequent commits
/// fail too, as they would against a dead process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskCrashPoint {
    /// Before any intent reaches the log: the batch simply never
    /// happened.
    BeforeIntents,
    /// After the intents are appended and fsynced but before the
    /// commit marker: recovery must discard the batch.
    AfterIntents,
    /// After the commit marker is fsynced (the commit point) but
    /// before any state is installed: recovery must complete the
    /// batch.
    AfterCommitRecord,
    /// After the states are installed but before the log is
    /// truncated: recovery re-installs idempotently.
    AfterInstall,
}

/// Commit-protocol stage order, for picking the earliest injected
/// crash in a group.
fn crash_stage(point: DiskCrashPoint) -> u8 {
    match point {
        DiskCrashPoint::BeforeIntents => 0,
        DiskCrashPoint::AfterIntents => 1,
        DiskCrashPoint::AfterCommitRecord => 2,
        DiskCrashPoint::AfterInstall => 3,
    }
}

impl From<io::Error> for DiskError {
    fn from(e: io::Error) -> Self {
        DiskError::Io(e)
    }
}

/// One framed record in the on-disk intentions log.
#[derive(Debug, Serialize, Deserialize)]
enum DiskRecord {
    Intent {
        batch: u64,
        object: u64,
        state: Vec<u8>,
    },
    Commit {
        batch: u64,
    },
}

/// A batch waiting in the pending group for a leader to flush it.
struct PendingBatch {
    id: u64,
    updates: Vec<(ObjectId, StoreBytes)>,
    crash: Option<DiskCrashPoint>,
}

/// How a flushed batch fared — clonable so one flush outcome fans out
/// to every follower in the group.
#[derive(Clone)]
enum GroupOutcome {
    Done,
    Crashed(DiskCrashPoint),
    Io(String),
    Corrupt(String),
}

impl GroupOutcome {
    fn into_result(self) -> Result<(), DiskError> {
        match self {
            GroupOutcome::Done => Ok(()),
            GroupOutcome::Crashed(point) => Err(DiskError::Crashed(point)),
            GroupOutcome::Io(msg) => Err(DiskError::Io(io::Error::other(msg))),
            GroupOutcome::Corrupt(msg) => Err(DiskError::CorruptLog(msg)),
        }
    }
}

/// The pending-group state committers coordinate through.
struct GroupState {
    /// Next batch id to hand out.
    next_batch: u64,
    /// Batches enqueued and not yet flushed.
    queue: Vec<PendingBatch>,
    /// Flush outcomes awaiting pickup, by batch id.
    results: HashMap<u64, GroupOutcome>,
    /// A leader is currently draining the queue.
    leader_active: bool,
    /// An injected crash killed the store; every later commit fails.
    poisoned: Option<DiskCrashPoint>,
}

/// A crash-safe object store on the local filesystem.
///
/// # Examples
///
/// ```
/// use chroma_base::ObjectId;
/// use chroma_store::{DiskStore, StoreBytes};
///
/// # fn main() -> Result<(), chroma_store::DiskError> {
/// let dir = std::env::temp_dir().join(format!("chroma-doc-{}", std::process::id()));
/// let store = DiskStore::open(&dir)?;
/// let o = ObjectId::from_raw(1);
/// store.commit_batch(vec![(o, StoreBytes::from(vec![7]))])?;
///
/// // Re-open (as after a process restart): the state is still there.
/// drop(store);
/// let store = DiskStore::open(&dir)?;
/// assert_eq!(store.read(o)?.as_deref(), Some(&[7u8][..]));
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    /// Group-commit coordination: queue, outcomes, leader election.
    group: Mutex<GroupState>,
    /// Followers park here until the leader posts their outcome.
    group_changed: Condvar,
    /// Fsyncs paid on the intentions log (two per flushed group).
    log_fsyncs: AtomicU64,
    obs: ObsCell,
    /// Replay stats from `open` (batches, object installs), held until
    /// tracing is installed — recovery runs before any bus can exist.
    pending_replay: Mutex<Option<(u64, u64)>>,
}

impl std::fmt::Debug for GroupState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupState")
            .field("next_batch", &self.next_batch)
            .field("queued", &self.queue.len())
            .field("leader_active", &self.leader_active)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl DiskStore {
    /// Opens (creating if necessary) a store in `dir`, running crash
    /// recovery on the intentions log.
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption within the log's committed prefix.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DiskError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(dir.join("objects"))?;
        let store = DiskStore {
            dir,
            group: Mutex::new(GroupState {
                next_batch: 0,
                queue: Vec::new(),
                results: HashMap::new(),
                leader_active: false,
                poisoned: None,
            }),
            group_changed: Condvar::new(),
            log_fsyncs: AtomicU64::new(0),
            obs: ObsCell::new(),
            pending_replay: Mutex::new(None),
        };
        let max_batch = store.recover_log()?;
        store.group.lock().next_batch = max_batch + 1;
        Ok(store)
    }

    /// Installs a tracing handle. Fsync latency flows into the
    /// `store.fsync_us` histogram, group sizes into
    /// `store.group_size`, and log/install activity is emitted as
    /// `DiskAppend`/`DiskGroupCommit`/`DiskCheckpoint` events; if
    /// `open` replayed the intentions log, the deferred `DiskReplay`
    /// event is emitted now.
    #[deprecated(since = "0.2.0", note = "use `Observable::install_obs` instead")]
    pub fn set_obs(&self, obs: Obs) {
        self.install_obs(obs);
    }

    /// Total fsyncs paid on the intentions log since `open` — two per
    /// flushed group, so `log_fsync_count() / commits` is the
    /// amortised cost group commit exists to shrink. Install-path
    /// fsyncs (per-object temp files) are not counted.
    #[must_use]
    pub fn log_fsync_count(&self) -> u64 {
        self.log_fsyncs.load(Ordering::Relaxed)
    }

    /// Batches currently queued behind the group-commit leader — the
    /// instantaneous depth of the follower queue, 0 when the log is
    /// idle.
    #[must_use]
    pub fn group_queue_depth(&self) -> u64 {
        self.group.lock().queue.len() as u64
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join("log")
    }

    fn object_path(&self, object: ObjectId) -> PathBuf {
        self.dir
            .join("objects")
            .join(format!("o{}.bin", object.as_raw()))
    }

    /// Reads the installed state of `object`.
    ///
    /// # Errors
    ///
    /// I/O failures other than not-found.
    pub fn read(&self, object: ObjectId) -> Result<Option<StoreBytes>, DiskError> {
        match fs::read(self.object_path(object)) {
            Ok(bytes) => Ok(Some(StoreBytes::from(bytes))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Returns `true` if `object` has an installed state.
    #[must_use]
    pub fn contains(&self, object: ObjectId) -> bool {
        self.object_path(object).exists()
    }

    /// Returns the ids of all installed objects, unordered.
    ///
    /// # Errors
    ///
    /// I/O failures listing the objects directory.
    pub fn object_ids(&self) -> Result<Vec<ObjectId>, DiskError> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(self.dir.join("objects"))? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(raw) = name
                .strip_prefix('o')
                .and_then(|rest| rest.strip_suffix(".bin"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                ids.push(ObjectId::from_raw(raw));
            }
        }
        Ok(ids)
    }

    /// Atomically installs a batch of updates: intents are appended and
    /// fsynced, the commit marker is appended and fsynced (the commit
    /// point), then states are installed via write-to-temp + rename and
    /// the log is truncated. Concurrent callers share those fsyncs via
    /// group commit (see the module docs); each batch keeps its own
    /// commit marker, so atomicity is still per-batch.
    ///
    /// # Errors
    ///
    /// I/O failures; on error before the commit marker the batch is
    /// guaranteed absent after recovery.
    pub fn commit_batch(&self, updates: Vec<(ObjectId, StoreBytes)>) -> Result<(), DiskError> {
        self.commit_batch_inner(updates, None)
    }

    /// [`commit_batch`](DiskStore::commit_batch), abandoned at `crash`
    /// for fault-injection tests. Returns [`DiskError::Crashed`] with
    /// the directory left exactly as a process crash there would leave
    /// it; the store is poisoned (later commits fail like calls into a
    /// dead process) and any batch sharing the group flush crashes
    /// with it. Re-[`open`](DiskStore::open)ing the directory runs
    /// recovery.
    ///
    /// # Errors
    ///
    /// Always [`DiskError::Crashed`] unless a real I/O failure strikes
    /// first.
    pub fn commit_batch_with_crash(
        &self,
        updates: Vec<(ObjectId, StoreBytes)>,
        crash: DiskCrashPoint,
    ) -> Result<(), DiskError> {
        self.commit_batch_inner(updates, Some(crash))
    }

    fn commit_batch_inner(
        &self,
        updates: Vec<(ObjectId, StoreBytes)>,
        crash: Option<DiskCrashPoint>,
    ) -> Result<(), DiskError> {
        let mut group = self.group.lock();
        if let Some(point) = group.poisoned {
            return Err(DiskError::Crashed(point));
        }
        let id = group.next_batch;
        group.next_batch += 1;
        group.queue.push(PendingBatch { id, updates, crash });

        if group.leader_active {
            // Follower: a leader is flushing; it will drain our batch
            // in its next group and post the outcome.
            loop {
                if let Some(outcome) = group.results.remove(&id) {
                    return outcome.into_result();
                }
                self.group_changed.wait(&mut group);
            }
        }

        // Leader: drain groups until the queue stays empty.
        group.leader_active = true;
        while !group.queue.is_empty() {
            let drained = std::mem::take(&mut group.queue);
            drop(group);
            let shared = match self.flush_group(&drained) {
                Ok(()) => GroupOutcome::Done,
                Err(DiskError::Crashed(point)) => GroupOutcome::Crashed(point),
                Err(DiskError::Io(e)) => GroupOutcome::Io(e.to_string()),
                Err(DiskError::CorruptLog(msg)) => GroupOutcome::Corrupt(msg),
            };
            group = self.group.lock();
            if let GroupOutcome::Crashed(point) = shared {
                group.poisoned = Some(point);
            }
            for batch in &drained {
                group.results.insert(batch.id, shared.clone());
            }
            if let Some(point) = group.poisoned {
                // The "process" died mid-flush: batches that queued up
                // behind us die with it, un-flushed.
                let orphaned = std::mem::take(&mut group.queue);
                for batch in orphaned {
                    group.results.insert(batch.id, GroupOutcome::Crashed(point));
                }
            }
            self.group_changed.notify_all();
        }
        group.leader_active = false;
        let outcome = group
            .results
            .remove(&id)
            .expect("leader's own batch outcome was posted");
        drop(group);
        outcome.into_result()
    }

    /// Flushes one drained group: all intents, one fsync, one commit
    /// marker per batch, one fsync, install everything, truncate.
    /// Injected crashes take effect at the *earliest* stage requested
    /// by any batch in the group.
    fn flush_group(&self, group: &[PendingBatch]) -> Result<(), DiskError> {
        let obs = self.obs.get();
        let crash = group
            .iter()
            .filter_map(|b| b.crash)
            .min_by_key(|p| crash_stage(*p));
        if crash == Some(DiskCrashPoint::BeforeIntents) {
            return Err(DiskError::Crashed(DiskCrashPoint::BeforeIntents));
        }

        // 1-2. Log every batch's intents, fsync once; then every
        // batch's commit marker, fsync once (the group's commit point).
        let mut log = self.open_log()?;
        let mut batch_bytes = vec![0u64; group.len()];
        for (i, batch) in group.iter().enumerate() {
            for (object, state) in &batch.updates {
                batch_bytes[i] += Self::append_record(
                    &mut log,
                    &DiskRecord::Intent {
                        batch: batch.id,
                        object: object.as_raw(),
                        state: state.to_vec(),
                    },
                )?;
            }
        }
        self.log_fsync(&log, &obs)?;
        if crash == Some(DiskCrashPoint::AfterIntents) {
            return Err(DiskError::Crashed(DiskCrashPoint::AfterIntents));
        }
        for (i, batch) in group.iter().enumerate() {
            batch_bytes[i] +=
                Self::append_record(&mut log, &DiskRecord::Commit { batch: batch.id })?;
        }
        self.log_fsync(&log, &obs)?;
        drop(log);
        let mut records = 0u64;
        let mut bytes = 0u64;
        for (i, batch) in group.iter().enumerate() {
            let batch_records = batch.updates.len() as u64 + 1;
            records += batch_records;
            bytes += batch_bytes[i];
            obs.emit(EventKind::DiskAppend {
                records: batch_records,
                bytes: batch_bytes[i],
            });
        }
        obs.emit(EventKind::DiskGroupCommit {
            batches: group.len() as u64,
            records,
            bytes,
        });
        obs.observe("store.group_size", group.len() as u64);
        if crash == Some(DiskCrashPoint::AfterCommitRecord) {
            return Err(DiskError::Crashed(DiskCrashPoint::AfterCommitRecord));
        }

        // 3. Install (idempotent, crash-retryable from the log).
        for batch in group {
            for (object, state) in &batch.updates {
                self.install(*object, state)?;
            }
        }
        if crash == Some(DiskCrashPoint::AfterInstall) {
            return Err(DiskError::Crashed(DiskCrashPoint::AfterInstall));
        }
        // 4. Truncate the log (every logged batch is installed).
        fs::write(self.log_path(), LOG_MAGIC)?;
        for batch in group {
            obs.emit(EventKind::DiskCheckpoint {
                objects: batch.updates.len() as u64,
            });
        }
        Ok(())
    }

    /// Opens the log for appending, stamping the format magic if the
    /// file is new or empty.
    fn open_log(&self) -> Result<File, DiskError> {
        let mut log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.log_path())?;
        if log.metadata()?.len() == 0 {
            log.write_all(LOG_MAGIC)?;
        }
        Ok(log)
    }

    fn install(&self, object: ObjectId, state: &[u8]) -> Result<(), DiskError> {
        let final_path = self.object_path(object);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(state)?;
            Self::fsync(&tmp, &self.obs.get())?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }

    /// An intentions-log fsync: counted (for the amortised-cost
    /// metric) and timed.
    fn log_fsync(&self, file: &File, obs: &Obs) -> Result<(), DiskError> {
        self.log_fsyncs.fetch_add(1, Ordering::Relaxed);
        Self::fsync(file, obs)
    }

    /// `sync_all` with its latency recorded into `store.fsync_us`.
    fn fsync(file: &File, obs: &Obs) -> Result<(), DiskError> {
        let started = obs.enabled().then(Instant::now);
        file.sync_all()?;
        if let Some(started) = started {
            obs.observe(
                "store.fsync_us",
                u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            );
        }
        Ok(())
    }

    fn append_record(log: &mut File, record: &DiskRecord) -> Result<u64, DiskError> {
        let bytes = codec::to_bytes(record).map_err(|e| DiskError::CorruptLog(e.to_string()))?;
        let len = u32::try_from(bytes.len())
            .map_err(|_| DiskError::CorruptLog("record too large".into()))?;
        let mut frame = Vec::with_capacity(bytes.len() + 8);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&bytes);
        let crc = crc32(&frame);
        log.write_all(&frame)?;
        log.write_all(&crc.to_le_bytes())?;
        Ok(frame.len() as u64 + 4)
    }

    /// Replays the intentions log: committed batches are (re)installed,
    /// uncommitted intents are discarded, the log is truncated. Returns
    /// the highest batch id seen.
    fn recover_log(&self) -> Result<u64, DiskError> {
        let raw = match fs::read(self.log_path()) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e.into()),
        };
        // Versioned decode: the magic selects checksummed framing;
        // anything else is a log from before checksums existed.
        let checksummed = raw.starts_with(LOG_MAGIC);
        let mut cursor = if checksummed {
            &raw[LOG_MAGIC.len()..]
        } else {
            &raw[..]
        };
        let mut records = Vec::new();
        loop {
            if cursor.len() < 4 {
                break; // torn tail (crash mid-append): discard
            }
            let len_bytes: [u8; 4] = cursor[..4].try_into().expect("four bytes checked");
            let len = u32::from_le_bytes(len_bytes) as usize;
            let payload_end = 4 + len;
            let frame_end = if checksummed {
                payload_end + 4
            } else {
                payload_end
            };
            if cursor.len() < frame_end {
                break; // torn record
            }
            if checksummed {
                let stored_bytes: [u8; 4] = cursor[payload_end..frame_end]
                    .try_into()
                    .expect("four bytes checked");
                let stored = u32::from_le_bytes(stored_bytes);
                let computed = crc32(&cursor[..payload_end]);
                if stored != computed {
                    return Err(DiskError::CorruptLog(format!(
                        "record checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
                    )));
                }
            }
            match codec::from_bytes::<DiskRecord>(&cursor[4..payload_end]) {
                Ok(record) => records.push(record),
                Err(e) => {
                    // A decodable-length but garbled record inside the
                    // prefix is real corruption.
                    return Err(DiskError::CorruptLog(e.to_string()));
                }
            }
            cursor = &cursor[frame_end..];
        }
        let committed: std::collections::HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                DiskRecord::Commit { batch } => Some(*batch),
                DiskRecord::Intent { .. } => None,
            })
            .collect();
        let mut max_batch = 0;
        let mut installed = 0u64;
        for record in &records {
            if let DiskRecord::Intent {
                batch,
                object,
                state,
            } = record
            {
                max_batch = max_batch.max(*batch);
                if committed.contains(batch) {
                    self.install(ObjectId::from_raw(*object), state)?;
                    installed += 1;
                }
            }
            if let DiskRecord::Commit { batch } = record {
                max_batch = max_batch.max(*batch);
            }
        }
        fs::write(self.log_path(), LOG_MAGIC)?;
        if !records.is_empty() {
            // Tracing cannot be installed yet (recovery runs inside
            // `open`); remember the stats for `install_obs`.
            *self.pending_replay.lock() = Some((committed.len() as u64, installed));
        }
        Ok(max_batch)
    }
}

impl Observable for DiskStore {
    /// Installs a tracing handle (see the deprecated
    /// [`DiskStore::set_obs`] for the emitted events); if `open`
    /// replayed the intentions log, the deferred `DiskReplay` event is
    /// emitted now.
    fn install_obs(&self, obs: Obs) {
        self.obs.set(obs.clone());
        if let Some((batches, objects)) = self.pending_replay.lock().take() {
            obs.emit(EventKind::DiskReplay { batches, objects });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chroma-disk-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }
    fn bytes(v: &[u8]) -> StoreBytes {
        StoreBytes::from(v.to_vec())
    }

    /// Hand-writes a log in the checksummed format.
    fn write_log(dir: &Path, records: &[DiskRecord]) {
        fs::create_dir_all(dir.join("objects")).unwrap();
        let mut log = File::create(dir.join("log")).unwrap();
        log.write_all(LOG_MAGIC).unwrap();
        for record in records {
            DiskStore::append_record(&mut log, record).unwrap();
        }
    }

    #[test]
    fn round_trip_across_reopen() {
        let dir = temp_dir();
        {
            let store = DiskStore::open(&dir).unwrap();
            store
                .commit_batch(vec![(o(1), bytes(b"one")), (o(2), bytes(b"two"))])
                .unwrap();
        }
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(store.read(o(2)).unwrap().as_deref(), Some(&b"two"[..]));
        assert!(store.contains(o(1)));
        assert!(store.read(o(9)).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn later_batches_overwrite() {
        let dir = temp_dir();
        let store = DiskStore::open(&dir).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"a"))]).unwrap();
        store.commit_batch(vec![(o(1), bytes(b"b"))]).unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"b"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_log_without_install_replays_on_open() {
        // Simulate a crash after the commit marker but before install:
        // hand-write the log, then open.
        let dir = temp_dir();
        write_log(
            &dir,
            &[
                DiskRecord::Intent {
                    batch: 3,
                    object: 7,
                    state: b"recovered".to_vec(),
                },
                DiskRecord::Commit { batch: 3 },
            ],
        );
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(
            store.read(o(7)).unwrap().as_deref(),
            Some(&b"recovered"[..])
        );
        // Batch ids continue past the recovered one.
        store.commit_batch(vec![(o(8), bytes(b"next"))]).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_intents_are_discarded_on_open() {
        let dir = temp_dir();
        write_log(
            &dir,
            &[DiskRecord::Intent {
                batch: 1,
                object: 5,
                state: b"never committed".to_vec(),
            }],
        );
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.read(o(5)).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_log_tail_is_tolerated() {
        let dir = temp_dir();
        write_log(
            &dir,
            &[
                DiskRecord::Intent {
                    batch: 1,
                    object: 1,
                    state: b"full".to_vec(),
                },
                DiskRecord::Commit { batch: 1 },
            ],
        );
        // A torn append: length prefix promising more bytes than exist.
        let mut log = OpenOptions::new()
            .append(true)
            .open(dir.join("log"))
            .unwrap();
        log.write_all(&100u32.to_le_bytes()).unwrap();
        log.write_all(b"short").unwrap();
        drop(log);
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.read(o(1)).unwrap().as_deref(), Some(&b"full"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_log_without_magic_still_recovers() {
        // A log written before checksums: plain [len][payload] frames,
        // no magic. The versioned decode must replay it.
        let dir = temp_dir();
        fs::create_dir_all(dir.join("objects")).unwrap();
        let mut log = File::create(dir.join("log")).unwrap();
        for record in [
            &DiskRecord::Intent {
                batch: 2,
                object: 4,
                state: b"old format".to_vec(),
            },
            &DiskRecord::Commit { batch: 2 },
        ] {
            let payload = codec::to_bytes(record).unwrap();
            log.write_all(&(payload.len() as u32).to_le_bytes())
                .unwrap();
            log.write_all(&payload).unwrap();
        }
        drop(log);
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(
            store.read(o(4)).unwrap().as_deref(),
            Some(&b"old format"[..])
        );
        // The truncated log is re-stamped in the current format.
        assert!(fs::read(dir.join("log")).unwrap().starts_with(LOG_MAGIC));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_byte_in_committed_record_is_detected() {
        let dir = temp_dir();
        write_log(
            &dir,
            &[
                DiskRecord::Intent {
                    batch: 1,
                    object: 1,
                    state: b"protected".to_vec(),
                },
                DiskRecord::Commit { batch: 1 },
            ],
        );
        let log_path = dir.join("log");
        let mut raw = fs::read(&log_path).unwrap();
        // Flip one payload byte inside the first record (past magic +
        // length prefix).
        let target = LOG_MAGIC.len() + 4 + 2;
        raw[target] ^= 0x40;
        fs::write(&log_path, &raw).unwrap();
        match DiskStore::open(&dir) {
            Err(DiskError::CorruptLog(msg)) => {
                assert!(msg.contains("checksum"), "{msg}");
            }
            other => panic!("corruption not detected: {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_batch_is_fine() {
        let dir = temp_dir();
        let store = DiskStore::open(&dir).unwrap();
        store.commit_batch(Vec::new()).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_commits_share_fsyncs_and_all_survive() {
        const THREADS: u64 = 8;
        let dir = temp_dir();
        let store = Arc::new(DiskStore::open(&dir).unwrap());
        let barrier = Arc::new(Barrier::new(THREADS as usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let store = Arc::clone(&store);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    store
                        .commit_batch(vec![(o(i), bytes(&[i as u8, 0xAB]))])
                        .unwrap();
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        // Every batch flushed in some group: between 1 group (all
        // shared) and one group per batch.
        let fsyncs = store.log_fsync_count();
        assert!(
            (2..=2 * THREADS).contains(&fsyncs),
            "implausible log fsync count {fsyncs}"
        );
        drop(store);
        let store = DiskStore::open(&dir).unwrap();
        for i in 0..THREADS {
            assert_eq!(
                store.read(o(i)).unwrap().as_deref(),
                Some(&[i as u8, 0xAB][..]),
                "batch {i} lost"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_crash_poisons_the_store() {
        let dir = temp_dir();
        let store = DiskStore::open(&dir).unwrap();
        let err = store
            .commit_batch_with_crash(vec![(o(1), bytes(b"x"))], DiskCrashPoint::AfterIntents)
            .unwrap_err();
        assert!(matches!(
            err,
            DiskError::Crashed(DiskCrashPoint::AfterIntents)
        ));
        // The "process" is dead: later commits fail the same way.
        let err = store.commit_batch(vec![(o(2), bytes(b"y"))]).unwrap_err();
        assert!(matches!(
            err,
            DiskError::Crashed(DiskCrashPoint::AfterIntents)
        ));
        drop(store);
        // Reopening (restart) recovers and revives commits.
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.read(o(1)).unwrap().is_none());
        store.commit_batch(vec![(o(2), bytes(b"y"))]).unwrap();
        fs::remove_dir_all(&dir).ok();
    }
}
